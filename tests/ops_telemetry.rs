//! Operational telemetry, end to end: a real (small) study run must
//! export a lint-clean OpenMetrics exposition that round-trips through
//! the in-repo parser, a Perfetto-loadable trace, a progress-snapshot
//! stream whose deterministic half is thread-count invariant, and an
//! ops dashboard that renders all of it.

use proxy_verifier::obs::export::{deterministic_family, parse_exposition};
use proxy_verifier::obs::json::Json;
use proxy_verifier::vpnstudy::audit::StudyResults;
use proxy_verifier::vpnstudy::{ops, report, Study, StudyConfig};
use std::sync::OnceLock;

fn study() -> &'static StudyResults {
    static S: OnceLock<StudyResults> = OnceLock::new();
    S.get_or_init(|| {
        let mut study = Study::build(StudyConfig::small(2018));
        study.run_with_threads(4)
    })
}

/// Every counter, histogram, and wall counter a real run emits is in
/// the registry (`study_metrics` errors on the first unregistered raw
/// name), the exposition lints clean, and parse → render reproduces
/// the exact bytes.
#[test]
fn real_run_exports_a_round_trippable_exposition() {
    let set = ops::study_metrics(study()).expect("unregistered metric leaked into a run");
    assert!(set.lint_against_registry().is_empty());
    let text = set.render();
    let parsed = parse_exposition(&text).expect("exposition must parse");
    assert_eq!(parsed.render(), text, "round-trip drifted");
    // Spot-check both compartments made it out.
    assert!(parsed.family("pv_probe_total").is_some());
    assert!(parsed.family("pv_span_seconds_total").is_some());
    assert!(parsed.value("pv_progress_proxies_done", &[]).unwrap() > 0.0);
}

/// The deterministic subset of the exposition is a pure function of the
/// seed: 1-thread and 8-thread runs render byte-identical text. (The
/// full exposition differs — span timings are wall-clock.)
#[test]
fn deterministic_exposition_subset_is_thread_invariant() {
    let render = |threads: usize| {
        let mut study = Study::build(StudyConfig::small(909));
        let results = study.run_with_threads(threads);
        ops::study_metrics(&results)
            .expect("export")
            .render_filtered(deterministic_family)
    };
    let one = render(1);
    assert!(!one.is_empty());
    assert_eq!(one, render(8), "deterministic exposition subset diverged");
}

/// The Perfetto export is valid JSON in trace-event shape: a
/// `traceEvents` array of objects each carrying a phase, and at least
/// one complete (`X`) span from the profiler.
#[test]
fn perfetto_trace_is_loadable_json() {
    let trace = proxy_verifier::obs::perfetto::render_trace(&study().obs);
    let doc = Json::parse(&trace).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 10, "suspiciously small trace: {}", events.len());
    let mut complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("every event has ph");
        if ph == "X" {
            complete += 1;
            assert!(e.get("dur").is_some(), "X event without dur");
        }
    }
    assert!(complete > 0, "no complete spans in the trace");
}

/// Snapshot JSONL: every line of both renderings is valid JSON; the
/// deterministic rendering has no wall compartment, the full one always
/// does.
#[test]
fn snapshot_jsonl_parses_line_by_line() {
    let results = study();
    assert!(!results.snapshots.is_empty());
    for line in results.snapshots_jsonl().lines() {
        let doc = Json::parse(line).expect("deterministic snapshot line parses");
        assert!(doc.get("wall").is_none(), "wall data in deterministic line");
        assert!(doc.get("seq").is_some());
    }
    for line in results.snapshots_full_jsonl().lines() {
        let doc = Json::parse(line).expect("full snapshot line parses");
        assert!(doc.get("wall").is_some(), "full line without wall data");
    }
}

/// The ops dashboard renders the whole picture: progress, quantiles,
/// and the SLO verdict (quiet here — a healthy run with no prior epoch
/// must not alert).
#[test]
fn ops_dashboard_renders_and_stays_quiet_on_a_healthy_run() {
    let results = study();
    let set = ops::study_metrics(results).expect("export");
    let alerts = ops::evaluate_slos(&set, None);
    let text = report::render_ops(results, &set, &alerts);
    assert!(text.contains("progress:"));
    assert!(text.contains("p99="));
    assert!(
        alerts.is_empty() && text.contains("no alerts fired"),
        "healthy run alerted: {text}"
    );
}
