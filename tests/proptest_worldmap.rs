//! Property-based tests for the world atlas invariants.

use geokit::{GeoGrid, GeoPoint};
use simrng::prop::prelude::*;
use std::sync::OnceLock;
use worldmap::WorldAtlas;

fn atlas() -> &'static WorldAtlas {
    static A: OnceLock<WorldAtlas> = OnceLock::new();
    A.get_or_init(|| WorldAtlas::new(GeoGrid::new(1.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn painted_country_is_geometrically_nearby(
        lat in -60.0f64..84.0,
        lon in -180.0f64..180.0,
    ) {
        // If the painted map says a point belongs to a country, the
        // country's outline must be within one coarse cell of the point
        // (painting is by cell centre; ownership can bleed half a cell).
        let a = atlas();
        let p = GeoPoint::new(lat, lon);
        if let Some(id) = a.country_of_point(&p) {
            let d = a.distance_to_country_km(&p, id);
            prop_assert!(
                d < 170.0,
                "painted {} but outline {d:.0} km away",
                a.country(id).iso2()
            );
        }
    }

    #[test]
    fn plausibility_mask_is_a_subset_of_land(cell in 0u32..64800) {
        let a = atlas();
        if a.plausibility_mask().contains_cell(cell) {
            prop_assert!(a.land().contains_cell(cell));
            let p = a.grid().center(cell);
            prop_assert!(p.lat() <= worldmap::MAX_PLAUSIBLE_LAT);
            prop_assert!(p.lat() >= worldmap::MIN_PLAUSIBLE_LAT);
        }
    }

    #[test]
    fn sampled_host_locations_stay_in_country(
        country_pick in 0usize..200,
        jitter in 0.0f64..300.0,
        seed in 0u64..500,
    ) {
        use simrng::SeedableRng;
        let a = atlas();
        let id = country_pick % a.num_countries();
        let mut rng = simrng::rngs::StdRng::seed_from_u64(seed);
        let p = a.sample_point_in_country(id, jitter, &mut rng);
        // The sampler's contract: the point lands in the country's
        // *painted cells* (the canonical membership definition), or is
        // the capital fallback, which sits on the geometric outline even
        // when coarse-grid shadowing stole its cell.
        let painted_ok = a.country_of_point(&p) == Some(id);
        let capital_ok = a.country(id).distance_from_km(&p) < 1.0;
        prop_assert!(
            painted_ok || capital_ok,
            "sampled {p} neither painted as nor at the capital of {}",
            a.country(id).iso2()
        );
    }

    #[test]
    fn countries_touched_matches_cell_ownership(
        lat in -55.0f64..75.0,
        lon in -180.0f64..180.0,
        radius in 200.0f64..1500.0,
    ) {
        let a = atlas();
        let cap = geokit::SphericalCap::new(GeoPoint::new(lat, lon), radius);
        let region = geokit::Region::from_cap(a.grid(), &cap).intersection(a.land());
        let touched = a.countries_touched(&region);
        // Areas are positive and sum to the region's land area.
        let sum: f64 = touched.iter().map(|&(_, area)| area).sum();
        prop_assert!((sum - region.area_km2()).abs() < 1e-6 * sum.max(1.0));
        for &(c, area) in &touched {
            prop_assert!(area > 0.0);
            prop_assert!(c < a.num_countries());
        }
    }
}

/// Regression input pinned by the retired external-`proptest` run
/// (formerly `tests/proptest_worldmap.proptest-regressions`),
/// re-encoded as an explicit named case.
mod regressions {
    use super::*;

    /// proptest cc 88095696…: country index 171 with a ~194 km jitter
    /// once escaped its painted cells under seed 0.
    #[test]
    fn pinned_country_171_jitter_194km_seed_0() {
        use simrng::SeedableRng;
        let a = atlas();
        let id = 171 % a.num_countries();
        let mut rng = simrng::rngs::StdRng::seed_from_u64(0);
        let p = a.sample_point_in_country(id, 193.88712395678448, &mut rng);
        let painted_ok = a.country_of_point(&p) == Some(id);
        let capital_ok = a.country(id).distance_from_km(&p) < 1.0;
        assert!(
            painted_ok || capital_ok,
            "sampled {p} neither painted as nor at the capital of {}",
            a.country(id).iso2()
        );
    }
}
