//! End-to-end integration test of the §6 audit pipeline: build a small
//! study once, then check every cross-crate invariant against it.

use proxy_verifier::vpnstudy::confusion::{continent_confusion, country_confusion};
use proxy_verifier::vpnstudy::report;
use proxy_verifier::vpnstudy::{Study, StudyConfig};
use proxy_verifier::Assessment;
use std::sync::{Mutex, OnceLock};

fn study() -> &'static Mutex<(Study, proxy_verifier::vpnstudy::audit::StudyResults)> {
    static S: OnceLock<Mutex<(Study, proxy_verifier::vpnstudy::audit::StudyResults)>> =
        OnceLock::new();
    S.get_or_init(|| {
        let mut study = Study::build(StudyConfig::small(2018));
        let results = study.run();
        Mutex::new((study, results))
    })
}

#[test]
fn every_proxy_gets_a_verdict() {
    let g = study().lock().unwrap();
    let (s, r) = &*g;
    assert_eq!(r.records.len() + r.unmeasured, s.providers.proxies.len());
    assert!(r.unmeasured <= s.providers.proxies.len() / 10);
}

#[test]
fn eta_estimate_matches_the_tunnel_geometry() {
    let g = study().lock().unwrap();
    let (_, r) = &*g;
    let eta = r.eta.expect("pingable proxies exist");
    assert!((eta.eta() - 0.5).abs() < 0.05, "η = {}", eta.eta());
    assert!(eta.r_squared > 0.98, "R² = {}", eta.r_squared);
}

#[test]
fn study_catches_a_majority_of_lies() {
    // Evaluation against ground truth: among proxies whose claim is
    // actually false, the pipeline should flag well over half as false
    // or at least fail to rate them credible.
    let g = study().lock().unwrap();
    let (_, r) = &*g;
    let mut caught = 0usize;
    let mut wrongly_credible = 0usize;
    let mut lies = 0usize;
    for rec in &r.records {
        if rec.proxy.claimed != rec.proxy.true_country {
            lies += 1;
            match rec.refined.assessment {
                Assessment::False => caught += 1,
                Assessment::Credible => wrongly_credible += 1,
                Assessment::Uncertain | Assessment::Suspicious => {}
            }
        }
    }
    assert!(lies > 10, "study too small to judge ({lies} lies)");
    assert!(
        caught * 2 >= lies,
        "caught only {caught} of {lies} lying proxies"
    );
    assert!(
        wrongly_credible * 10 <= lies,
        "{wrongly_credible} of {lies} lies rated credible"
    );
}

#[test]
fn honest_proxies_are_rarely_called_false() {
    let g = study().lock().unwrap();
    let (_, r) = &*g;
    let mut honest = 0usize;
    let mut wrongly_false = 0usize;
    for rec in &r.records {
        if rec.proxy.claimed == rec.proxy.true_country {
            honest += 1;
            if rec.refined.assessment == Assessment::False {
                wrongly_false += 1;
            }
        }
    }
    assert!(honest > 10);
    assert!(
        wrongly_false * 5 <= honest,
        "{wrongly_false} of {honest} honest proxies wrongly condemned"
    );
}

#[test]
fn confusion_matrices_are_symmetric_with_dominant_diagonals() {
    let g = study().lock().unwrap();
    let (s, r) = &*g;
    for matrix in [
        continent_confusion(s.world.atlas(), r),
        country_confusion(s.world.atlas(), r),
    ] {
        let n = matrix.n();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(matrix.at(i, j), matrix.at(j, i), "asymmetry at {i},{j}");
                assert!(
                    matrix.at(i, j) <= matrix.at(i, i).min(matrix.at(j, j)),
                    "off-diagonal exceeds diagonal at {i},{j}"
                );
            }
        }
    }
}

#[test]
fn continent_confusion_shows_neighbour_structure() {
    // Europe–Africa overlap should exist (the paper's Fig. 22 shows it);
    // Europe–Australia overlap should be absent or tiny.
    let g = study().lock().unwrap();
    let (s, r) = &*g;
    let m = continent_confusion(s.world.atlas(), r);
    use proxy_verifier::Continent;
    let eu = Continent::Europe.index();
    let au = Continent::Australia.index();
    assert!(
        m.at(eu, au) <= m.at(eu, eu) / 5,
        "Europe/Australia confusion {} vs Europe diagonal {}",
        m.at(eu, au),
        m.at(eu, eu)
    );
}

#[test]
fn reports_render_nonempty() {
    let g = study().lock().unwrap();
    let (s, r) = &*g;
    let overall = report::render_overall(s, r);
    assert!(overall.contains("assessment"));
    let fig21 = report::render_fig21(s, r);
    assert!(fig21.contains("CBG++ (strict)"));
    assert!(fig21.contains("MaxMind"));
    let honesty = report::render_provider_country_honesty(s, r, 10);
    assert!(honesty.lines().count() >= 8, "7 providers + header");
}

#[test]
fn ip_databases_agree_with_claims_more_than_cbgpp_strict() {
    // Fig. 21's key relationship: every IP-to-location database is more
    // provider-friendly than strict active geolocation.
    let g = study().lock().unwrap();
    let (s, r) = &*g;
    for provider in 0..s.providers.profiles.len() {
        let strict = r.cbgpp_agreement(provider, false);
        for db in proxy_verifier::vpnstudy::ipdb::paper_databases() {
            let (mut agree, mut total) = (0usize, 0usize);
            for rec in &r.records {
                if rec.proxy.provider == provider {
                    total += 1;
                    if db.agrees_with_claim(&rec.proxy) {
                        agree += 1;
                    }
                }
            }
            if total < 5 {
                continue;
            }
            let db_rate = agree as f64 / total as f64;
            assert!(
                db_rate >= strict - 0.05,
                "{} less provider-friendly than CBG++ strict for provider {provider}",
                db.name
            );
        }
    }
}

#[test]
fn iclab_is_no_more_generous_than_cbgpp_generous() {
    // ICLab only *rejects* impossible claims, so it should sit between
    // CBG++ strict and the IP databases, usually near CBG++.
    let g = study().lock().unwrap();
    let (s, r) = &*g;
    let mut iclab_total = 0.0;
    let mut generous_total = 0.0;
    for provider in 0..s.providers.profiles.len() {
        iclab_total += r.iclab_agreement(provider);
        generous_total += r.cbgpp_agreement(provider, true);
    }
    // Averaged across providers the two track each other loosely.
    assert!(
        (iclab_total - generous_total).abs() < 2.0,
        "iclab {iclab_total} vs generous {generous_total}"
    );
}
