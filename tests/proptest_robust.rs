//! Property-based tests for the Byzantine-robust multilateration layer:
//! the pairwise speed-of-light flags and the trimmed subset search must
//! be pure functions of the constraint *set* — invariant under input
//! permutation — and the robust region must never lean on a flagged
//! (provably lying) constraint.

use geokit::{GeoGrid, GeoPoint, Region};
use geoloc::multilateration::{
    pairwise_infeasible_flags, robust_max_consistent_subset, RingConstraint,
};
use simrng::prop::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-70.0f64..70.0, -170.0f64..170.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

/// A mixed constraint set: honest disks around a shared truth (each
/// contains it, so honest pairs always overlap) plus a few deflated
/// "colluder" disks too small to reach the truth.
fn arb_mixed_disks() -> impl Strategy<Value = (GeoPoint, Vec<RingConstraint>)> {
    (
        arb_point(),
        prop::collection::vec((0.0f64..360.0, 300.0f64..6_000.0, 1.05f64..2.0), 4..10),
        prop::collection::vec((0.0f64..360.0, 4_000.0f64..9_000.0, 0.02f64..0.12), 0..3),
    )
        .prop_map(|(truth, honest, colluders)| {
            let mut disks = Vec::new();
            for (bearing, dist, stretch) in honest {
                let lm = truth.destination(bearing, dist);
                disks.push(RingConstraint::disk(lm, dist * stretch));
            }
            for (bearing, dist, deflate) in colluders {
                let lm = truth.destination(bearing, dist);
                disks.push(RingConstraint::disk(lm, dist * deflate));
            }
            (truth, disks)
        })
}

/// Deterministically shuffle by a rotation + parity reversal derived
/// from `perm`: enough to exercise arbitrary reorderings without an RNG.
fn permute<T: Clone>(items: &[T], perm: u64) -> Vec<T> {
    let mut v: Vec<T> = items.to_vec();
    if perm % 2 == 1 {
        v.reverse();
    }
    let rot = (perm as usize / 2) % v.len().max(1);
    v.rotate_left(rot);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The flagged *set* (as geometry, not indices) is invariant under
    // input permutation.
    #[test]
    fn pairwise_flags_are_order_invariant(pair in arb_mixed_disks(), perm in 0u64..64) {
        let (_, disks) = pair;
        let shuffled = permute(&disks, perm);
        let a = pairwise_infeasible_flags(&disks);
        let b = pairwise_infeasible_flags(&shuffled);
        prop_assert_eq!(a.flagged_count(), b.flagged_count());
        prop_assert_eq!(a.conflicts.len(), b.conflicts.len());
        let key = |c: &RingConstraint| (c.center.lat().to_bits(), c.center.lon().to_bits(), c.max_km.to_bits());
        let mut fa: Vec<_> = disks.iter().zip(&a.flagged).filter(|(_, &f)| f).map(|(c, _)| key(c)).collect();
        let mut fb: Vec<_> = shuffled.iter().zip(&b.flagged).filter(|(_, &f)| f).map(|(c, _)| key(c)).collect();
        fa.sort_unstable();
        fb.sort_unstable();
        prop_assert_eq!(fa, fb);
    }

    // Honest-only sets (every disk contains the truth) never conflict:
    // the pairwise check has zero false positives on baseline geometry.
    #[test]
    fn honest_disks_never_conflict(truth in arb_point(), spec in prop::collection::vec((0.0f64..360.0, 300.0f64..6_000.0, 1.05f64..2.0), 2..12)) {
        let disks: Vec<RingConstraint> = spec
            .into_iter()
            .map(|(bearing, dist, stretch)| {
                RingConstraint::disk(truth.destination(bearing, dist), dist * stretch)
            })
            .collect();
        let report = pairwise_infeasible_flags(&disks);
        prop_assert!(report.is_clean(), "honest baseline disks flagged: {:?}", report.conflicts);
        prop_assert_eq!(report.flagged_count(), 0);
    }

    // The trimmed subset search never lets a pairwise-flagged
    // constraint shape the result: the winning region, satisfied
    // count, and discarded residue are exactly those of the unflagged
    // survivors alone.
    #[test]
    fn robust_region_never_leans_on_flagged_constraints(pair in arb_mixed_disks()) {
        let (_, disks) = pair;
        let mask = Region::full(GeoGrid::new(2.0));
        let report = pairwise_infeasible_flags(&disks);
        let robust = robust_max_consistent_subset(&disks, &report.flagged, &mask, None, None);
        prop_assert_eq!(robust.excluded, report.flagged_count());
        prop_assert!(!robust.discarded.iter().any(|i| report.flagged[*i]));

        let survivors: Vec<RingConstraint> = disks
            .iter()
            .zip(&report.flagged)
            .filter(|(_, &f)| !f)
            .map(|(c, _)| *c)
            .collect();
        let alone = robust_max_consistent_subset(
            &survivors,
            &vec![false; survivors.len()],
            &mask,
            None,
            None,
        );
        prop_assert_eq!(robust.satisfied, alone.satisfied);
        prop_assert_eq!(robust.region.cell_count(), alone.region.cell_count());
    }

    // Order invariance end to end: the robust region is a function of
    // the constraint set, not the measurement order.
    #[test]
    fn robust_subset_is_order_invariant(pair in arb_mixed_disks(), perm in 0u64..64) {
        let (_, disks) = pair;
        let mask = Region::full(GeoGrid::new(2.0));
        let shuffled = permute(&disks, perm);
        let a = {
            let f = pairwise_infeasible_flags(&disks);
            robust_max_consistent_subset(&disks, &f.flagged, &mask, None, None)
        };
        let b = {
            let f = pairwise_infeasible_flags(&shuffled);
            robust_max_consistent_subset(&shuffled, &f.flagged, &mask, None, None)
        };
        prop_assert_eq!(a.satisfied, b.satisfied);
        prop_assert_eq!(a.excluded, b.excluded);
        prop_assert_eq!(a.discarded.len(), b.discarded.len());
        prop_assert_eq!(a.region.cell_count(), b.region.cell_count());
        prop_assert!(a.region.is_subset_of(&b.region) && b.region.is_subset_of(&a.region));
    }
}
