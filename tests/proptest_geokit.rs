//! Property-based tests for the geodesy substrate.

use geokit::hull::{lower_hull, PiecewiseLinear};
use geokit::{GeoGrid, GeoPoint, Region, SphericalCap};
use simrng::prop::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-89.0f64..89.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

/// The three cap-membership enumerations that must agree cell-for-cell:
/// per-row *runs*, per-cell raster iteration, and the brute-force scan
/// of every grid cell against the cap's own membership test. (The run
/// path is what the multilateration engine trusts for word-level region
/// fills, so any divergence here is a correctness bug, not noise.)
fn runs_cells_bruteforce_agree(grid: &GeoGrid, cap: &SphericalCap) -> bool {
    let mut from_runs = Vec::new();
    grid.for_each_run_in_cap(cap, |row, cols| {
        for col in cols {
            from_runs.push(row * grid.cols() + col);
        }
    });
    let mut from_cells = Vec::new();
    grid.for_each_cell_in_cap(cap, |cell| from_cells.push(cell));
    let brute: Vec<u32> = grid
        .all_cells()
        .filter(|&c| cap.contains(&grid.center(c)))
        .collect();
    let mut sorted_runs = from_runs.clone();
    sorted_runs.sort_unstable();
    sorted_runs.dedup();
    // Runs must already be duplicate-free; all three sets must match.
    sorted_runs.len() == from_runs.len() && sorted_runs == brute && {
        let mut cells = from_cells;
        cells.sort_unstable();
        cells == brute
    }
}

/// The adversarial cap geometries the random strategy rarely hits:
/// polar caps, antimeridian-straddling caps, whole-earth and near-empty
/// caps, on both a coarse and a finer grid.
#[test]
fn cap_runs_edge_cases_match_bruteforce() {
    let cases = [
        (GeoPoint::new(89.9, 0.0), 500.0),       // around the north pole
        (GeoPoint::new(-89.9, 123.0), 2_000.0),  // around the south pole
        (GeoPoint::new(60.0, 0.0), 4_000.0),     // swallows the pole
        (GeoPoint::new(10.0, 179.5), 1_500.0),   // straddles the antimeridian
        (GeoPoint::new(-30.0, -179.9), 3_000.0), // straddles it the other way
        (GeoPoint::new(0.0, 180.0), 800.0),      // centred on it
        (GeoPoint::new(45.0, 45.0), 25_000.0),   // whole earth (r > πR)
        (GeoPoint::new(0.0, 0.0), 1.0),          // smaller than one cell
        (GeoPoint::new(52.4, 13.1), 0.0),        // degenerate point cap
    ];
    for grid in [GeoGrid::new(2.0), GeoGrid::new(1.0)] {
        for (center, radius_km) in cases {
            let cap = SphericalCap::new(center, radius_km);
            assert!(
                runs_cells_bruteforce_agree(&grid, &cap),
                "cap at {center} r={radius_km} km disagrees on the {}° grid",
                grid.resolution_deg()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_is_symmetric_and_bounded(a in arb_point(), b in arb_point()) {
        let d1 = a.distance_km(&b);
        let d2 = b.distance_km(&a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
        prop_assert!(d1 <= std::f64::consts::PI * geokit::EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
    }

    #[test]
    fn destination_travels_the_requested_distance(
        p in arb_point(),
        bearing in 0.0f64..360.0,
        dist in 0.1f64..15_000.0,
    ) {
        let q = p.destination(bearing, dist);
        prop_assert!((p.distance_km(&q) - dist).abs() < 1e-6 * dist.max(1.0));
    }

    #[test]
    fn cell_round_trip(p in arb_point()) {
        let grid = GeoGrid::new(1.0);
        let cell = grid.cell_of(&p);
        let center = grid.center(cell);
        // A point is never farther from its cell centre than one cell
        // diagonal (conservatively ~160 km at 1°).
        prop_assert!(p.distance_km(&center) < 160.0);
        prop_assert_eq!(grid.cell_of(&center), cell);
    }

    #[test]
    fn region_set_algebra(a in arb_point(), b in arb_point(), ra in 200.0f64..3_000.0, rb in 200.0f64..3_000.0) {
        let grid = GeoGrid::new(2.0);
        let ca = Region::from_cap(&grid, &SphericalCap::new(a, ra));
        let cb = Region::from_cap(&grid, &SphericalCap::new(b, rb));
        let inter = ca.intersection(&cb);
        let union = ca.union(&cb);
        // |A∩B| + |A∪B| = |A| + |B|
        prop_assert_eq!(
            inter.cell_count() + union.cell_count(),
            ca.cell_count() + cb.cell_count()
        );
        prop_assert!(inter.is_subset_of(&ca));
        prop_assert!(inter.is_subset_of(&cb));
        prop_assert!(ca.is_subset_of(&union));
        // Intersection membership is exactly conjunction.
        for cell in inter.cells().take(64) {
            prop_assert!(ca.contains_cell(cell) && cb.contains_cell(cell));
        }
    }

    #[test]
    fn cap_runs_equal_cells_equal_bruteforce(
        a in arb_point(),
        r in 50.0f64..12_000.0,
    ) {
        let grid = GeoGrid::new(2.0);
        prop_assert!(runs_cells_bruteforce_agree(&grid, &SphericalCap::new(a, r)));
    }

    #[test]
    fn region_area_is_monotone(a in arb_point(), r in 100.0f64..5_000.0) {
        let grid = GeoGrid::new(2.0);
        let small = Region::from_cap(&grid, &SphericalCap::new(a, r));
        let big = Region::from_cap(&grid, &SphericalCap::new(a, r * 1.5));
        prop_assert!(small.is_subset_of(&big));
        prop_assert!(small.area_km2() <= big.area_km2() + 1e-6);
    }

    #[test]
    fn hull_stays_below_points(pts in prop::collection::vec((0.0f64..10_000.0, 0.0f64..300.0), 1..120)) {
        let hull = lower_hull(&pts);
        prop_assert!(!hull.is_empty());
        let pl = PiecewiseLinear::new(hull);
        for &(x, y) in &pts {
            prop_assert!(y >= pl.eval(x) - 1e-9);
        }
    }

    #[test]
    fn ecdf_is_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let ecdf = geokit::stats::Ecdf::new(values);
        let mut prev = 0.0;
        for i in 0..50 {
            let x = -1e6 + i as f64 * (2e6 / 49.0);
            let f = ecdf.eval(x);
            prop_assert!(f >= prev);
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        prop_assert_eq!(ecdf.eval(2e6), 1.0);
    }

    #[test]
    fn theil_sen_recovers_clean_lines(
        slope in -5.0f64..5.0,
        intercept in -100.0f64..100.0,
        n in 5usize..40,
    ) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, intercept + slope * i as f64))
            .collect();
        let line = geokit::regress::theil_sen(&pts).unwrap();
        prop_assert!((line.slope - slope).abs() < 1e-9);
        prop_assert!((line.intercept - intercept).abs() < 1e-6);
    }
}
