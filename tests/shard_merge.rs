//! Property tests for the shard plan and `StudyResults::merge`, the two
//! halves of the audit's master/worker determinism contract:
//!
//! * `plan_shards` always yields contiguous, balanced ranges covering
//!   the proxy universe exactly once;
//! * merging is insensitive to the order shards arrive in (workers
//!   finish in any order), a single full-universe shard is the identity
//!   (the monolithic run *is* a one-shard merge), and empty shards are
//!   neutral (more shards than proxies is legal).
//!
//! Studies here use a reduced proxy universe — merge semantics do not
//! depend on study size, and each property case needs a fresh
//! `run_shards` (merging consumes the master recorder, and absorbing a
//! shard trace drains it).

use proxy_verifier::vpnstudy::audit::{plan_shards, StudyResults};
use proxy_verifier::vpnstudy::{Study, StudyConfig};
use simrng::prop::prelude::*;

/// A CI-small study shrunk further: merge behaviour is what's under
/// test, not the measurement pipeline.
fn tiny_config(seed: u64) -> StudyConfig {
    let mut config = StudyConfig::small(seed);
    config.total_proxies = 6;
    config
}

/// Everything deterministic the merge is responsible for assembling:
/// records in proxy order, failures, exact cache counters, and the
/// absorbed event trace.
fn fingerprint(results: &StudyResults) -> String {
    use std::fmt::Write as _;
    let cache = results.cache_stats();
    let mut out = format!("cache {} {} {}\n", cache.hits, cache.misses, cache.entries);
    for r in &results.records {
        let _ = writeln!(
            out,
            "rec {} {} {:?} {:?} {:x}",
            r.proxy.node,
            r.proxy.claimed,
            r.verdict.assessment,
            r.refined.assessment,
            r.region_area_km2.to_bits(),
        );
    }
    for f in &results.failures {
        let _ = writeln!(out, "fail {} {:?}", f.proxy.node, f.failure);
    }
    out.push_str(&results.trace_jsonl());
    out
}

/// The monolithic reference: one shard, one worker.
fn reference(seed: u64) -> String {
    let mut study = Study::build(tiny_config(seed));
    fingerprint(&study.run_sharded(1, 1))
}

/// Deterministically shuffle by a rotation + parity reversal derived
/// from `perm`: enough to exercise arbitrary arrival orders without an
/// RNG.
fn permute<T>(mut items: Vec<T>, perm: u64) -> Vec<T> {
    if perm % 2 == 1 {
        items.reverse();
    }
    let rot = (perm as usize / 2) % items.len().max(1);
    items.rotate_left(rot);
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The plan is a partition of 0..total into contiguous ranges in
    // shard order, sizes differing by at most one.
    #[test]
    fn plan_covers_the_universe_contiguously(
        seed in 0u64..1_000_000,
        total in 0usize..500,
        shard_count in 1usize..40,
    ) {
        let plan = plan_shards(seed, total, shard_count);
        prop_assert_eq!(plan.len(), shard_count);
        let mut cursor = 0usize;
        let (mut min_len, mut max_len) = (usize::MAX, 0usize);
        for (i, spec) in plan.iter().enumerate() {
            prop_assert_eq!(spec.shard_id, i);
            prop_assert_eq!(spec.shard_count, shard_count);
            prop_assert_eq!(spec.start, cursor, "range gap or overlap");
            prop_assert!(spec.end >= spec.start);
            min_len = min_len.min(spec.end - spec.start);
            max_len = max_len.max(spec.end - spec.start);
            cursor = spec.end;
        }
        prop_assert_eq!(cursor, total, "plan does not cover the universe");
        prop_assert!(max_len - min_len <= 1, "unbalanced: {min_len}..{max_len}");
    }

    // Distinct shards get distinct network lineages (the seed mix is
    // injective over the plan), while the plan's ranges never depend on
    // the seed.
    #[test]
    fn plan_seeds_are_distinct_and_ranges_seed_free(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        shard_count in 2usize..20,
    ) {
        let plan = plan_shards(seed_a, 100, shard_count);
        let mut seeds: Vec<u64> = plan.iter().map(|s| s.net_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), shard_count, "net_seed collision");
        let other = plan_shards(seed_b, 100, shard_count);
        for (a, b) in plan.iter().zip(&other) {
            prop_assert_eq!((a.start, a.end), (b.start, b.end));
        }
    }
}

proptest! {
    // Each case runs a real (tiny) study, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Merge is insensitive to shard arrival order: workers may finish in
    // any order, and merge re-sorts by range before absorbing.
    #[test]
    fn merge_order_is_irrelevant(shards in 2usize..6, perm in 0u64..24) {
        let mut study = Study::build(tiny_config(77));
        let (master, shard_results) = study.run_shards(shards, 2);
        let merged = StudyResults::merge(master, permute(shard_results, perm));
        prop_assert_eq!(fingerprint(&merged), reference(77));
    }

    // Empty shards are neutral: a plan with more shards than proxies
    // pads with empty ranges, and the merged result is unchanged.
    #[test]
    fn empty_shards_are_neutral(extra in 1usize..10) {
        let mut study = Study::build(tiny_config(41));
        let total = study.providers.proxies.len();
        let (master, shard_results) = study.run_shards(total + extra, 2);
        prop_assert_eq!(shard_results.len(), total + extra);
        prop_assert!(
            shard_results.iter().any(|s| s.spec.start == s.spec.end),
            "expected at least one empty shard"
        );
        let merged = StudyResults::merge(master, shard_results);
        prop_assert_eq!(fingerprint(&merged), reference(41));
    }
}

/// A single shard covering the whole universe is the identity: merging
/// it reproduces the monolithic run exactly, whatever the worker count.
#[test]
fn single_full_universe_shard_is_identity() {
    let expected = reference(13);
    for threads in [1, 4] {
        let mut study = Study::build(tiny_config(13));
        let (master, shard_results) = study.run_shards(1, threads);
        assert_eq!(shard_results.len(), 1);
        let spec = shard_results[0].spec;
        assert_eq!(
            (spec.start, spec.end),
            (0, study.providers.proxies.len()),
            "single shard must cover the universe"
        );
        let merged = StudyResults::merge(master, shard_results);
        assert_eq!(
            fingerprint(&merged),
            expected,
            "one-shard merge diverged from the monolithic run at {threads} threads"
        );
    }
}
