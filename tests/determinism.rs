//! Reproducibility: the entire study is a pure function of its seed.

use proxy_verifier::vpnstudy::{Study, StudyConfig};
use proxy_verifier::Assessment;

fn digest(seed: u64) -> Vec<(u32, usize, usize, u8, u64)> {
    let mut study = Study::build(StudyConfig::small(seed));
    let results = study.run();
    results
        .records
        .iter()
        .map(|r| {
            let a = match r.refined.assessment {
                Assessment::Credible => 0u8,
                Assessment::Uncertain => 1,
                Assessment::False => 2,
                Assessment::Suspicious => 3,
            };
            (
                r.proxy.node,
                r.proxy.claimed,
                r.proxy.true_country,
                a,
                r.region_area_km2.to_bits(),
            )
        })
        .collect()
}

#[test]
fn same_seed_same_study_bit_for_bit() {
    assert_eq!(digest(77), digest(77));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(digest(77), digest(78));
}

/// A full fingerprint of a study's deterministic output: every record
/// field that ends up in a report (float bits included, so "close" is
/// not good enough), every failure, the η estimate, and the disk-cache
/// hit/miss/entry counts — exact since the fill-once cache, so they are
/// part of the contract rather than an exemption from it.
fn full_fingerprint(results: &proxy_verifier::vpnstudy::audit::StudyResults) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let cache = results.cache_stats();
    let _ = writeln!(out, "cache {} {} {}", cache.hits, cache.misses, cache.entries);
    if let Some(eta) = &results.eta {
        let _ = writeln!(out, "eta {:x} {:x} {}", eta.eta().to_bits(), eta.r_squared.to_bits(), eta.samples);
    }
    for r in &results.records {
        let _ = writeln!(
            out,
            "rec {} {} {} {:?} {:?} {:?} {:?} {:x} {:?} {:x} {} {} {} {}",
            r.proxy.node,
            r.proxy.claimed,
            r.proxy.true_country,
            r.verdict.assessment,
            r.verdict.continent,
            r.refined.assessment,
            r.dc_country,
            r.region_area_km2.to_bits(),
            r.centroid.map(|c| (c.lat().to_bits(), c.lon().to_bits())),
            r.self_ping_ms.to_bits(),
            r.observations.len(),
            r.diagnostics.attempts,
            r.diagnostics.retries,
            r.diagnostics.timeouts,
        );
        for (lm, ms) in &r.observations {
            let _ = writeln!(out, "  obs {:x} {:x} {:x}", lm.lat().to_bits(), lm.lon().to_bits(), ms.to_bits());
        }
    }
    for f in &results.failures {
        let _ = writeln!(
            out,
            "fail {} {:?} {} {} {}",
            f.proxy.node, f.failure, f.diagnostics.attempts, f.diagnostics.retries, f.diagnostics.timeouts
        );
    }
    out
}

/// The tentpole guarantee of the parallel audit engine: fanning the
/// proxies out across worker threads must not change a single bit of
/// any deterministic output — records, failures, observations, η —
/// relative to the serial (1-thread) path.
#[test]
fn thread_count_never_changes_the_study() {
    let run = |threads: usize| {
        let mut study = Study::build(StudyConfig::small(77));
        let results = study.run_with_threads(threads);
        assert_eq!(results.threads, threads.max(1));
        full_fingerprint(&results)
    };
    let serial = run(1);
    assert!(!serial.is_empty(), "study produced no output at all");
    for threads in [2, 4, 8, 16] {
        assert_eq!(
            serial,
            run(threads),
            "study output diverged at {threads} threads"
        );
    }
}

/// The sharding determinism contract, crossed with the thread one: the
/// master/worker split (`Study::run_sharded`) must be byte-identical to
/// the monolithic run for any shard count × any worker budget. The
/// fingerprint includes the disk-cache counters — reconstructed at
/// merge time from per-shard key sets, they must come out *exactly*
/// equal to the single-cache run — and the comparison extends to the
/// JSONL event trace, the rendered observability block, and the
/// deterministic half of the progress-snapshot stream, since shard
/// traces and per-proxy snapshot deltas are absorbed in range order.
#[test]
fn shard_count_never_changes_the_study() {
    use proxy_verifier::vpnstudy::report;
    let run = |shards: usize, threads: usize| {
        let mut study = Study::build(StudyConfig::small(77));
        let results = study.run_sharded(shards, threads);
        assert_eq!(results.shards, shards.max(1));
        assert_eq!(results.threads, threads.max(1));
        (
            full_fingerprint(&results),
            results.trace_jsonl(),
            report::render_observability(&results),
            results.snapshots_jsonl(),
        )
    };
    let reference = run(1, 1);
    assert!(!reference.0.is_empty(), "study produced no output at all");
    assert!(
        !reference.3.is_empty(),
        "study produced no progress snapshots"
    );
    for shards in [2, 5] {
        for threads in [1, 8] {
            let sharded = run(shards, threads);
            assert_eq!(
                reference.0, sharded.0,
                "fingerprint diverged at {shards} shards x {threads} threads"
            );
            assert_eq!(
                reference.1, sharded.1,
                "JSONL trace diverged at {shards} shards x {threads} threads"
            );
            assert_eq!(
                reference.2, sharded.2,
                "observability report diverged at {shards} shards x {threads} threads"
            );
            assert_eq!(
                reference.3, sharded.3,
                "snapshot stream diverged at {shards} shards x {threads} threads"
            );
        }
    }
}

/// Degenerate shard plans are legal: more shards than proxies leaves
/// some shards empty, and merging them must be a no-op.
#[test]
fn more_shards_than_proxies_is_byte_identical_too() {
    let run = |shards: usize| {
        let mut study = Study::build(StudyConfig::small(91));
        full_fingerprint(&study.run_sharded(shards, 4))
    };
    let total = {
        let study = Study::build(StudyConfig::small(91));
        study.providers.proxies.len()
    };
    assert_eq!(run(1), run(total + 7), "empty shards changed the output");
}

/// The observability layer's determinism contract: the JSONL event
/// trace and the rendered observability block are byte-identical at any
/// thread count. Per-proxy event buffers are recorded worker-locally
/// and merged in proxy order, so the merged stream must not depend on
/// which worker measured which proxy — only the wall-clock compartment
/// (timing spans) may differ, and it is excluded here.
#[test]
fn trace_and_observability_report_are_thread_count_invariant() {
    use proxy_verifier::vpnstudy::report;
    let run = |threads: usize| {
        let mut study = Study::build(StudyConfig::small(77));
        let results = study.run_with_threads(threads);
        (results.trace_jsonl(), report::render_observability(&results))
    };
    let (trace1, obs1) = run(1);
    assert!(
        trace1.lines().count() > 100,
        "trace suspiciously small: {} lines",
        trace1.lines().count()
    );
    for threads in [8, 16] {
        let (trace_n, obs_n) = run(threads);
        assert_eq!(
            trace1, trace_n,
            "JSONL trace diverged between 1 and {threads} threads"
        );
        assert_eq!(
            obs1, obs_n,
            "observability report diverged between 1 and {threads} threads"
        );
    }
}

/// End-to-end check on the in-repo RNG substrate: two fully independent
/// studies built from the same `StudyConfig` seed must agree on every
/// audit verdict count, both for the single-round and the refined pass.
#[test]
fn same_seed_same_verdict_counts() {
    let counts = |seed: u64| {
        let mut study = Study::build(StudyConfig::small(seed));
        let results = study.run();
        (results.counts(false), results.counts(true))
    };
    let (initial_a, refined_a) = counts(41);
    let (initial_b, refined_b) = counts(41);
    assert_eq!(initial_a, initial_b, "initial-pass verdict counts diverged");
    assert_eq!(refined_a, refined_b, "refined-pass verdict counts diverged");
    let (c, u, f) = refined_a;
    assert!(c + u + f > 0, "study produced no verdicts");
}
