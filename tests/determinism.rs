//! Reproducibility: the entire study is a pure function of its seed.

use proxy_verifier::vpnstudy::{Study, StudyConfig};
use proxy_verifier::Assessment;

fn digest(seed: u64) -> Vec<(u32, usize, usize, u8, u64)> {
    let mut study = Study::build(StudyConfig::small(seed));
    let results = study.run();
    results
        .records
        .iter()
        .map(|r| {
            let a = match r.refined.assessment {
                Assessment::Credible => 0u8,
                Assessment::Uncertain => 1,
                Assessment::False => 2,
            };
            (
                r.proxy.node,
                r.proxy.claimed,
                r.proxy.true_country,
                a,
                r.region_area_km2.to_bits(),
            )
        })
        .collect()
}

#[test]
fn same_seed_same_study_bit_for_bit() {
    assert_eq!(digest(77), digest(77));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(digest(77), digest(78));
}
