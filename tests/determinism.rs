//! Reproducibility: the entire study is a pure function of its seed.

use proxy_verifier::vpnstudy::{Study, StudyConfig};
use proxy_verifier::Assessment;

fn digest(seed: u64) -> Vec<(u32, usize, usize, u8, u64)> {
    let mut study = Study::build(StudyConfig::small(seed));
    let results = study.run();
    results
        .records
        .iter()
        .map(|r| {
            let a = match r.refined.assessment {
                Assessment::Credible => 0u8,
                Assessment::Uncertain => 1,
                Assessment::False => 2,
            };
            (
                r.proxy.node,
                r.proxy.claimed,
                r.proxy.true_country,
                a,
                r.region_area_km2.to_bits(),
            )
        })
        .collect()
}

#[test]
fn same_seed_same_study_bit_for_bit() {
    assert_eq!(digest(77), digest(77));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(digest(77), digest(78));
}

/// End-to-end check on the in-repo RNG substrate: two fully independent
/// studies built from the same `StudyConfig` seed must agree on every
/// audit verdict count, both for the single-round and the refined pass.
#[test]
fn same_seed_same_verdict_counts() {
    let counts = |seed: u64| {
        let mut study = Study::build(StudyConfig::small(seed));
        let results = study.run();
        (results.counts(false), results.counts(true))
    };
    let (initial_a, refined_a) = counts(41);
    let (initial_b, refined_b) = counts(41);
    assert_eq!(initial_a, initial_b, "initial-pass verdict counts diverged");
    assert_eq!(refined_a, refined_b, "refined-pass verdict counts diverged");
    let (c, u, f) = refined_a;
    assert!(c + u + f > 0, "study produced no verdicts");
}
