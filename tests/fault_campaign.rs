//! Fault campaign: the audit pipeline under probe loss and landmark
//! outages must degrade *loudly* — every proxy accounted for, every
//! verdict backed by diagnostics — and deterministically.
//!
//! Fault intensities are the campaign's stated operating envelope:
//! ~2.5 % per-hop loss (≈ 20 % end-to-end probe loss over the typical
//! simulated path) and 10 % of landmarks in permanent outage.

use proxy_verifier::netsim::NodeId;
use proxy_verifier::vpnstudy::{MeasureFailure, Study, StudyConfig, StudyResults};
use proxy_verifier::Assessment;

const SEED: u64 = 4242;
const PER_HOP_LOSS: f64 = 0.025;
const OUTAGE_FRACTION: f64 = 0.10;

fn campaign_config() -> StudyConfig {
    let mut config = StudyConfig::small(SEED);
    config.total_proxies = 40;
    config
}

/// Build a study and knock out `fraction` of its landmarks (every k-th,
/// deterministically) plus a global per-hop loss rate, then run it.
fn run_with_faults(per_hop_loss: f64, outage_fraction: f64) -> (usize, StudyResults) {
    let mut study = Study::build(campaign_config());
    let total = study.providers.proxies.len();
    if outage_fraction > 0.0 {
        let nodes: Vec<NodeId> = study
            .constellation
            .landmarks()
            .iter()
            .map(|l| l.node)
            .collect();
        let stride = (1.0 / outage_fraction).round() as usize;
        let t0 = study.world.network_mut().now();
        for node in nodes.into_iter().step_by(stride.max(1)) {
            study
                .world
                .network_mut()
                .faults_mut()
                .add_permanent_outage(node, t0);
        }
    }
    study
        .world
        .network_mut()
        .faults_mut()
        .set_drop_chance(per_hop_loss);
    (total, study.run())
}

fn verdict_counts(results: &StudyResults) -> (usize, usize, usize) {
    results.counts(true)
}

#[test]
fn faulted_campaign_accounts_for_every_proxy_with_diagnostics() {
    let (total, faulted) = run_with_faults(PER_HOP_LOSS, OUTAGE_FRACTION);
    assert_eq!(
        faulted.records.len() + faulted.failures.len(),
        total,
        "a proxy was silently dropped"
    );
    assert_eq!(faulted.failures.len(), faulted.unmeasured);
    for r in &faulted.records {
        assert!(!r.diagnostics.is_empty(), "verdict without diagnostics");
    }
    for f in &faulted.failures {
        assert!(!f.diagnostics.is_empty(), "failure without diagnostics");
        assert!(matches!(
            f.failure,
            MeasureFailure::Unmeasurable | MeasureFailure::InsufficientData
        ));
    }
    // The faults actually bit: the reliability layer visibly worked.
    let summary = faulted.reliability_summary();
    assert!(summary.totals.retries > 0, "no retries under 20 % loss");
    assert!(
        summary.totals.dead_landmarks > 0,
        "no dead landmarks despite outages"
    );
}

#[test]
fn verdicts_stay_within_tolerance_of_the_fault_free_baseline() {
    let (total, baseline) = run_with_faults(0.0, 0.0);
    let (_, faulted) = run_with_faults(PER_HOP_LOSS, OUTAGE_FRACTION);

    // Retries + fallback keep the measured population close to baseline.
    assert!(
        faulted.records.len() * 10 >= baseline.records.len() * 8,
        "measured population collapsed: {} vs baseline {}",
        faulted.records.len(),
        baseline.records.len()
    );

    // Stated tolerance: each verdict class moves by at most
    // max(5, 25 % of the fleet) relative to the fault-free run.
    let (cb, ub, fb) = verdict_counts(&baseline);
    let (cf, uf, ff) = verdict_counts(&faulted);
    let tolerance = (total / 4).max(5);
    for (label, b, f) in [
        ("credible", cb, cf),
        ("uncertain", ub, uf),
        ("false", fb, ff),
    ] {
        assert!(
            b.abs_diff(f) <= tolerance,
            "{label} verdicts drifted: {b} → {f} (tolerance {tolerance})"
        );
    }
}

#[test]
fn faulted_campaign_is_deterministic() {
    let digest = |results: &StudyResults| {
        let mut d: Vec<(u32, u8, usize, usize)> = results
            .records
            .iter()
            .map(|r| {
                let a = match r.refined.assessment {
                    Assessment::Credible => 0u8,
                    Assessment::Uncertain => 1,
                    Assessment::False => 2,
                    Assessment::Suspicious => 3,
                };
                (r.proxy.node, a, r.diagnostics.attempts, r.diagnostics.retries)
            })
            .collect();
        d.extend(results.failures.iter().map(|f| {
            let a = match f.failure {
                MeasureFailure::Unmeasurable => 10u8,
                MeasureFailure::InsufficientData => 11,
            };
            (f.proxy.node, a, f.diagnostics.attempts, f.diagnostics.retries)
        }));
        d
    };
    let (_, a) = run_with_faults(PER_HOP_LOSS, OUTAGE_FRACTION);
    let (_, b) = run_with_faults(PER_HOP_LOSS, OUTAGE_FRACTION);
    assert_eq!(digest(&a), digest(&b), "faulted campaign not reproducible");
}

/// The SLO alert engine sees the faults: with 10 % of landmarks dark,
/// every proxy burns its retry budget against them, so the default
/// `retry_exhaustion` rule (`pv_retry_exhaustion_total > 10`) must trip
/// — and the fault-free run must stay quiet on the same ruleset.
#[test]
fn faulted_campaign_trips_the_default_slo_rules() {
    use proxy_verifier::vpnstudy::ops;

    let (_, faulted) = run_with_faults(PER_HOP_LOSS, OUTAGE_FRACTION);
    let set = ops::study_metrics(&faulted).expect("faulted run exports cleanly");
    let alerts = ops::evaluate_slos(&set, None);
    assert!(
        alerts.iter().any(|a| a.rule == "retry_exhaustion"),
        "outages exhausted no retry budgets: {alerts:?}"
    );
    for a in &alerts {
        assert!(a.render_line().starts_with("ALERT "), "{:?}", a.render_line());
    }

    let (_, clean) = run_with_faults(0.0, 0.0);
    let clean_set = ops::study_metrics(&clean).expect("clean run exports cleanly");
    assert!(
        ops::evaluate_slos(&clean_set, None).is_empty(),
        "fault-free campaign tripped the SLO rules"
    );
}

#[test]
fn total_blackout_degrades_loudly_not_silently() {
    let mut config = campaign_config();
    config.total_proxies = 12;
    let mut study = Study::build(config);
    let total = study.providers.proxies.len();
    study.world.network_mut().faults_mut().set_drop_chance(1.0);
    let results = study.run();
    assert!(results.records.is_empty(), "verdicts issued in a blackout");
    assert_eq!(results.failures.len(), total);
    for f in &results.failures {
        assert_eq!(f.failure, MeasureFailure::Unmeasurable);
        assert!(!f.diagnostics.is_empty());
    }
    let summary = results.reliability_summary();
    assert_eq!(summary.unmeasurable, total);
    assert_eq!(summary.measured, 0);
}
