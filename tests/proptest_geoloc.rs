//! Property-based tests for the geolocation core's invariants.

use atlas::CalibrationSet;
use geoloc::algorithms::{Cbg, CbgPlusPlus};
use geoloc::delay_model::{CbgModel, OctantModel};
use geoloc::multilateration::{intersect_constraints, max_consistent_subset, DiskCache, RingConstraint};
use geoloc::{Geolocator, Observation};
use geokit::{GeoGrid, GeoPoint, Region};
use simrng::prop::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-80.0f64..80.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn arb_calibration() -> impl Strategy<Value = CalibrationSet> {
    // Points along a speed in [60, 190] km/ms with upward noise.
    (60.0f64..190.0, prop::collection::vec((50.0f64..15_000.0, 0.0f64..40.0), 3..60)).prop_map(
        |(speed, raw)| {
            CalibrationSet::from_points(
                raw.into_iter().map(|(d, noise)| (d, d / speed + noise)).collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cbg_fit_is_feasible_and_subluminal(set in arb_calibration()) {
        let m = CbgModel::calibrate(&set);
        prop_assert!(m.speed_km_per_ms() <= geokit::FIBER_SPEED_KM_PER_MS + 1e-9);
        for &(x, y) in set.points() {
            prop_assert!(y + 1e-9 >= m.intercept_ms + m.slope_ms_per_km * x);
        }
    }

    #[test]
    fn slowline_fit_bounds_the_speed(set in arb_calibration()) {
        let m = CbgModel::calibrate_with_slowline(&set);
        prop_assert!(m.speed_km_per_ms() <= geokit::FIBER_SPEED_KM_PER_MS + 1e-9);
        prop_assert!(m.speed_km_per_ms() >= geokit::SLOWLINE_SPEED_KM_PER_MS - 1e-9);
    }

    #[test]
    fn slowline_grows_disks_at_meaningful_delays(set in arb_calibration(), t in 200.0f64..500.0) {
        // When the clamp binds decisively (plain fit well below the
        // slowline speed), the clamped disk dominates at any delay large
        // enough that slope, not intercept, controls the bound. At tiny
        // delays the intercept trade-off can locally reverse this, which
        // is fine: sub-millisecond disks are below grid resolution anyway.
        let plain = CbgModel::calibrate(&set);
        let clamped = CbgModel::calibrate_with_slowline(&set);
        prop_assume!(plain.speed_km_per_ms() < geokit::SLOWLINE_SPEED_KM_PER_MS - 5.0);
        prop_assert!(clamped.max_distance_km(t) + 1e-6 >= plain.max_distance_km(t));
    }

    #[test]
    fn octant_envelope_is_ordered(set in arb_calibration(), t in 0.5f64..250.0) {
        let m = OctantModel::calibrate(&set);
        prop_assert!(m.min_distance_km(t) <= m.max_distance_km(t) + 1e-6);
        prop_assert!(m.min_distance_km(t) >= 0.0);
    }

    #[test]
    fn constraint_inflation_is_monotone(
        center in arb_point(),
        min in 0.0f64..2_000.0,
        extra in 0.0f64..2_000.0,
        slack in 0.0f64..300.0,
        probe in arb_point(),
    ) {
        let ring = RingConstraint::ring(center, min, min + extra);
        let inflated = ring.inflated(slack);
        if ring.contains(&probe) {
            prop_assert!(inflated.contains(&probe));
        }
    }

    #[test]
    fn intersection_is_subset_of_each_disk_region(
        a in arb_point(),
        b in arb_point(),
        ra in 300.0f64..4_000.0,
        rb in 300.0f64..4_000.0,
    ) {
        let mask = Region::full(GeoGrid::new(2.0));
        let ca = RingConstraint::disk(a, ra);
        let cb = RingConstraint::disk(b, rb);
        let both = intersect_constraints(&[ca, cb], &mask);
        let only_a = intersect_constraints(&[ca], &mask);
        prop_assert!(both.is_subset_of(&only_a));
    }

    #[test]
    fn subset_search_matches_intersection_when_consistent(
        target in arb_point(),
        radii in prop::collection::vec(400.0f64..3_000.0, 2..8),
    ) {
        let mask = Region::full(GeoGrid::new(2.0));
        // Disks all centred within each radius of the target: guaranteed
        // consistent (they share the target's cell).
        let constraints: Vec<RingConstraint> = radii
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let lm = target.destination(i as f64 * 57.0, r * 0.5);
                RingConstraint::disk(lm, r)
            })
            .collect();
        let subset = max_consistent_subset(&constraints, &mask);
        prop_assert_eq!(subset.satisfied, constraints.len());
        let plain = intersect_constraints(&constraints, &mask);
        prop_assert_eq!(subset.region.cell_count(), plain.cell_count());
    }

    #[test]
    fn disk_cache_quantization_is_sound(
        center in arb_point(),
        radius in 30.0f64..5_000.0,
        res_step in 1u32..5,
    ) {
        // The cache rounds the outer radius *up* to whole grid cells and
        // the inner (annulus-subtrahend) radius *down*: a region built
        // from cached disks can only over-cover the exact rasterized
        // cap, never exclude the true location.
        let grid = GeoGrid::new(f64::from(res_step) * 0.5);
        let cache = DiskCache::new(std::sync::Arc::clone(&grid));
        let exact = Region::from_cap(&grid, &geokit::SphericalCap::new(center, radius));
        prop_assert!(cache.quantized_radius_km(radius) + 1e-9 >= radius);
        let outer = cache.disk(&center, radius);
        prop_assert!(exact.is_subset_of(&outer));
        if let Some(inner) = cache.inner_disk(&center, radius) {
            prop_assert!(inner.is_subset_of(&exact));
        }
    }

    #[test]
    fn cbgpp_region_is_never_empty_and_covers_honest_targets(
        truth in arb_point(),
        speed in 90.0f64..180.0,
    ) {
        // Honest measurements at a speed inside the calibrated range.
        let calib = CalibrationSet::from_points(
            (1..=40)
                .map(|i| {
                    let d = f64::from(i) * 400.0;
                    (d, d / speed + 0.5)
                })
                .collect(),
        );
        let mask = Region::full(GeoGrid::new(2.0));
        let observations: Vec<Observation> = (0..4)
            .map(|i| {
                let lm = truth.destination(f64::from(i) * 90.0 + 13.0, 900.0);
                Observation::new(lm, lm.distance_km(&truth) / speed + 0.5, calib.clone())
            })
            .collect();
        let pp = CbgPlusPlus.locate(&observations, &mask);
        prop_assert!(!pp.region.is_empty());
        prop_assert!(pp.region.contains_point(&truth));
        // And CBG++ is at least as inclusive as CBG here.
        let plain = Cbg.locate(&observations, &mask);
        prop_assert!(plain.region.is_subset_of(&pp.region));
    }
}

/// Regression inputs pinned by the retired external-`proptest` runs
/// (formerly `tests/proptest_geoloc.proptest-regressions`). Each shrunk
/// counterexample is re-encoded as an explicit named case so it stays
/// exercised without any generated-seed machinery.
mod regressions {
    use super::*;

    /// The assertions of `cbg_fit_is_feasible_and_subluminal` and
    /// `octant_envelope_is_ordered`, applied to one pinned input.
    fn assert_fit_invariants(set: &CalibrationSet, t: f64) {
        let cbg = CbgModel::calibrate(set);
        assert!(cbg.speed_km_per_ms() <= geokit::FIBER_SPEED_KM_PER_MS + 1e-9);
        for &(x, y) in set.points() {
            assert!(y + 1e-9 >= cbg.intercept_ms + cbg.slope_ms_per_km * x);
        }
        let slow = CbgModel::calibrate_with_slowline(set);
        assert!(slow.speed_km_per_ms() <= geokit::FIBER_SPEED_KM_PER_MS + 1e-9);
        assert!(slow.speed_km_per_ms() >= geokit::SLOWLINE_SPEED_KM_PER_MS - 1e-9);
        let octant = OctantModel::calibrate(set);
        assert!(octant.min_distance_km(t) <= octant.max_distance_km(t) + 1e-6);
        assert!(octant.min_distance_km(t) >= 0.0);
    }

    /// proptest cc 8a43bb21…: a scatter dominated by a near-zero
    /// short-range cluster with a handful of long-haul points, probed
    /// at t ≈ 162.9 ms.
    #[test]
    fn pinned_cluster_heavy_calibration_at_163ms() {
        let set = CalibrationSet::from_points(vec![
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (12582.611525619173, 159.76262120067406),
            (50.0, 0.6348547790551468),
            (7246.152098475441, 92.00508578955227),
            (50.0, 0.6348547790551468),
            (5300.5162260743, 88.59171702561076),
            (8716.842313017683, 110.67858001378791),
            (8782.237029924334, 111.50890298485082),
            (13900.221198488616, 176.49243715568315),
            (6213.249538949283, 116.14509857561632),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 0.6348547790551468),
            (50.0, 26.382200206738435),
            (11314.592571558724, 143.66246334231835),
            (8676.980181218585, 121.73939531703678),
            (50.0, 35.339620143514466),
            (10092.908452424672, 128.15062331175776),
            (14582.062376679183, 185.1498397663006),
            (14536.224557960106, 184.5678326007952),
        ]);
        assert_fit_invariants(&set, 162.92326821212077);
    }

    /// proptest cc 755dc6a0…: a minimal three-point scatter probed at
    /// the envelope's lower edge (t = 0.5 ms).
    #[test]
    fn pinned_three_point_calibration_at_envelope_floor() {
        let set = CalibrationSet::from_points(vec![
            (4211.646409721719, 70.19410682869531),
            (50.0, 0.8333333333333334),
            (11110.451746078998, 205.7667689738686),
        ]);
        assert_fit_invariants(&set, 0.5);
    }
}
