//! Property-based tests for the network simulator's invariants.

use netsim::topology::{plain_node, NodeKind, Topology};
use netsim::{Network, NodeId};
use simrng::prop::prelude::*;

/// Build a random connected backbone of `n` IXPs (a random spanning tree
/// plus some extra chords) with hosts hanging off random IXPs.
fn random_world(
    n_ixps: usize,
    chords: &[(usize, usize)],
    hosts: &[usize],
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut topo = Topology::new();
    let ixps: Vec<NodeId> = (0..n_ixps)
        .map(|i| {
            let lat = -60.0 + 120.0 * (i as f64 * 0.37).fract();
            let lon = -180.0 + 360.0 * (i as f64 * 0.61).fract();
            topo.add_node(plain_node(NodeKind::Ixp, geokit::GeoPoint::new(lat, lon)))
        })
        .collect();
    // Spanning tree: node i links to a previous node.
    for i in 1..n_ixps {
        let parent = (i * 7) % i;
        let d = topo
            .node(ixps[i])
            .location
            .distance_km(&topo.node(ixps[parent]).location);
        topo.add_link(ixps[i], ixps[parent], (d / 200.0).max(0.1));
    }
    for &(a, b) in chords {
        let (a, b) = (a % n_ixps, b % n_ixps);
        if a == b || topo.neighbours(ixps[a]).iter().any(|&(_, n)| n == ixps[b]) {
            continue;
        }
        let d = topo
            .node(ixps[a])
            .location
            .distance_km(&topo.node(ixps[b]).location);
        topo.add_link(ixps[a], ixps[b], (d / 150.0).max(0.1));
    }
    let host_ids: Vec<NodeId> = hosts
        .iter()
        .map(|&h| {
            let ixp = ixps[h % n_ixps];
            let loc = topo.node(ixp).location;
            let host = topo.add_node(plain_node(NodeKind::Host, loc));
            topo.add_link(host, ixp, 0.4);
            host
        })
        .collect();
    (topo, ixps, host_ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_pair_is_reachable_and_rtt_respects_the_floor(
        n in 3usize..12,
        chords in prop::collection::vec((0usize..12, 0usize..12), 0..8),
        hosts in prop::collection::vec(0usize..12, 2..5),
        seed in 0u64..1000,
    ) {
        let (topo, _, host_ids) = random_world(n, &chords, &hosts);
        let mut net = Network::new(topo, seed);
        for i in 0..host_ids.len() {
            for j in 0..host_ids.len() {
                if i == j {
                    continue;
                }
                let floor = net.floor_rtt_ms(host_ids[i], host_ids[j])
                    .expect("spanning tree keeps the world connected");
                let sample = net.sample_rtt_ms(host_ids[i], host_ids[j]).unwrap();
                prop_assert!(sample >= floor - 1e-9, "sample {sample} < floor {floor}");
                let des = net
                    .tcp_connect_rtt(host_ids[i], host_ids[j], 80)
                    .expect("reachable");
                prop_assert!(des.as_ms() >= floor - 1e-9);
            }
        }
    }

    #[test]
    fn rtt_floor_is_symmetric(
        n in 3usize..12,
        chords in prop::collection::vec((0usize..12, 0usize..12), 0..8),
        hosts in prop::collection::vec(0usize..12, 2..4),
    ) {
        let (topo, _, host_ids) = random_world(n, &chords, &hosts);
        let net = Network::new(topo, 1);
        for i in 0..host_ids.len() {
            for j in (i + 1)..host_ids.len() {
                let ab = net.floor_rtt_ms(host_ids[i], host_ids[j]).unwrap();
                let ba = net.floor_rtt_ms(host_ids[j], host_ids[i]).unwrap();
                prop_assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
            }
        }
    }

    #[test]
    fn proxied_rtt_at_least_sum_of_leg_floors(
        n in 4usize..10,
        chords in prop::collection::vec((0usize..10, 0usize..10), 0..6),
        hosts in prop::collection::vec(0usize..10, 3..4),
        seed in 0u64..100,
    ) {
        let (topo, _, host_ids) = random_world(n, &chords, &hosts);
        let mut net = Network::new(topo, seed);
        let (client, proxy, landmark) = (host_ids[0], host_ids[1], host_ids[2]);
        let leg1 = net.floor_rtt_ms(client, proxy).unwrap();
        let leg2 = net.floor_rtt_ms(proxy, landmark).unwrap();
        if let Some(via) = net.tcp_connect_via_proxy_rtt(client, proxy, landmark, 80) {
            prop_assert!(
                via.as_ms() >= leg1 + leg2 - 1e-6,
                "via {} < {leg1} + {leg2}",
                via.as_ms()
            );
        }
    }

    #[test]
    fn traceroute_hops_form_a_prefix_of_the_route(
        n in 3usize..10,
        chords in prop::collection::vec((0usize..10, 0usize..10), 0..6),
        hosts in prop::collection::vec(0usize..10, 2..3),
    ) {
        let (topo, _, host_ids) = random_world(n, &chords, &hosts);
        let mut net = Network::new(topo, 3);
        let (a, b) = (host_ids[0], host_ids[1]);
        let hops = net.traceroute(a, b, 32);
        prop_assert!(!hops.is_empty());
        // Cooperative world: every hop responds and the last is the
        // target itself.
        prop_assert_eq!(*hops.last().unwrap(), Some(b));
        for h in &hops {
            prop_assert!(h.is_some());
        }
    }
}
