//! End-to-end round trip for the on-disk verdict store: run a (tiny)
//! study, append it as two epochs, reopen the file cold, and answer all
//! three query families — per-proxy lookup with TTL grading, the
//! per-provider trend, and per-country false-claim rates — purely from
//! disk, checking them against the in-memory results.

use proxy_verifier::vpnstudy::{
    tally_records, Freshness, RevalidationPriority, Study, StudyConfig, VerdictStore,
};

const DAY_MS: u64 = 86_400_000;
const T0_MS: u64 = 1_700_000_000_000;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pv-store-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(format!("{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn study_round_trips_through_disk_and_answers_all_queries() {
    let mut config = StudyConfig::small(0x57012e);
    config.total_proxies = 24;
    let mut study = Study::build(config);
    let results = study.run();
    assert!(!results.records.is_empty(), "study produced no verdicts");

    let path = scratch("roundtrip");
    {
        let mut store = VerdictStore::open(&path).expect("open for writing");
        assert_eq!(store.append_epoch(&results, T0_MS).expect("epoch 0"), 0);
        assert_eq!(
            store.append_epoch(&results, T0_MS + DAY_MS).expect("epoch 1"),
            1
        );
    } // dropped: everything below is served by a cold reopen

    let store = VerdictStore::open(&path).expect("reopen");
    assert_eq!(store.epochs().len(), 2);
    assert_eq!(store.verdicts().len(), 2 * results.records.len());
    assert_eq!(store.failures().len(), 2 * results.failures.len());

    // --- per-proxy lookup: every measured proxy answers, and the row
    // matches the in-memory record exactly (latest epoch wins).
    let now_ms = T0_MS + DAY_MS + 1_000;
    for r in &results.records {
        let answer = store
            .lookup(r.proxy.node, now_ms, DAY_MS)
            .unwrap_or_else(|| panic!("no stored verdict for node {}", r.proxy.node));
        assert_eq!(answer.verdict.epoch, 1, "lookup must serve the latest epoch");
        assert_eq!(answer.recorded_at_ms, T0_MS + DAY_MS);
        assert_eq!(answer.freshness, Freshness::Fresh);
        assert_eq!(answer.revalidate, RevalidationPriority::NotNeeded);
        assert_eq!(answer.verdict.provider, r.proxy.provider);
        assert_eq!(answer.verdict.claimed, r.proxy.claimed);
        assert_eq!(answer.verdict.assessment, r.verdict.assessment);
        assert_eq!(answer.verdict.refined, r.refined.assessment);
        assert_eq!(
            answer.verdict.region_area_km2.to_bits(),
            r.region_area_km2.to_bits(),
            "floats must survive the disk round trip bit-exact"
        );
    }
    // Unmeasured proxies have no verdict row.
    for f in &results.failures {
        assert!(store.lookup(f.proxy.node, now_ms, DAY_MS).is_none());
    }

    // --- provider trend: summed across providers, each epoch's tally
    // must reproduce the in-memory refined tally of the whole study.
    let expected = tally_records(&results, true);
    let providers = study.providers.profiles.len();
    for epoch in 0..2usize {
        let mut epoch_total = proxy_verifier::vpnstudy::VerdictTally::default();
        for provider in 0..providers {
            epoch_total.absorb(&store.provider_trend(provider)[epoch].1);
        }
        assert_eq!(epoch_total, expected, "epoch {epoch} trend mismatch");
    }

    // --- country false rates: totals cover every stored verdict, rates
    // are sorted non-increasing, and each country's tally matches a
    // recount of the in-memory records (doubled for the two epochs).
    let rates = store.country_false_rates();
    let total: usize = rates.iter().map(|(_, t)| t.total()).sum();
    assert_eq!(total, store.verdicts().len());
    for pair in rates.windows(2) {
        assert!(pair[0].1.false_rate() >= pair[1].1.false_rate());
    }
    for (country, tally) in &rates {
        let recount = proxy_verifier::vpnstudy::VerdictTally::tally(
            results
                .records
                .iter()
                .filter(|r| r.proxy.claimed == *country)
                .map(|r| r.refined.assessment),
        );
        assert_eq!(tally.total(), 2 * recount.total());
        assert_eq!(tally.false_claims, 2 * recount.false_claims);
    }

    // --- staleness: past the TTL, everything queues for revalidation,
    // with caught-lying proxies first.
    let stale_ms = T0_MS + 5 * DAY_MS;
    let queue = store.revalidation_queue(stale_ms, DAY_MS);
    assert_eq!(queue.len(), results.records.len());
    for pair in queue.windows(2) {
        assert!(pair[0].1 >= pair[1].1, "queue must be sorted most-urgent first");
    }
    let urgent = queue
        .iter()
        .filter(|(_, p)| *p == RevalidationPriority::Urgent)
        .count();
    assert_eq!(urgent, expected.false_claims + expected.suspicious);
}

#[test]
fn merged_stores_answer_like_a_single_writer() {
    let mut config = StudyConfig::small(0x57012f);
    config.total_proxies = 12;
    let mut study = Study::build(config);
    let results = study.run();

    // Site A and site B each persist the same run; a coordinator merges
    // B into A and the combined store serves queries over both epochs.
    let a_path = scratch("site-a");
    let b_path = scratch("site-b");
    let mut a = VerdictStore::open(&a_path).expect("open a");
    let mut b = VerdictStore::open(&b_path).expect("open b");
    a.append_epoch(&results, T0_MS).expect("epoch at a");
    b.append_epoch(&results, T0_MS + DAY_MS).expect("epoch at b");
    assert_eq!(a.merge_from(&b).expect("merge"), 1);

    let merged = VerdictStore::open(&a_path).expect("reopen merged");
    assert_eq!(merged.epochs().len(), 2);
    assert_eq!(merged.verdicts().len(), 2 * results.records.len());
    if let Some(r) = results.records.first() {
        let answer = merged
            .lookup(r.proxy.node, T0_MS + DAY_MS, DAY_MS)
            .expect("lookup after merge");
        assert_eq!(answer.verdict.epoch, 1, "merged epoch must win as latest");
        assert_eq!(answer.recorded_at_ms, T0_MS + DAY_MS);
    }
}
