//! Integration tests for the measurement-layer findings: the §4.3 tool
//! behaviour at world scale and the §8 adversarial-proxy attacks.

use proxy_verifier::atlas::{
    Browser, CalibrationDb, CliTool, Constellation, ConstellationConfig, LandmarkServer,
    MeasurementOs, WebTool,
};
use proxy_verifier::geoloc::proxy::ProxyContext;
use proxy_verifier::geoloc::twophase::{run_two_phase, ProxyProber};
use proxy_verifier::netsim::{FilterPolicy, WorldNet, WorldNetConfig};
use proxy_verifier::{CbgPlusPlus, GeoGrid, GeoPoint, Geolocator, WorldAtlas};
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};

struct Fixture {
    world: WorldNet,
    constellation: Constellation,
    calibration: CalibrationDb,
    /// A VPN proxy truly in Amsterdam: dense landmarks nearby give a
    /// tightly localized honest region — the right stage for the
    /// delay-inflation attack.
    proxy_ams: u32,
    /// Amsterdam proxy's true location.
    truth_ams: GeoPoint,
    /// A VPN proxy truly in Johannesburg — far from the European
    /// landmark clusters an RTT-deflation attack collapses onto — the
    /// right stage for the SYN-ACK-forging attack.
    proxy_jnb: u32,
    /// Johannesburg proxy's true location.
    truth_jnb: GeoPoint,
    /// The measurement client in Frankfurt.
    client: u32,
}

fn fixture() -> &'static Mutex<Fixture> {
    static S: OnceLock<Mutex<Fixture>> = OnceLock::new();
    S.get_or_init(|| {
        let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
        let mut world = WorldNet::build(atlas, WorldNetConfig::default());
        let constellation = Constellation::place(&mut world, &ConstellationConfig::small(55));
        let calibration = CalibrationDb::collect(world.network_mut(), &constellation, 10);
        let truth_ams = GeoPoint::new(52.37, 4.90);
        let proxy_ams = world.attach_host(truth_ams, FilterPolicy::vpn_server());
        let truth_jnb = GeoPoint::new(-26.20, 28.05);
        let proxy_jnb = world.attach_host(truth_jnb, FilterPolicy::vpn_server());
        let client = world.attach_host(GeoPoint::new(50.11, 8.68), FilterPolicy::default());
        Mutex::new(Fixture {
            world,
            constellation,
            calibration,
            proxy_ams,
            truth_ams,
            proxy_jnb,
            truth_jnb,
            client,
        })
    })
}

#[test]
fn web_tool_slope_ratio_is_about_two() {
    // Fig. 4: the Web tool's two-round-trip group has ≈ 2× the slope of
    // its one-round-trip group (paper: 1.96 on Linux).
    let mut g = fixture().lock().unwrap();
    let Fixture {
        world,
        constellation,
        ..
    } = &mut *g;
    let client_loc = GeoPoint::new(50.06, 8.6);
    let client = world.attach_host(client_loc, FilterPolicy::default());
    let tool = WebTool {
        os: MeasurementOs::Linux,
        browser: Browser::Chrome,
    };
    let mut rng = StdRng::seed_from_u64(44);
    let (mut one, mut two) = (Vec::new(), Vec::new());
    for lm in constellation.landmarks() {
        if let Some(s) = tool.measure(world.network_mut(), client, lm.node, &mut rng) {
            let d = client_loc.distance_km(&lm.location);
            if s.true_round_trips == 1 {
                one.push((d, s.rtt_ms));
            } else {
                two.push((d, s.rtt_ms));
            }
        }
    }
    let l1 = proxy_verifier::geokit::regress::ols_line(&one).expect("1rt group");
    let l2 = proxy_verifier::geokit::regress::ols_line(&two).expect("2rt group");
    let ratio = l2.slope / l1.slope;
    assert!(
        (1.6..=2.5).contains(&ratio),
        "slope ratio {ratio} (paper: 1.96)"
    );
}

#[test]
fn cli_tool_matches_the_one_round_trip_group() {
    // §4.3's ANOVA conclusion: CLI and one-round-trip Web measurements
    // estimate the same delay–distance relationship.
    let mut g = fixture().lock().unwrap();
    let Fixture {
        world,
        constellation,
        ..
    } = &mut *g;
    let client_loc = GeoPoint::new(50.06, 8.6);
    let client = world.attach_host(client_loc, FilterPolicy::default());
    let mut cli = Vec::new();
    for lm in constellation.landmarks() {
        if let Some(s) = CliTool.measure(world.network_mut(), client, lm.node) {
            cli.push((client_loc.distance_km(&lm.location), s.rtt_ms));
        }
    }
    let tool = WebTool {
        os: MeasurementOs::Linux,
        browser: Browser::Firefox,
    };
    let mut rng = StdRng::seed_from_u64(45);
    let mut web1 = Vec::new();
    for lm in constellation.landmarks() {
        if lm.port_80_open {
            continue; // keep only the one-round-trip population
        }
        if let Some(s) = tool.measure(world.network_mut(), client, lm.node, &mut rng) {
            web1.push((client_loc.distance_km(&lm.location), s.rtt_ms));
        }
    }
    let lc = proxy_verifier::geokit::regress::ols_line(&cli).unwrap();
    let lw = proxy_verifier::geokit::regress::ols_line(&web1).unwrap();
    assert!(
        (lc.slope - lw.slope).abs() < 0.25 * lc.slope,
        "CLI slope {} vs Web-1rt slope {}",
        lc.slope,
        lw.slope
    );
}

fn locate_proxy_region(
    f: &mut Fixture,
    proxy: u32,
    client: u32,
) -> Option<proxy_verifier::Region> {
    let atlas = Arc::clone(f.world.atlas());
    let server = LandmarkServer::new(&f.constellation, &f.calibration, &atlas);
    let ctx = ProxyContext::establish(f.world.network_mut(), client, proxy, 0.5, 8)?;
    let mut prober = ProxyProber::new(ctx, 3);
    let mut rng = StdRng::seed_from_u64(7);
    let result = run_two_phase(f.world.network_mut(), &server, &mut prober, &mut rng)?;
    Some(
        CbgPlusPlus
            .locate(&result.observations, atlas.plausibility_mask())
            .region,
    )
}

#[test]
fn added_delay_inflates_the_region_without_breaking_coverage() {
    // Gill et al. (§8): an adversary adding delay makes CBG-family
    // regions *bigger* (simple models can't be dragged off the truth by
    // delay inflation alone).
    let mut g = fixture().lock().unwrap();
    let (proxy, client, truth) = (g.proxy_ams, g.client, g.truth_ams);

    let honest = locate_proxy_region(&mut g, proxy, client).expect("measurable");
    assert!(honest.contains_point(&truth));

    g.world
        .network_mut()
        .faults_mut()
        .set_added_delay(proxy, 30.0, 2.0);
    let delayed = locate_proxy_region(&mut g, proxy, client).expect("measurable");
    g.world
        .network_mut()
        .faults_mut()
        .set_added_delay(proxy, 0.0, 0.0);

    assert!(
        delayed.area_km2() > 3.0 * honest.area_km2(),
        "delay should balloon the region: {} vs {}",
        delayed.area_km2(),
        honest.area_km2()
    );
    assert!(delayed.contains_point(&truth));
}

#[test]
fn forged_synacks_corrupt_the_prediction() {
    // Abdou et al. (§8): deflating RTTs by forging SYN-ACKs makes every
    // landmark look adjacent, so the honest region is replaced by a
    // degenerate one — usually displaced entirely, occasionally a tiny
    // fragment that happens to sit near some landmark. Either way the
    // prediction collapses far below the honest region's size and no
    // longer resembles it.
    let mut g = fixture().lock().unwrap();
    let (proxy, client, truth) = (g.proxy_jnb, g.client, g.truth_jnb);

    let honest = locate_proxy_region(&mut g, proxy, client).expect("measurable");
    assert!(honest.contains_point(&truth));

    g.world
        .network_mut()
        .faults_mut()
        .set_forge_synack(proxy, true);
    let forged = locate_proxy_region(&mut g, proxy, client).expect("measurable");
    g.world
        .network_mut()
        .faults_mut()
        .set_forge_synack(proxy, false);

    // Corruption signals: displaced off the truth entirely, collapsed to
    // a sliver, or shattered into fragments scattered across far more
    // countries than any honest contiguous region would touch.
    let atlas = Arc::clone(g.world.atlas());
    let honest_countries = atlas.countries_touched(&honest).len();
    let forged_countries = atlas.countries_touched(&forged).len();
    let displaced = !forged.contains_point(&truth);
    let degenerate = forged.area_km2() < honest.area_km2() * 0.5;
    let shattered = forged_countries >= honest_countries * 3;
    assert!(
        displaced || degenerate || shattered,
        "forged SYN-ACKs should corrupt the prediction (honest {:.0} km² over {honest_countries} countries, \
         forged {:.0} km² over {forged_countries} countries, covers truth: {})",
        honest.area_km2(),
        forged.area_km2(),
        !displaced
    );
}
