//! Adversary campaign: active timing attacks against the audit must be
//! (a) physically honest — delay-only manipulation cannot forge a
//! `Credible` verdict, (b) caught — deflation-capable attacks that do
//! deceive the baseline pipeline are flagged by the Byzantine defense
//! with named evidence, and (c) deterministic — an armed, defended
//! study renders byte-identical reports and JSONL traces at any thread
//! count.

use proxy_verifier::vpnstudy::campaign::{run_cell, shaping_plan, AdversaryModel};
use proxy_verifier::vpnstudy::{report, Study, StudyConfig};
use proxy_verifier::Assessment;

const SEED: u64 = 0xadbeef;

fn campaign_config() -> StudyConfig {
    let mut config = StudyConfig::small(SEED);
    config.total_proxies = 28;
    config
}

/// Tactics that only *add* delay (holds) can never exclude the true
/// location: every shaped disk still contains it, so the region keeps
/// covering the truth and a false claim never turns `Credible`. This is
/// the upper-bound-constraint safety theorem, checked empirically at
/// full adversary strength.
#[test]
fn delay_only_shaping_cannot_forge_credible() {
    let cell = run_cell(&campaign_config(), AdversaryModel::DelayShaping, 1.0);
    assert!(cell.attacked > 0, "no lying proxies to attack");
    assert_eq!(
        cell.baseline_deceived, 0,
        "pure delay inflation forged a Credible verdict"
    );
}

/// Deflation-capable models (inflated self-ping, colluding landmarks,
/// and the combined attack) defeat the baseline pipeline on false
/// claims — and the defended pipeline catches attacks the baseline
/// certified.
#[test]
fn deflation_models_defeat_baseline_and_are_caught() {
    let config = campaign_config();
    for model in [
        AdversaryModel::SelfPingInflation,
        AdversaryModel::Collusion,
        AdversaryModel::FullShaping,
    ] {
        let cell = run_cell(&config, model, 0.66);
        assert!(
            cell.baseline_deceived > 0,
            "{}: attack never defeated the baseline",
            model.label()
        );
        assert!(
            cell.defended_deceived < cell.baseline_deceived,
            "{}: defense caught none of the {} baseline deceptions",
            model.label(),
            cell.baseline_deceived
        );
        assert!(
            cell.caught > 0,
            "{}: no attacked proxy ended Suspicious/False",
            model.label()
        );
    }
}

/// The combined attack at moderate strength is fully neutralized, and
/// every withheld verdict carries named evidence.
#[test]
fn full_shaping_is_caught_with_named_evidence() {
    let mut study = Study::build(campaign_config());
    study.config.defense.enabled = true;
    let (plan, targets) = shaping_plan(&study, AdversaryModel::FullShaping, 0.66);
    *study.world.network_mut().adversary_mut() = plan;
    let results = study.run();

    let mut suspicious = 0;
    for r in &results.records {
        if !targets.contains(&r.proxy.node) {
            continue;
        }
        assert_ne!(
            r.refined.assessment,
            Assessment::Credible,
            "defended pipeline certified an attacked lying proxy"
        );
        let defense = r
            .defense
            .as_ref()
            .expect("defended run must attach a defense report");
        if r.refined.assessment == Assessment::Suspicious {
            suspicious += 1;
            assert!(
                defense.suspicious() && !defense.evidence.is_empty(),
                "Suspicious verdict without named evidence"
            );
        }
    }
    assert!(suspicious > 0, "no verdict was withheld as Suspicious");
}

/// An armed, defended study — adversary holds, timeouts, collusion,
/// self-ping inflation, challenge sweep, defense events and all — must
/// render byte-identical reports and JSONL traces at 1 and 8 worker
/// threads.
#[test]
fn armed_defended_study_is_byte_deterministic_across_threads() {
    let render = |threads: usize| -> (String, String, String) {
        let mut study = Study::build(campaign_config());
        study.config.defense.enabled = true;
        let (plan, _) = shaping_plan(&study, AdversaryModel::FullShaping, 0.66);
        *study.world.network_mut().adversary_mut() = plan;
        let results = study.run_with_threads(threads);
        (
            report::render_overall(&study, &results),
            report::render_reliability(&results),
            results.trace_jsonl(),
        )
    };
    let (overall_1, reliability_1, trace_1) = render(1);
    let (overall_8, reliability_8, trace_8) = render(8);
    assert_eq!(overall_1, overall_8, "report differs across thread counts");
    assert_eq!(reliability_1, reliability_8);
    assert!(
        trace_1.contains("\"adv\"") || trace_1.contains("defense"),
        "trace records no adversary/defense events"
    );
    assert_eq!(trace_1, trace_8, "JSONL trace differs across thread counts");
}
