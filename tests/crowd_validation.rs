//! The §5 algorithm-validation experiment as an integration test: the
//! Fig. 9 ordering must reproduce on a fresh small cohort.

use proxy_verifier::atlas::{CalibrationDb, Constellation, LandmarkServer};
use proxy_verifier::geoloc::delay_model::SpotterModel;
use proxy_verifier::vpnstudy::crowd::{measure_crowd, synthesize_hosts, CrowdRecord};
use proxy_verifier::{
    Cbg, CbgPlusPlus, GeoGrid, Geolocator, Hybrid, QuasiOctant, Spotter, StudyConfig, WorldAtlas,
};
use std::sync::{Arc, OnceLock};

struct Fixture {
    atlas: Arc<WorldAtlas>,
    records: Vec<CrowdRecord>,
    spotter_model: SpotterModel,
}

fn fixture() -> &'static Fixture {
    static S: OnceLock<Fixture> = OnceLock::new();
    S.get_or_init(|| {
        let config = StudyConfig {
            crowd_volunteers: 10,
            crowd_workers: 30,
            ..StudyConfig::small(4242)
        };
        let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(config.grid_resolution_deg)));
        let mut world = proxy_verifier::netsim::WorldNet::build(
            Arc::clone(&atlas),
            proxy_verifier::netsim::WorldNetConfig {
                seed: config.seed,
                ..Default::default()
            },
        );
        let constellation = Constellation::place(&mut world, &config.constellation);
        let calibration = CalibrationDb::collect(
            world.network_mut(),
            &constellation,
            config.calibration_pings,
        );
        let hosts = synthesize_hosts(&mut world, &config);
        let records = {
            let server = LandmarkServer::new(&constellation, &calibration, &atlas);
            measure_crowd(&mut world, &server, &hosts, &config)
        };
        let pool: Vec<&proxy_verifier::atlas::CalibrationSet> = (0..constellation
            .num_anchors())
            .map(|i| calibration.for_anchor(i))
            .collect();
        let spotter_model = SpotterModel::calibrate(&pool);
        Fixture {
            atlas,
            records,
            spotter_model,
        }
    })
}

fn coverage_of(algo: &dyn Geolocator) -> (f64, usize, Vec<f64>) {
    let f = fixture();
    let mask = f.atlas.plausibility_mask();
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut empty = 0usize;
    let mut areas = Vec::new();
    for r in &f.records {
        let p = algo.locate(&r.observations, mask);
        if p.region.is_empty() {
            empty += 1;
            continue;
        }
        total += 1;
        if p.region.contains_point(&r.host.true_location) {
            hits += 1;
        }
        areas.push(p.area_km2());
    }
    (hits as f64 / total.max(1) as f64, empty, areas)
}

#[test]
fn cbgpp_always_covers_the_truth() {
    // §5.1: "this algorithm eliminated all of the remaining cases where
    // the predicted region did not cover the true location." On our
    // substrate a rare (~1 host in 20) sub-100-km miss survives, caused
    // by probe landmarks inheriting their nearest anchor's bestline
    // intercept plus coarse-grid quantization — the near-border residual
    // the paper itself observes when comparing against ICLab (§6.2).
    let (coverage, empty, _) = coverage_of(&CbgPlusPlus);
    assert_eq!(empty, 0, "CBG++ must never return an empty region");
    assert!(
        coverage >= 0.92,
        "CBG++ covered only {:.0} % of hosts",
        coverage * 100.0
    );
}

#[test]
fn cbg_covers_most_hosts() {
    // Fig. 9A: CBG's predictions include the truth for ~90 %.
    let (coverage, _, _) = coverage_of(&Cbg);
    assert!(
        coverage >= 0.8,
        "CBG covered only {:.0} %",
        coverage * 100.0
    );
}

#[test]
fn sophisticated_models_lose_on_noisy_web_data() {
    // Fig. 9's headline: the simple model beats the sophisticated ones
    // under crowdsourced (upward-biased) measurements.
    let f = fixture();
    let (cbg, _, _) = coverage_of(&Cbg);
    let (octant, _, _) = coverage_of(&QuasiOctant);
    let (spotter, _, _) = coverage_of(&Spotter::new(f.spotter_model.clone()));
    let (hybrid, _, _) = coverage_of(&Hybrid::new(f.spotter_model.clone()));
    assert!(cbg > octant + 0.2, "CBG {cbg} vs Quasi-Octant {octant}");
    assert!(cbg > spotter + 0.2, "CBG {cbg} vs Spotter {spotter}");
    assert!(cbg > hybrid + 0.2, "CBG {cbg} vs Hybrid {hybrid}");
}

#[test]
fn cbg_pays_for_coverage_with_region_size() {
    // Fig. 9C: CBG's regions are much larger than the other three's.
    let f = fixture();
    let (_, _, cbg_areas) = coverage_of(&Cbg);
    let (_, _, octant_areas) = coverage_of(&QuasiOctant);
    let (_, _, spotter_areas) = coverage_of(&Spotter::new(f.spotter_model.clone()));
    let med = |v: &[f64]| proxy_verifier::geokit::stats::median(v).unwrap_or(0.0);
    assert!(
        med(&cbg_areas) > 3.0 * med(&octant_areas),
        "CBG {} vs Octant {}",
        med(&cbg_areas),
        med(&octant_areas)
    );
    assert!(
        med(&cbg_areas) > 2.0 * med(&spotter_areas),
        "CBG {} vs Spotter {}",
        med(&cbg_areas),
        med(&spotter_areas)
    );
}

#[test]
fn centroids_are_comparably_placed() {
    // Fig. 9B: centroid-to-truth distances are in the same ballpark for
    // all algorithms (none can center its region well).
    let f = fixture();
    let mask = f.atlas.plausibility_mask();
    let algos: Vec<Box<dyn Geolocator>> = vec![
        Box::new(Cbg),
        Box::new(QuasiOctant),
        Box::new(Spotter::new(f.spotter_model.clone())),
    ];
    let mut medians = Vec::new();
    for algo in &algos {
        let mut ds = Vec::new();
        for r in &f.records {
            let p = algo.locate(&r.observations, mask);
            if let Some(c) = p.region.centroid() {
                ds.push(c.distance_km(&r.host.true_location));
            }
        }
        medians.push(proxy_verifier::geokit::stats::median(&ds).unwrap());
    }
    let max = medians.iter().copied().fold(0.0f64, f64::max);
    let min = medians.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        max < min * 12.0,
        "centroid medians too spread: {medians:?}"
    );
}
