//! Quickstart: the paper's Fig. 1 in code.
//!
//! "If something is within 500 km of Bourges, 500 km of Cromer, and
//! 800 km of Randers, then it is in Belgium (roughly)." We intersect the
//! three disks on the global grid, mask to land, and ask the world atlas
//! which countries the region covers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use proxy_verifier::geoloc::multilateration::{intersect_constraints, RingConstraint};
use proxy_verifier::{GeoGrid, GeoPoint, WorldAtlas};

fn main() {
    // A 0.25° grid: cells ≤ 28 km across.
    let grid = GeoGrid::new(0.25);
    let atlas = WorldAtlas::new(grid);

    let constraints = [
        ("Bourges", GeoPoint::new(47.08, 2.40), 500.0),
        ("Cromer", GeoPoint::new(52.93, 1.30), 500.0),
        ("Randers", GeoPoint::new(56.46, 10.04), 800.0),
    ];
    println!("multilateration constraints:");
    for (name, loc, r) in &constraints {
        println!("  within {r:>5} km of {name} {loc}");
    }

    let disks: Vec<RingConstraint> = constraints
        .iter()
        .map(|&(_, loc, r)| RingConstraint::disk(loc, r))
        .collect();
    let region = intersect_constraints(&disks, atlas.plausibility_mask());

    println!(
        "\nintersection: {} cells, {:.0} km² of land",
        region.cell_count(),
        region.area_km2()
    );
    if let Some(centroid) = region.centroid() {
        println!("centroid: {centroid}");
    }

    println!("\ncountries covered (km² of the region):");
    for (country, area) in atlas.countries_touched(&region) {
        println!("  {:<24} {:>9.0} km²", atlas.country(country).name(), area);
    }
    println!("\n…which is Belgium, roughly — exactly the paper's Fig. 1.");
}
