//! The §8.1 extensions, live: iterative refinement and proxy-to-proxy
//! co-location detection.
//!
//! "We think this can be addressed with an iterative refinement process,
//! in which additional probes and anchors are included in the measurement
//! as necessary to reduce the size of the predicted region." — and —
//! "… some groups of proxies (including proxies claimed to be in separate
//! countries) show less than 5 ms round-trip times among themselves."
//!
//! ```sh
//! cargo run --release --example iterative_refinement
//! ```

use proxy_verifier::atlas::{CalibrationDb, Constellation, LandmarkServer};
use proxy_verifier::geoloc::proxy::ProxyContext;
use proxy_verifier::geoloc::twophase::{run_refined, ProxyProber, RefinementConfig};
use proxy_verifier::netsim::{FilterPolicy, WorldNetConfig};
use proxy_verifier::vpnstudy::colocation::{detect_same_lan_groups, SAME_LAN_RTT_MS};
use proxy_verifier::vpnstudy::{ProviderSet, StudyConfig};
use proxy_verifier::worldmap::market::MarketSurvey;
use proxy_verifier::{CbgPlusPlus, GeoGrid, WorldAtlas};
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::sync::Arc;

fn main() {
    let config = StudyConfig {
        total_proxies: 30,
        ..StudyConfig::small(2718)
    };
    println!("building the world and deploying {} proxies…", config.total_proxies);
    let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(config.grid_resolution_deg)));
    let survey = MarketSurvey::generate(&atlas, config.seed);
    let mut world = proxy_verifier::netsim::WorldNet::build(
        Arc::clone(&atlas),
        WorldNetConfig {
            seed: config.seed,
            ..Default::default()
        },
    );
    let constellation = Constellation::place(&mut world, &config.constellation);
    let calibration =
        CalibrationDb::collect(world.network_mut(), &constellation, config.calibration_pings);
    let providers = ProviderSet::deploy(&mut world, &survey, &config);
    let client = world.attach_host(config.client_location, FilterPolicy::default());
    let mask = atlas.plausibility_mask().clone();

    // --- iterative refinement on the first proxy -------------------------
    let proxy = providers.proxies[0].clone();
    println!(
        "\niteratively refining proxy 0 (claimed {}, really in {}):",
        atlas.country(proxy.claimed).iso2(),
        atlas.country(proxy.true_country).iso2()
    );
    let server = LandmarkServer::new(&constellation, &calibration, &atlas);
    let ctx = ProxyContext::establish(world.network_mut(), client, proxy.node, 0.5, 8)
        .expect("tunnel up");
    let mut prober = ProxyProber::new(ctx, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let refined = run_refined(
        world.network_mut(),
        &server,
        &mut prober,
        &CbgPlusPlus,
        &mask,
        &RefinementConfig::default(),
        &mut rng,
    )
    .expect("measurable");
    for (round, area) in refined.area_history.iter().enumerate() {
        println!("  after round {round}: region {area:>12.0} km²");
    }
    println!(
        "  truth covered: {}",
        refined.region.contains_point(&proxy.true_location)
    );

    // --- proxy-to-proxy co-location --------------------------------------
    println!("\nmeasuring all proxy pairs through their tunnels (< {SAME_LAN_RTT_MS} ms ⇒ same LAN):");
    let mut self_pings = Vec::new();
    for p in &providers.proxies {
        let ctx = ProxyContext::establish(world.network_mut(), client, p.node, 0.5, 6)
            .expect("tunnel up");
        self_pings.push(ctx.self_ping_ms);
    }
    let groups = detect_same_lan_groups(
        world.network_mut(),
        client,
        &providers.proxies,
        &self_pings,
        0.5,
        3,
        SAME_LAN_RTT_MS,
    );
    for (g, members) in groups.iter().enumerate() {
        println!("  group {g}:");
        for &i in members {
            let p = &providers.proxies[i];
            println!(
                "    proxy {i}: provider {} claims {:<3} — actually {} ({})",
                providers.profiles[p.provider].name,
                atlas.country(p.claimed).iso2(),
                atlas.country(p.true_country).iso2(),
                if p.claimed == p.true_country { "honest" } else { "lying" },
            );
        }
    }
    println!(
        "\nGroups mixing claimed countries are the paper's §8.1 observation:\n\
         'some groups of proxies (including proxies claimed to be in separate\n\
         countries) show less than 5 ms round-trip times among themselves'."
    );
}
