//! The paper's §6 study, miniaturized: audit seven VPN providers' country
//! claims and print the headline tables (Figs. 17, 21, 22).
//!
//! ```sh
//! cargo run --release --example vpn_audit            # small, seconds
//! cargo run --release --example vpn_audit -- medium  # ~a minute
//! ```

use proxy_verifier::vpnstudy::confusion::continent_confusion;
use proxy_verifier::vpnstudy::report;
use proxy_verifier::{Study, StudyConfig};

fn main() {
    let medium = std::env::args().nth(1).as_deref() == Some("medium");
    let config = if medium {
        StudyConfig {
            total_proxies: 500,
            ..StudyConfig::small(99)
        }
    } else {
        StudyConfig::small(99)
    };
    println!(
        "building the study ({} proxies, {} anchors)…",
        config.total_proxies,
        config
            .constellation
            .anchors_per_continent
            .iter()
            .sum::<usize>()
    );
    let mut study = Study::build(config);
    println!("running the audit…");
    let results = study.run();

    println!("\n=== overall assessment (Fig. 17) ===");
    print!("{}", report::render_overall(&study, &results));

    println!("\n=== method agreement with provider claims (Fig. 21) ===");
    print!("{}", report::render_fig21(&study, &results));

    println!("\n=== honesty by provider × country (Fig. 18) ===");
    print!(
        "{}",
        report::render_provider_country_honesty(&study, &results, 14)
    );

    println!("\n=== continent confusion (Fig. 22) ===");
    let m = continent_confusion(study.world.atlas(), &results);
    print!("{}", report::render_confusion(&m, 8));
}
