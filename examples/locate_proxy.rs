//! Catch one lying proxy, end to end.
//!
//! A VPN provider claims a server in North Korea; the hardware is really
//! in Frankfurt. We bring up the simulated world, establish the tunnel,
//! self-ping to estimate the tunnel leg (η-corrected, §5.3), run the
//! two-phase measurement, locate the server with CBG++, and judge the
//! claim.
//!
//! ```sh
//! cargo run --release --example locate_proxy
//! ```

use proxy_verifier::atlas::{CalibrationDb, Constellation, ConstellationConfig, LandmarkServer};
use proxy_verifier::geoloc::assess::assess_claim;
use proxy_verifier::geoloc::proxy::ProxyContext;
use proxy_verifier::geoloc::twophase::{run_two_phase, ProxyProber};
use proxy_verifier::netsim::{FilterPolicy, WorldNet, WorldNetConfig};
use proxy_verifier::{CbgPlusPlus, GeoGrid, GeoPoint, Geolocator, WorldAtlas};
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::sync::Arc;

fn main() {
    println!("building the world…");
    let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(0.5)));
    let mut world = WorldNet::build(Arc::clone(&atlas), WorldNetConfig::default());
    let constellation = Constellation::place(&mut world, &ConstellationConfig::small(2024));
    let calibration = CalibrationDb::collect(world.network_mut(), &constellation, 20);

    // The proxy: advertised in Pyongyang, physically in Frankfurt.
    let claimed = atlas.country_by_iso2("kp").expect("North Korea in atlas");
    let truth = GeoPoint::new(50.10, 8.66);
    let proxy = world.attach_host(truth, FilterPolicy::vpn_server());
    // Our measurement client, also in Frankfurt (as the paper's was).
    let client = world.attach_host(GeoPoint::new(50.11, 8.68), FilterPolicy::default());

    println!("establishing the tunnel and self-pinging…");
    let ctx = ProxyContext::establish(world.network_mut(), client, proxy, 0.5, 10)
        .expect("tunnel answers");
    println!(
        "  tunnel self-ping: {:.2} ms  (≈ 2 × client↔proxy RTT)",
        ctx.self_ping_ms
    );

    println!("two-phase measurement through the tunnel…");
    let server = LandmarkServer::new(&constellation, &calibration, &atlas);
    let mut prober = ProxyProber::new(ctx, 3);
    let mut rng = StdRng::seed_from_u64(7);
    let result = run_two_phase(world.network_mut(), &server, &mut prober, &mut rng)
        .expect("proxy measurable");
    println!(
        "  phase-1 continent guess: {}; {} landmark observations",
        result.continent,
        result.observations.len()
    );

    println!("locating with CBG++…");
    let prediction = CbgPlusPlus.locate(&result.observations, atlas.plausibility_mask());
    println!(
        "  prediction region: {:.0} km² across {} cells",
        prediction.area_km2(),
        prediction.region.cell_count()
    );
    println!("  countries covered:");
    for (c, area) in atlas.countries_touched(&prediction.region) {
        println!("    {:<20} {:>9.0} km²", atlas.country(c).name(), area);
    }

    let verdict = assess_claim(&atlas, &prediction.region, claimed);
    println!(
        "\nclaim 'this server is in {}': {:?} (continent: {:?})",
        atlas.country(claimed).name(),
        verdict.assessment,
        verdict.continent
    );
    let covers_truth = prediction.region.contains_point(&truth);
    println!(
        "ground truth (Frankfurt) inside the prediction: {covers_truth}"
    );
}
