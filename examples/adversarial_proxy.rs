//! The §8 threat model: a proxy that actively lies to the measurement.
//!
//! An honest tunnel is located correctly; then the same proxy (a) adds
//! selective delay to tunnelled packets (the Gill et al. attack — pushes
//! the prediction region outward / away) and (b) forges early SYN-ACKs
//! (the Abdou et al. attack — it sees the SYNs, so no sequence-number
//! guessing is needed — deflating RTTs and shifting the region towards
//! the victim landmarks).
//!
//! ```sh
//! cargo run --release --example adversarial_proxy
//! ```

use proxy_verifier::atlas::{CalibrationDb, Constellation, ConstellationConfig, LandmarkServer};
use proxy_verifier::geoloc::proxy::ProxyContext;
use proxy_verifier::geoloc::twophase::{run_two_phase, ProxyProber};
use proxy_verifier::netsim::{FilterPolicy, WorldNet, WorldNetConfig};
use proxy_verifier::{CbgPlusPlus, GeoGrid, GeoPoint, Geolocator, WorldAtlas};
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::sync::Arc;

fn locate(
    world: &mut WorldNet,
    constellation: &Constellation,
    calibration: &CalibrationDb,
    atlas: &Arc<WorldAtlas>,
    client: u32,
    proxy: u32,
) -> Option<(f64, Vec<String>)> {
    let server = LandmarkServer::new(constellation, calibration, atlas);
    let ctx = ProxyContext::establish(world.network_mut(), client, proxy, 0.5, 8)?;
    let mut prober = ProxyProber::new(ctx, 3);
    let mut rng = StdRng::seed_from_u64(11);
    let result = run_two_phase(world.network_mut(), &server, &mut prober, &mut rng)?;
    let prediction = CbgPlusPlus.locate(&result.observations, atlas.plausibility_mask());
    let countries = atlas
        .countries_touched(&prediction.region)
        .into_iter()
        .take(5)
        .map(|(c, _)| atlas.country(c).name().to_string())
        .collect();
    Some((prediction.area_km2(), countries))
}

fn main() {
    let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(0.5)));
    let mut world = WorldNet::build(Arc::clone(&atlas), WorldNetConfig::default());
    let constellation = Constellation::place(&mut world, &ConstellationConfig::small(31));
    let calibration = CalibrationDb::collect(world.network_mut(), &constellation, 15);

    let truth = GeoPoint::new(52.37, 4.90); // Amsterdam
    let proxy = world.attach_host(truth, FilterPolicy::vpn_server());
    let client = world.attach_host(GeoPoint::new(50.11, 8.68), FilterPolicy::default());

    println!("honest proxy (really in Amsterdam):");
    let (area, countries) =
        locate(&mut world, &constellation, &calibration, &atlas, client, proxy)
            .expect("measurable");
    println!("  region {area:.0} km², countries: {}", countries.join(", "));

    println!("\nproxy adds ~40 ms of selective delay to everything it forwards:");
    world.network_mut().faults_mut().set_added_delay(proxy, 40.0, 5.0);
    let (area, countries) =
        locate(&mut world, &constellation, &calibration, &atlas, client, proxy)
            .expect("measurable");
    println!(
        "  region {area:.0} km², countries: {} (delay inflates distance bounds — the region balloons)",
        countries.join(", ")
    );
    world.network_mut().faults_mut().set_added_delay(proxy, 0.0, 0.0);

    println!("\nproxy forges immediate SYN-ACKs for tunnelled connections:");
    world.network_mut().faults_mut().set_forge_synack(proxy, true);
    let (area, countries) =
        locate(&mut world, &constellation, &calibration, &atlas, client, proxy)
            .expect("measurable");
    println!(
        "  region {area:.0} km², countries: {} (every landmark looks adjacent to the proxy!)",
        countries.join(", ")
    );
    println!(
        "\nAs §8 warns, a proxy in the middle can manipulate RTTs both up and down;\n\
         authenticated timestamps would be needed to prevent this."
    );
}
