//! The §5 algorithm test: CBG vs Quasi-Octant vs Spotter vs Hybrid vs
//! CBG++ on a crowdsourced validation cohort measured with the noisy Web
//! tool — the experiment behind Fig. 9.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout
//! ```

use proxy_verifier::atlas::{CalibrationDb, Constellation, LandmarkServer};
use proxy_verifier::geoloc::delay_model::SpotterModel;
use proxy_verifier::vpnstudy::crowd::{measure_crowd, synthesize_hosts};
use proxy_verifier::{
    Cbg, CbgPlusPlus, GeoGrid, Geolocator, Hybrid, QuasiOctant, Spotter, StudyConfig, WorldAtlas,
};
use std::sync::Arc;

fn main() {
    let config = StudyConfig {
        crowd_volunteers: 12,
        crowd_workers: 38,
        ..StudyConfig::small(5)
    };
    println!("building the validation world…");
    let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(config.grid_resolution_deg)));
    let mut world = proxy_verifier::netsim::WorldNet::build(
        Arc::clone(&atlas),
        proxy_verifier::netsim::WorldNetConfig {
            seed: config.seed,
            ..Default::default()
        },
    );
    let constellation = Constellation::place(&mut world, &config.constellation);
    let calibration =
        CalibrationDb::collect(world.network_mut(), &constellation, config.calibration_pings);
    let hosts = synthesize_hosts(&mut world, &config);
    println!("measuring {} crowd hosts with the Web tool…", hosts.len());
    let records = {
        let server = LandmarkServer::new(&constellation, &calibration, &atlas);
        measure_crowd(&mut world, &server, &hosts, &config)
    };

    // The global Spotter model, pooled over the anchor mesh.
    let pool: Vec<&proxy_verifier::atlas::CalibrationSet> = (0..constellation.num_anchors())
        .map(|i| calibration.for_anchor(i))
        .collect();
    let spotter_model = SpotterModel::calibrate(&pool);

    let algorithms: Vec<Box<dyn Geolocator>> = vec![
        Box::new(Cbg),
        Box::new(QuasiOctant),
        Box::new(Spotter::new(spotter_model.clone())),
        Box::new(Hybrid::new(spotter_model)),
        Box::new(CbgPlusPlus),
    ];

    let mask = atlas.plausibility_mask();
    println!(
        "\n{:<14} {:>9} {:>12} {:>14} {:>8}",
        "algorithm", "coverage", "median miss", "median area", "empty"
    );
    for algo in &algorithms {
        let mut misses = Vec::new();
        let mut areas = Vec::new();
        let mut empty = 0usize;
        for r in &records {
            let p = algo.locate(&r.observations, mask);
            match p.region.distance_from_km(&r.host.true_location) {
                Some(m) => {
                    misses.push(m);
                    areas.push(p.area_km2());
                }
                None => empty += 1,
            }
        }
        let coverage = misses.iter().filter(|&&m| m == 0.0).count() as f64
            / misses.len().max(1) as f64;
        println!(
            "{:<14} {:>8.0}% {:>9.0} km {:>11.0} km² {:>8}",
            algo.name(),
            coverage * 100.0,
            geokit::stats::median(&misses).unwrap_or(f64::NAN),
            geokit::stats::median(&areas).unwrap_or(f64::NAN),
            empty
        );
    }
    println!(
        "\npaper shape (Fig. 9): CBG covers ~90 % with the largest regions; \
         Quasi-Octant/Hybrid ~50 %; Spotter worst; CBG++ covers everything."
    );
}
