//! Effective-measurement analysis (§5.2, Fig. 11).
//!
//! "A large majority of all measurements lead to disks that radically
//! overestimate the possible distance … Multilateration produces the
//! same final prediction region even if these overestimates are
//! discarded. We call these measurements *ineffective*." A measurement
//! is effective iff removing its disk enlarges the final region; the
//! amount by which it shrank the region is its contribution.
//!
//! Implementation: leave-one-out over the disk set, O(n) region
//! intersections using prefix/suffix products of the constraint list.

use crate::multilateration::{intersect_constraints, RingConstraint};
use geokit::{GeoPoint, Region};

/// Per-measurement effectiveness record.
#[derive(Debug, Clone, Copy)]
pub struct Effectiveness {
    /// Great-circle distance from the landmark to the final region's
    /// centroid (the paper plots effectiveness against landmark–target
    /// distance), km. `None` when the final region is empty.
    pub landmark_to_region_km: Option<f64>,
    /// Whether removing this measurement would change the final region.
    pub effective: bool,
    /// How much area this measurement removed from the final region, km²
    /// (0 for ineffective measurements).
    pub area_reduction_km2: f64,
}

/// Analyze every constraint's contribution to the final intersection.
pub fn analyze_effectiveness(
    constraints: &[RingConstraint],
    mask: &Region,
) -> Vec<Effectiveness> {
    let n = constraints.len();
    if n == 0 {
        return Vec::new();
    }
    let full = intersect_constraints(constraints, mask);
    let full_area = full.area_km2();
    let centroid = full.centroid();

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let without: Vec<RingConstraint> = constraints
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| *c)
            .collect();
        let loo = intersect_constraints(&without, mask);
        let loo_area = loo.area_km2();
        let effective = loo.cell_count() != full.cell_count();
        out.push(Effectiveness {
            landmark_to_region_km: centroid
                .as_ref()
                .map(|c: &GeoPoint| constraints[i].center.distance_km(c)),
            effective,
            area_reduction_km2: (loo_area - full_area).max(0.0),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::GeoGrid;

    #[test]
    fn slack_disks_are_ineffective() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let constraints = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 600.0), // tight
            RingConstraint::disk(GeoPoint::new(50.0, 9.0), 600.0), // tight
            RingConstraint::disk(GeoPoint::new(-10.0, 100.0), 19_000.0), // covers everything
        ];
        let eff = analyze_effectiveness(&constraints, &mask);
        assert!(eff[0].effective);
        assert!(eff[1].effective);
        assert!(!eff[2].effective, "a near-global disk cannot be effective");
        assert_eq!(eff[2].area_reduction_km2, 0.0);
        assert!(eff[0].area_reduction_km2 > 0.0);
    }

    #[test]
    fn nearby_landmarks_are_usually_the_effective_ones() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let constraints = [
            RingConstraint::disk(GeoPoint::new(50.0, 8.0), 400.0),
            RingConstraint::disk(GeoPoint::new(51.0, 9.0), 5000.0),
            RingConstraint::disk(GeoPoint::new(20.0, -100.0), 12_000.0),
        ];
        let eff = analyze_effectiveness(&constraints, &mask);
        let near = eff[0].landmark_to_region_km.unwrap();
        let far = eff[2].landmark_to_region_km.unwrap();
        assert!(near < far);
        assert!(eff[0].effective);
        assert!(!eff[2].effective);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let grid = GeoGrid::new(4.0);
        let mask = Region::full(grid);
        assert!(analyze_effectiveness(&[], &mask).is_empty());
    }

    #[test]
    fn duplicate_constraints_are_individually_ineffective() {
        // Two identical disks: removing either leaves the other, so
        // neither is individually effective.
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let d = RingConstraint::disk(GeoPoint::new(40.0, -100.0), 700.0);
        let eff = analyze_effectiveness(&[d, d], &mask);
        assert!(!eff[0].effective);
        assert!(!eff[1].effective);
    }
}
