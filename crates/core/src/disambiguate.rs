//! Metadata disambiguation of uncertain predictions (§6, Figs. 15–16).
//!
//! Two techniques let the paper reclassify 353 uncertain claims:
//!
//! * **Data centers** (Fig. 15): a commercial proxy must be *in a data
//!   center*; if the prediction region contains data centers of only one
//!   country, the proxy is there.
//! * **AS + /24 grouping** (Fig. 16): hosts sharing a provider, an AS,
//!   and a 24-bit network prefix "are practically certain to be in the
//!   same physical location", so the group's true country must be
//!   covered by *every* member's prediction region — the intersection of
//!   their touched-country sets.

use crate::assess::{assess_claim, Assessment, ClaimVerdict};
use geokit::Region;
use worldmap::{CountryId, DataCenterRegistry, WorldAtlas};

/// Result of a disambiguation attempt on an uncertain claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disambiguation {
    /// Narrowed to a single country.
    Resolved(CountryId),
    /// Still ambiguous.
    Unresolved,
}

/// Try to resolve a prediction region to one country via data centers:
/// succeeds iff exactly one country has a data center inside the region.
pub fn by_data_centers(
    registry: &DataCenterRegistry,
    region: &Region,
) -> Disambiguation {
    let countries = registry.countries_in_region(region);
    match countries.as_slice() {
        [only] => Disambiguation::Resolved(*only),
        _ => Disambiguation::Unresolved,
    }
}

/// Try to resolve a *group* of co-located proxies (same provider + AS +
/// /24) via the intersection of their touched-country sets: succeeds iff
/// exactly one country is covered by every member's region.
pub fn by_colocation_group(
    atlas: &WorldAtlas,
    regions: &[&Region],
) -> Disambiguation {
    let sets: Vec<Vec<CountryId>> = regions
        .iter()
        .map(|region| {
            atlas
                .countries_touched(region)
                .into_iter()
                .map(|(c, _)| c)
                .collect()
        })
        .collect();
    let refs: Vec<&[CountryId]> = sets.iter().map(Vec::as_slice).collect();
    by_touched_sets(&refs)
}

/// Same resolution rule over precomputed touched-country sets — the form
/// the bulk study uses so it need not keep every region in memory.
pub fn by_touched_sets(sets: &[&[CountryId]]) -> Disambiguation {
    let mut common: Option<Vec<CountryId>> = None;
    for set in sets {
        let mut touched: Vec<CountryId> = set.to_vec();
        touched.sort_unstable();
        common = Some(match common {
            None => touched,
            Some(prev) => prev
                .into_iter()
                .filter(|c| touched.binary_search(c).is_ok())
                .collect(),
        });
    }
    match common.as_deref() {
        Some([only]) => Disambiguation::Resolved(*only),
        _ => Disambiguation::Unresolved,
    }
}

/// Apply data-center disambiguation to an uncertain verdict: when the
/// region resolves to a single data-center country, the claim becomes
/// credible (if it names that country) or false (otherwise). Verdicts
/// that are already credible/false pass through untouched.
pub fn refine_verdict(
    atlas: &WorldAtlas,
    registry: &DataCenterRegistry,
    region: &Region,
    claimed: CountryId,
    verdict: ClaimVerdict,
) -> ClaimVerdict {
    if verdict.assessment != Assessment::Uncertain {
        return verdict;
    }
    match by_data_centers(registry, region) {
        Disambiguation::Resolved(country) => {
            let mut refined = assess_claim(atlas, region, claimed);
            refined.assessment = if country == claimed {
                Assessment::Credible
            } else {
                Assessment::False
            };
            refined
        }
        Disambiguation::Unresolved => verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::{GeoGrid, GeoPoint, SphericalCap};
    use std::sync::OnceLock;

    fn setup() -> &'static (WorldAtlas, DataCenterRegistry) {
        static S: OnceLock<(WorldAtlas, DataCenterRegistry)> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = WorldAtlas::new(GeoGrid::new(0.5));
            let reg = DataCenterRegistry::from_atlas(&atlas);
            (atlas, reg)
        })
    }

    fn land_region(atlas: &WorldAtlas, lat: f64, lon: f64, r: f64) -> Region {
        Region::from_cap(atlas.grid(), &SphericalCap::new(GeoPoint::new(lat, lon), r))
            .intersection(atlas.land())
    }

    #[test]
    fn chile_argentina_case_resolves_to_chile() {
        let (atlas, reg) = setup();
        // Fig. 15: region straddles the Andes; only Chile has DCs there.
        let region = land_region(atlas, -33.5, -69.5, 450.0);
        let cl = atlas.country_by_iso2("cl").unwrap();
        assert_eq!(by_data_centers(reg, &region), Disambiguation::Resolved(cl));
    }

    #[test]
    fn multi_dc_region_stays_unresolved() {
        let (atlas, reg) = setup();
        // Benelux + western Germany: data centers in several countries.
        let region = land_region(atlas, 50.8, 5.5, 400.0);
        assert_eq!(by_data_centers(reg, &region), Disambiguation::Unresolved);
    }

    #[test]
    fn no_dc_region_stays_unresolved() {
        let (atlas, reg) = setup();
        // Deep Sahara.
        let region = land_region(atlas, 22.0, 5.0, 300.0);
        assert_eq!(by_data_centers(reg, &region), Disambiguation::Unresolved);
    }

    #[test]
    fn colocation_group_narrows_to_common_country() {
        let (atlas, _) = setup();
        // Fig. 16: every region covers part of Canada; only some also
        // cross into the USA.
        let toronto = land_region(atlas, 44.5, -79.0, 260.0); // Canada + a US sliver
        let ottawa = land_region(atlas, 46.8, -76.0, 220.0); // Canada only
        let ca = atlas.country_by_iso2("ca").unwrap();
        let regions: Vec<&Region> = vec![&toronto, &ottawa];
        assert_eq!(
            by_colocation_group(atlas, &regions),
            Disambiguation::Resolved(ca)
        );
    }

    #[test]
    fn colocation_group_can_stay_ambiguous() {
        let (atlas, _) = setup();
        let a = land_region(atlas, 45.0, -75.0, 600.0);
        let b = land_region(atlas, 44.0, -77.0, 600.0);
        let regions: Vec<&Region> = vec![&a, &b];
        assert_eq!(
            by_colocation_group(atlas, &regions),
            Disambiguation::Unresolved
        );
    }

    #[test]
    fn refine_uncertain_to_false_when_dc_country_differs() {
        let (atlas, reg) = setup();
        let region = land_region(atlas, -33.5, -69.5, 450.0); // resolves to Chile
        let ar = atlas.country_by_iso2("ar").unwrap();
        let verdict = assess_claim(atlas, &region, ar);
        assert_eq!(verdict.assessment, Assessment::Uncertain);
        let refined = refine_verdict(atlas, reg, &region, ar, verdict);
        assert_eq!(refined.assessment, Assessment::False);
    }

    #[test]
    fn refine_uncertain_to_credible_when_dc_country_matches() {
        let (atlas, reg) = setup();
        let region = land_region(atlas, -33.5, -69.5, 450.0);
        let cl = atlas.country_by_iso2("cl").unwrap();
        let verdict = assess_claim(atlas, &region, cl);
        assert_eq!(verdict.assessment, Assessment::Uncertain);
        let refined = refine_verdict(atlas, reg, &region, cl, verdict);
        assert_eq!(refined.assessment, Assessment::Credible);
    }

    #[test]
    fn credible_verdicts_pass_through() {
        let (atlas, reg) = setup();
        let region = land_region(atlas, 50.1, 8.7, 80.0);
        let de = atlas.country_by_iso2("de").unwrap();
        let verdict = assess_claim(atlas, &region, de);
        assert_eq!(verdict.assessment, Assessment::Credible);
        let refined = refine_verdict(atlas, reg, &region, de, verdict);
        assert_eq!(refined.assessment, Assessment::Credible);
    }
}
