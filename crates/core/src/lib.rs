#![warn(missing_docs)]

//! # geoloc — active geolocation algorithms
//!
//! The paper's primary contribution, reimplemented in full:
//!
//! * [`delay_model`] — the three delay–distance model families:
//!   CBG's *bestline/baseline* (plus CBG++'s *slowline*, §3.1/§5.1),
//!   (Quasi-)Octant's convex-hull piecewise-linear envelopes with 50 %/75 %
//!   cutoffs (§3.2), and Spotter's constrained-cubic μ/σ fit (§3.3).
//! * [`multilateration`] — disk intersection, ring intersection, and
//!   Spotter's Bayesian ring-product, all on the global grid, plus the
//!   largest-consistent-subset search CBG++ needs (§5.1).
//! * [`algorithms`] — the five geolocators under test: [`algorithms::Cbg`],
//!   [`algorithms::QuasiOctant`], [`algorithms::Spotter`],
//!   [`algorithms::Hybrid`], and [`algorithms::CbgPlusPlus`], behind one
//!   [`Geolocator`] trait.
//! * [`iclab`] — the ICLab speed-limit checker the paper compares against
//!   (§6.2).
//! * [`twophase`] — the two-phase measurement engine (§4.1): continent
//!   guess from three anchors per continent, then 25 random same-continent
//!   landmarks.
//! * [`proxy`] — proxy adaptation (§5.3): tunnel self-ping, η estimation
//!   (robust regression), and indirect-RTT correction.
//! * [`reliability`] — the measurement reliability layer: per-probe
//!   retries with seeded exponential backoff, method fallback
//!   (ping → TCP connect, §4.2), quorum-degraded two-phase runs, and
//!   explicit diagnostics on every result.
//! * [`assess`] — country-claim assessment: *credible / uncertain / false*
//!   (§6), with continent-level refinements.
//! * [`disambiguate`] — the data-center and AS+/24 metadata
//!   disambiguation of §6 (Figs. 15–16).
//! * [`effectiveness`] — the effective-measurement analysis of §5.2
//!   (Fig. 11).

pub mod algorithms;
pub mod assess;
pub mod defense;
pub mod delay_model;
pub mod disambiguate;
pub mod effectiveness;
pub mod iclab;
pub mod multilateration;
pub mod observation;
pub mod proxy;
pub mod reliability;
pub mod twophase;

pub use algorithms::{Geolocator, Prediction};
pub use assess::Assessment;
pub use defense::{run_defense, DefenseConfig, DefenseReport, TunnelPings};
pub use observation::Observation;
pub use reliability::{
    MeasurementDiagnostics, ProbeScheduler, ReliabilityConfig, RetryPolicy,
};
pub use twophase::{MeasurementStatus, ReliableTwoPhase};
