//! Original Octant's "height" correction (§3.2 / related work).
//!
//! The original Octant "includes features that depend on route traces,
//! such as a 'height' factor to eliminate the effect of a slow first hop
//! from any given landmark" — the paper omits it ("Quasi-Octant") because
//! proxies break traceroute. For *direct* measurements (the crowd
//! validation, our test-bench servers) traceroute works, so the original
//! algorithm is implementable: per-landmark heights (half the landmark's
//! first-hop RTT) and the target's own height are subtracted from each
//! one-way delay before the envelope evaluation.

use crate::algorithms::{Geolocator, Prediction, QuasiOctant};
use crate::observation::Observation;
use geokit::{GeoPoint, Region};

/// Octant with the height correction restored.
#[derive(Debug, Clone, Default)]
pub struct OctantWithHeight {
    /// Per-landmark one-way heights, ms, matched by landmark location
    /// (half the landmark's measured first-hop RTT).
    pub landmark_heights: Vec<(GeoPoint, f64)>,
    /// The target's own one-way height, ms (half its first-hop RTT; zero
    /// when unknown — e.g. for uncooperative proxies).
    pub target_height_ms: f64,
}

impl OctantWithHeight {
    /// Height for a landmark (0 if not measured).
    fn height_for(&self, landmark: &GeoPoint) -> f64 {
        self.landmark_heights
            .iter()
            .find(|(lm, _)| lm == landmark)
            .map_or(0.0, |&(_, h)| h)
    }
}

impl Geolocator for OctantWithHeight {
    fn name(&self) -> &'static str {
        "Octant (with height)"
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        // Subtract both endpoints' heights from each delay; the envelope
        // then models wire time rather than wire + stack time.
        let corrected: Vec<Observation> = observations
            .iter()
            .map(|o| {
                let h = self.height_for(&o.landmark) + self.target_height_ms;
                Observation::new(o.landmark, (o.one_way_ms - h).max(0.0), o.calibration.clone())
            })
            .collect();
        QuasiOctant.locate(&corrected, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::GeoGrid;

    /// Calibration whose delays include a fixed 3 ms "stack" overhead on
    /// top of a clean 100 km/ms wire — the regime the height correction
    /// targets.
    fn overheaded_calib() -> CalibrationSet {
        CalibrationSet::from_points(
            (1..=60)
                .map(|i| {
                    let d = f64::from(i) * 150.0;
                    let jitter = 1.0 + 0.002 * f64::from(i % 7);
                    (d, d / 100.0 * jitter + 3.0)
                })
                .collect(),
        )
    }

    #[test]
    fn height_correction_restores_coverage_for_light_targets() {
        // Both the calibration and the measurements carry a fixed 3 ms
        // endpoint overhead. Quasi-Octant treats that overhead as wire
        // time, which skews the envelope; the original Octant subtracts
        // each endpoint's measured height so the envelope models wire
        // time only, and the ring brackets the truth again.
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.5, 8.5);
        let landmarks = [(53.0, 3.0), (46.0, 13.0), (54.0, 13.0)];
        // Measured delays carry the same 3 ms overhead as calibration
        // (1.5 per endpoint): heights of 1.5 ms per side are correct.
        let obs: Vec<Observation> = landmarks
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(
                    lm,
                    lm.distance_km(&truth) / 100.0 * 1.005 + 3.0,
                    overheaded_calib(),
                )
            })
            .collect();
        // Uncorrected baseline for comparison.
        let plain = QuasiOctant.locate(&obs, &mask);
        // Heights must be removed from *both* sides: the measured delays
        // (via OctantWithHeight) and the calibration scatter (rebuilt
        // here), exactly as the original Octant calibrates on
        // height-corrected traces.
        let corrected_calib = CalibrationSet::from_points(
            overheaded_calib()
                .points()
                .iter()
                .map(|&(d, t)| (d, t - 3.0))
                .collect(),
        );
        let obs_corrected_calib: Vec<Observation> = obs
            .iter()
            .map(|o| Observation::new(o.landmark, o.one_way_ms, corrected_calib.clone()))
            .collect();
        let with_height = OctantWithHeight {
            landmark_heights: landmarks
                .iter()
                .map(|&(lat, lon)| (GeoPoint::new(lat, lon), 1.5))
                .collect(),
            target_height_ms: 1.5,
        };
        let corrected = with_height.locate(&obs_corrected_calib, &mask);
        assert!(
            corrected.region.contains_point(&truth),
            "height-corrected Octant must cover the truth"
        );
        // And the corrected region should be at least as accurate as the
        // uncorrected one.
        let miss_plain = plain.region.distance_from_km(&truth).unwrap_or(f64::MAX);
        let miss_corr = corrected.region.distance_from_km(&truth).unwrap();
        assert!(miss_corr <= miss_plain);
    }

    #[test]
    fn zero_heights_reduce_to_quasi_octant() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(48.0, 10.0);
        let obs: Vec<Observation> = [(52.0, 4.0), (45.0, 15.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(
                    lm,
                    lm.distance_km(&truth) / 100.0 * 1.003,
                    overheaded_calib(),
                )
            })
            .collect();
        let a = OctantWithHeight::default().locate(&obs, &mask);
        let b = QuasiOctant.locate(&obs, &mask);
        assert_eq!(a.region.cell_count(), b.region.cell_count());
    }

    #[test]
    fn heights_never_produce_negative_delays() {
        let grid = GeoGrid::new(4.0);
        let mask = Region::full(grid);
        let lm = GeoPoint::new(50.0, 8.0);
        let obs = vec![Observation::new(lm, 0.5, overheaded_calib())];
        let algo = OctantWithHeight {
            landmark_heights: vec![(lm, 10.0)],
            target_height_ms: 10.0,
        };
        // Must not panic on the (0.5 − 20) ms underflow.
        let p = algo.locate(&obs, &mask);
        assert!(!p.region.is_empty());
    }
}
