//! The Quasi-Octant/Spotter hybrid (§3.4): Spotter's delay model feeding
//! Octant's ring multilateration. The rings are `[μ − 5σ, μ + 5σ]` —
//! built "to separate the effect of Spotter's probabilistic
//! multilateration from the effect of its cubic-polynomial delay model".

use crate::algorithms::{Geolocator, Prediction};
use crate::delay_model::SpotterModel;
use crate::multilateration::{max_consistent_subset, RingConstraint};
use crate::observation::Observation;
use geokit::Region;

/// How many σ the ring extends on each side of μ.
pub const RING_SIGMAS: f64 = 5.0;

/// The hybrid algorithm.
#[derive(Debug, Clone)]
pub struct Hybrid {
    model: SpotterModel,
}

impl Hybrid {
    /// Build over the shared global Spotter model.
    pub fn new(model: SpotterModel) -> Hybrid {
        Hybrid { model }
    }
}

impl Geolocator for Hybrid {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        let slack = crate::multilateration::constraint::grid_slack_km(mask.grid());
        let constraints: Vec<RingConstraint> = observations
            .iter()
            .map(|o| {
                let mu = self.model.mu_km(o.one_way_ms);
                let sigma = self.model.sigma_km(o.one_way_ms);
                let min = (mu - RING_SIGMAS * sigma).max(0.0);
                let max = (mu + RING_SIGMAS * sigma).max(min);
                RingConstraint::ring(o.landmark, min, max).inflated(slack)
            })
            .collect();
        // Same weight-based multilateration as Quasi-Octant (§3.4: the
        // hybrid borrows "Quasi-Octant's ring-based multilateration").
        Prediction {
            region: max_consistent_subset(&constraints, mask).region,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};

    fn model() -> SpotterModel {
        let mut pts = Vec::new();
        for i in 1..=400 {
            let t = f64::from(i) * 0.4;
            let wiggle = f64::from((i * 17) % 9) - 4.0;
            pts.push(((t * 95.0 + wiggle * (15.0 + t)).max(0.0), t));
        }
        let set = CalibrationSet::from_points(pts);
        SpotterModel::calibrate(&[&set])
    }

    #[test]
    fn rings_cover_clean_target() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(48.0, 10.0);
        let observations: Vec<Observation> = [(52.0, 4.0), (45.0, 15.0), (53.0, 14.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 95.0, CalibrationSet::default())
            })
            .collect();
        let p = Hybrid::new(model()).locate(&observations, &mask);
        assert!(!p.region.is_empty());
        assert!(p.region.contains_point(&truth));
    }

    #[test]
    fn consistent_upward_bias_displaces_the_rings() {
        // The hybrid turns Spotter's soft evidence into hard cutoffs.
        // When every measurement carries the same upward bias (the
        // Windows/Web-tool regime of §4.3), all rings shift outward
        // together and the highest-scoring region lands away from the
        // truth — the ~50 % miss rate of Fig. 9.
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(48.0, 10.0);
        let obs: Vec<Observation> = [(50.0, 8.0), (46.0, 12.0), (50.0, 12.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(
                    lm,
                    lm.distance_km(&truth) / 95.0 + 60.0, // shared bias
                    CalibrationSet::default(),
                )
            })
            .collect();
        let p = Hybrid::new(model()).locate(&obs, &mask);
        assert!(!p.region.is_empty(), "weighted rings never come up empty");
        assert!(
            !p.region.contains_point(&truth),
            "a consistent 60 ms bias should displace the ring intersection"
        );
    }

    #[test]
    fn region_respects_mask() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::from_predicate(&grid, |p| p.lat() > 0.0);
        let obs = vec![Observation::new(
            GeoPoint::new(10.0, 10.0),
            10.0,
            CalibrationSet::default(),
        )];
        let p = Hybrid::new(model()).locate(&obs, &mask);
        for cell in p.region.cells() {
            assert!(grid.center(cell).lat() > 0.0);
        }
    }
}
