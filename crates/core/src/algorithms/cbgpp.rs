//! CBG++ (§5.1): CBG hardened against underestimation.
//!
//! Two modifications over CBG:
//!
//! 1. **Slowline.** Bestline speeds are clamped into
//!    `[84.5, 200] km/ms`: no landmark is farther than half the Earth's
//!    circumference, and one-way times over 237 ms carry no information,
//!    so slower calibrations are physically meaningless.
//! 2. **Baseline-region filtering.** First find the largest subset of
//!    *baseline* disks (raw 200 km/ms physics) with nonempty
//!    intersection — the "baseline region". Discard any bestline disk
//!    that does not overlap it. Then find the largest consistent subset
//!    of the surviving bestline disks; its intersection (within the
//!    baseline region) is the prediction.
//!
//! Retested on the crowdsourced hosts, the paper reports this eliminated
//! every remaining case where the prediction missed the true location —
//! the property our crowd-validation integration test checks.

use crate::algorithms::{Geolocator, Prediction};
use crate::delay_model::CbgModel;
use crate::multilateration::subset::constraint_overlaps_region;
use crate::multilateration::{max_consistent_subset_profiled, DiskCache, RingConstraint};
use crate::observation::Observation;
use geokit::Region;

/// The CBG++ algorithm (both §5.1 modifications enabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct CbgPlusPlus;

impl Geolocator for CbgPlusPlus {
    fn name(&self) -> &'static str {
        "CBG++"
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        CbgPlusPlusVariant::default().locate(observations, mask)
    }
}

impl CbgPlusPlus {
    /// [`Geolocator::locate`] with both constraint passes drawing disks
    /// from a shared [`DiskCache`].
    pub fn locate_cached(
        &self,
        observations: &[Observation],
        mask: &Region,
        cache: &DiskCache,
    ) -> Prediction {
        CbgPlusPlusVariant::default().locate_impl(observations, mask, Some(cache), None)
    }

    /// [`CbgPlusPlus::locate_cached`] that also narrates its stage funnel
    /// (baseline region, bestline filter, subset search, empty-region
    /// causes) through an [`obs::Recorder`].
    pub fn locate_traced(
        &self,
        observations: &[Observation],
        mask: &Region,
        cache: Option<&DiskCache>,
        rec: &obs::Recorder,
    ) -> Prediction {
        CbgPlusPlusVariant::default().locate_impl(observations, mask, cache, Some(rec))
    }
}

/// CBG++ with each §5.1 modification individually switchable — the
/// ablation surface for the design-choice benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct CbgPlusPlusVariant {
    /// Clamp bestline speeds at the slowline (84.5 km/ms).
    pub use_slowline: bool,
    /// Filter bestline disks against the baseline region and fall back
    /// to it.
    pub use_baseline_filter: bool,
}

impl Default for CbgPlusPlusVariant {
    fn default() -> Self {
        CbgPlusPlusVariant {
            use_slowline: true,
            use_baseline_filter: true,
        }
    }
}

impl Geolocator for CbgPlusPlusVariant {
    fn name(&self) -> &'static str {
        match (self.use_slowline, self.use_baseline_filter) {
            (true, true) => "CBG++",
            (true, false) => "CBG++ (no baseline filter)",
            (false, true) => "CBG++ (no slowline)",
            (false, false) => "CBG + subset search",
        }
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        self.locate_impl(observations, mask, None, None)
    }
}

impl CbgPlusPlusVariant {
    /// [`Geolocator::locate`] with both constraint passes drawing disks
    /// from a shared [`DiskCache`].
    pub fn locate_cached(
        &self,
        observations: &[Observation],
        mask: &Region,
        cache: &DiskCache,
    ) -> Prediction {
        self.locate_impl(observations, mask, Some(cache), None)
    }

    fn locate_impl(
        &self,
        observations: &[Observation],
        mask: &Region,
        cache: Option<&DiskCache>,
        rec: Option<&obs::Recorder>,
    ) -> Prediction {
        let subset = |constraints: &[RingConstraint], m: &Region| {
            max_consistent_subset_profiled(constraints, m, cache, rec)
        };
        let slack = crate::multilateration::constraint::grid_slack_km(mask.grid());

        let search_mask: Region;
        let baseline_region: Option<&Region> = if self.use_baseline_filter {
            let baseline_span = rec.map(|r| r.profile_span("cbgpp.baseline"));
            // Baseline disks: pure physics, cannot underestimate.
            let baseline: Vec<RingConstraint> = observations
                .iter()
                .map(|o| {
                    RingConstraint::disk(
                        o.landmark,
                        CbgModel::baseline_distance_km(o.one_way_ms),
                    )
                    .inflated(slack)
                })
                .collect();
            let base = subset(&baseline, mask);
            drop(baseline_span);
            search_mask = base.region;
            if let Some(rec) = rec {
                rec.record("alg.baseline_cells", u64::from(search_mask.cell_count()));
                if rec.events_enabled() {
                    rec.event(
                        "cbgpp",
                        "baseline",
                        vec![
                            ("disks", baseline.len().into()),
                            ("satisfied", base.satisfied.into()),
                            ("cells", search_mask.cell_count().into()),
                        ],
                    );
                }
            }
            if search_mask.is_empty() {
                if let Some(rec) = rec {
                    rec.count("alg.empty_region", 1);
                    if rec.events_enabled() {
                        rec.event(
                            "cbgpp",
                            "empty_region",
                            vec![("stage", "baseline".into())],
                        );
                    }
                }
                return Prediction {
                    region: search_mask,
                };
            }
            Some(&search_mask)
        } else {
            None
        };
        let effective_mask = baseline_region.unwrap_or(mask);

        // Covers the bestline build + overlap filter + subset search
        // (early returns drop it at scope exit).
        let _bestline_span = rec.map(|r| r.profile_span("cbgpp.bestline"));
        let bestline: Vec<RingConstraint> = observations
            .iter()
            .map(|o| {
                let model = if self.use_slowline {
                    CbgModel::calibrate_with_slowline(&o.calibration)
                } else {
                    CbgModel::calibrate(&o.calibration)
                };
                RingConstraint::disk(o.landmark, model.max_distance_km(o.one_way_ms))
                    .inflated(slack)
            })
            .filter(|c| match baseline_region {
                Some(region) => constraint_overlaps_region(c, region),
                None => true,
            })
            .collect();
        if let Some(rec) = rec {
            let dropped = observations.len() - bestline.len();
            rec.count("alg.bestline_dropped", dropped as u64);
            if rec.events_enabled() {
                rec.event(
                    "cbgpp",
                    "bestline_filter",
                    vec![
                        ("input", observations.len().into()),
                        ("kept", bestline.len().into()),
                    ],
                );
            }
        }
        if bestline.is_empty() {
            if let Some(rec) = rec {
                rec.count("alg.baseline_fallback", 1);
                if rec.events_enabled() {
                    rec.event(
                        "cbgpp",
                        "baseline_fallback",
                        vec![("cells", effective_mask.cell_count().into())],
                    );
                }
            }
            return Prediction {
                region: effective_mask.clone(),
            };
        }
        let result = subset(&bestline, effective_mask);
        if let Some(rec) = rec {
            rec.record("alg.region_cells", u64::from(result.region.cell_count()));
            if result.region.is_empty() {
                rec.count("alg.empty_region", 1);
            }
            if rec.events_enabled() {
                rec.event(
                    "cbgpp",
                    "subset",
                    vec![
                        ("satisfied", result.satisfied.into()),
                        ("total", result.total.into()),
                        ("cells", result.region.cell_count().into()),
                    ],
                );
                if result.region.is_empty() {
                    rec.event(
                        "cbgpp",
                        "empty_region",
                        vec![("stage", "bestline".into())],
                    );
                }
            }
        }
        Prediction {
            region: result.region,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Cbg;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};

    fn calib() -> CalibrationSet {
        CalibrationSet::from_points(
            (1..=50)
                .map(|i| {
                    let d = f64::from(i) * 200.0;
                    (d, d / 100.0 + 0.2 + f64::from(i % 5))
                })
                .collect(),
        )
    }

    #[test]
    fn agrees_with_cbg_on_clean_data() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.0, 8.0);
        let observations: Vec<Observation> = [(52.0, 4.0), (45.0, 12.0), (55.0, 12.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 100.0 + 0.4, calib())
            })
            .collect();
        let pp = CbgPlusPlus.locate(&observations, &mask);
        assert!(pp.region.contains_point(&truth));
        // On clean data the subset search keeps everything, so CBG++ is
        // no larger than necessary: its region covers CBG's.
        let plain = Cbg.locate(&observations, &mask);
        assert!(plain.region.is_subset_of(&pp.region) || plain.region.is_empty());
    }

    #[test]
    fn never_empty_where_cbg_fails() {
        // The canonical failure: two mutually-exclusive underestimating
        // disks. CBG → empty; CBG++ → drops one disk and survives.
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let a = GeoPoint::new(50.0, 0.0);
        let b = GeoPoint::new(50.0, 40.0);
        let observations = vec![
            Observation::new(a, 1.2, calib()),
            Observation::new(b, 1.2, calib()),
        ];
        assert!(Cbg.locate(&observations, &mask).region.is_empty());
        let pp = CbgPlusPlus.locate(&observations, &mask);
        assert!(!pp.region.is_empty(), "CBG++ must always predict somewhere");
    }

    #[test]
    fn slowline_grows_disks_under_congested_calibration() {
        // A congested calibration (all points slow) makes plain CBG's
        // bestline slow → disks too small → truth missed. The slowline
        // clamp keeps CBG++ honest.
        let slow_calib = CalibrationSet::from_points(
            (1..=40)
                .map(|i| {
                    let d = f64::from(i) * 100.0;
                    (d, d / 40.0 + 1.0) // 40 km/ms effective — nonsense-slow
                })
                .collect(),
        );
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        // Truth on a 1° cell centre; true network speed on measurement
        // day is 80 km/ms — much faster than the congested 40 km/ms
        // calibration, but below the slowline's 84.5 km/ms, so the
        // clamped model must cover it. Delays carry the same ~2.4 ms
        // fixed overhead the calibration's intercept accounts for.
        let truth = GeoPoint::new(48.5, 20.5);
        let observations: Vec<Observation> = [(55.0, 0.0), (38.0, 32.0), (60.0, 30.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 80.0 + 2.4, slow_calib.clone())
            })
            .collect();
        let plain = Cbg.locate(&observations, &mask);
        let pp = CbgPlusPlus.locate(&observations, &mask);
        assert!(
            !plain.region.contains_point(&truth),
            "plain CBG should miss under a congested calibration"
        );
        assert!(
            pp.region.contains_point(&truth),
            "slowline-clamped CBG++ must cover the truth"
        );
    }

    #[test]
    fn baseline_region_is_a_fallback() {
        // If every bestline disk is discarded (all contradict physics),
        // the baseline region itself is returned.
        let grid = GeoGrid::new(2.0);
        let mask = Region::full(grid);
        // One observation with no calibration: bestline = baseline, so
        // this degenerates gracefully rather than panicking.
        let observations = vec![Observation::new(
            GeoPoint::new(10.0, 10.0),
            5.0,
            CalibrationSet::default(),
        )];
        let pp = CbgPlusPlus.locate(&observations, &mask);
        assert!(!pp.region.is_empty());
    }

    #[test]
    fn region_is_inside_baseline_physics() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.0, 8.0);
        let observations: Vec<Observation> = [(52.0, 4.0), (45.0, 12.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 100.0 + 0.4, calib())
            })
            .collect();
        let pp = CbgPlusPlus.locate(&observations, &mask);
        // Every predicted cell respects every baseline disk.
        for cell in pp.region.cells() {
            let p = pp.region.grid().center(cell);
            for o in &observations {
                let baseline = CbgModel::baseline_distance_km(o.one_way_ms);
                assert!(
                    o.landmark.distance_km(&p) <= baseline + 200.0, // one coarse cell of slack
                    "cell at {p} violates baseline physics"
                );
            }
        }
    }
}
