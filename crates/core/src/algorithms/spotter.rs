//! Spotter (§3.3): Gaussian ring likelihoods combined by Bayes' rule.

use crate::algorithms::{Geolocator, Prediction};
use crate::delay_model::SpotterModel;
use crate::multilateration::bayes_region;
use crate::observation::Observation;
use geokit::Region;

/// The credible mass of the reported region.
pub const DEFAULT_CREDIBLE_MASS: f64 = 0.95;

/// The Spotter algorithm. Holds the single global delay model ("a single
/// fit is used for all landmarks").
#[derive(Debug, Clone)]
pub struct Spotter {
    model: SpotterModel,
    mass: f64,
}

impl Spotter {
    /// Build with the global model and the default 95 % credible mass.
    pub fn new(model: SpotterModel) -> Spotter {
        Spotter {
            model,
            mass: DEFAULT_CREDIBLE_MASS,
        }
    }

    /// Build with an explicit credible mass (ablation knob).
    pub fn with_mass(model: SpotterModel, mass: f64) -> Spotter {
        assert!(mass > 0.0 && mass <= 1.0, "credible mass {mass}");
        Spotter { model, mass }
    }

    /// Access the underlying model (shared with [`crate::algorithms::Hybrid`]).
    pub fn model(&self) -> &SpotterModel {
        &self.model
    }
}

impl Geolocator for Spotter {
    fn name(&self) -> &'static str {
        "Spotter"
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        let obs: Vec<(geokit::GeoPoint, f64)> = observations
            .iter()
            .map(|o| (o.landmark, o.one_way_ms))
            .collect();
        let out = bayes_region(&obs, &self.model, mask, self.mass);
        Prediction { region: out.region }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};

    fn global_model() -> SpotterModel {
        let mut pts = Vec::new();
        for i in 1..=400 {
            let t = f64::from(i) * 0.4;
            let wiggle = f64::from((i * 13) % 9) - 4.0;
            pts.push(((t * 95.0 + wiggle * (15.0 + t)).max(0.0), t));
        }
        let set = CalibrationSet::from_points(pts);
        SpotterModel::calibrate(&[&set])
    }

    #[test]
    fn finds_a_clean_target() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(48.0, 10.0);
        let observations: Vec<Observation> = [(52.0, 4.0), (45.0, 15.0), (53.0, 14.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(
                    lm,
                    lm.distance_km(&truth) / 95.0,
                    CalibrationSet::default(),
                )
            })
            .collect();
        let spotter = Spotter::new(global_model());
        let p = spotter.locate(&observations, &mask);
        assert!(!p.region.is_empty());
        assert!(p.region.contains_point(&truth));
    }

    #[test]
    fn upward_biased_delays_push_the_region_away() {
        // Spotter believes large delays mean large distances — an
        // upward-noise measurement displaces its credible region, the
        // §5 failure mode on crowdsourced (Windows/web) data.
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(48.0, 10.0);
        let lm = GeoPoint::new(50.0, 8.0); // ~270 km away
        let honest = lm.distance_km(&truth) / 95.0;
        let spotter = Spotter::new(global_model());
        let noisy = vec![Observation::new(
            lm,
            honest + 60.0, // a queueing/outlier spike
            CalibrationSet::default(),
        )];
        let p = spotter.locate(&noisy, &mask);
        assert!(
            !p.region.contains_point(&truth),
            "biased delay should displace Spotter's ring past the truth"
        );
    }

    #[test]
    fn credible_mass_scales_region() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::full(grid);
        let obs = vec![Observation::new(
            GeoPoint::new(50.0, 10.0),
            12.0,
            CalibrationSet::default(),
        )];
        let narrow = Spotter::with_mass(global_model(), 0.5).locate(&obs, &mask);
        let wide = Spotter::with_mass(global_model(), 0.99).locate(&obs, &mask);
        assert!(wide.region.cell_count() > narrow.region.cell_count());
    }
}
