//! The shortest-ping baseline (§2).
//!
//! "The simplest active method is to guess that the target is in the same
//! place as the landmark with the shortest round-trip time. This breaks
//! down when the target is not near any of the landmarks." Included as
//! the historical baseline every multilateration method is measured
//! against.
//!
//! The prediction region is a disk around the winning landmark whose
//! radius is that landmark's bestline bound for the observed delay — the
//! tightest statement the method's own logic supports.

use crate::algorithms::{Geolocator, Prediction};
use crate::delay_model::CbgModel;
use crate::multilateration::{intersect_constraints, RingConstraint};
use crate::observation::Observation;
use geokit::Region;

/// The shortest-ping baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestPing;

impl Geolocator for ShortestPing {
    fn name(&self) -> &'static str {
        "Shortest-ping"
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        let Some(best) = observations.iter().min_by(|a, b| {
            a.one_way_ms
                .partial_cmp(&b.one_way_ms)
                .expect("finite delays")
        }) else {
            return Prediction {
                region: mask.clone(),
            };
        };
        let slack = crate::multilateration::constraint::grid_slack_km(mask.grid());
        let model = CbgModel::calibrate(&best.calibration);
        let radius = model.max_distance_km(best.one_way_ms);
        let disk = RingConstraint::disk(best.landmark, radius).inflated(slack);
        Prediction {
            region: intersect_constraints(&[disk], mask),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};

    fn calib() -> CalibrationSet {
        CalibrationSet::from_points(
            (1..=40)
                .map(|i| {
                    let d = f64::from(i) * 250.0;
                    (d, d / 100.0 + 0.3)
                })
                .collect(),
        )
    }

    #[test]
    fn near_a_landmark_it_works() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.5, 8.5);
        let obs: Vec<Observation> = [(50.0, 8.0), (40.0, -3.0), (59.0, 18.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 100.0 + 0.3, calib())
            })
            .collect();
        let p = ShortestPing.locate(&obs, &mask);
        assert!(p.region.contains_point(&truth));
        // The region hugs the winning landmark.
        assert!(p.region.contains_point(&GeoPoint::new(50.0, 8.0)));
    }

    #[test]
    fn far_from_all_landmarks_it_breaks_down() {
        // §2: "This breaks down when the target is not near any of the
        // landmarks." A mid-Atlantic target is pinned to the wrong side.
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(30.0, -40.0); // mid-ocean
        let obs: Vec<Observation> = [(40.0, -74.0), (51.0, 0.0), (38.0, -9.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 100.0 + 0.3, calib())
            })
            .collect();
        let p = ShortestPing.locate(&obs, &mask);
        // Multilateration (CBG) covers the truth here; shortest-ping's
        // single disk centred on Lisbon-ish may or may not reach it, but
        // its centroid is dragged to the winning landmark.
        let centroid = p.region.centroid().unwrap();
        let lisbon = GeoPoint::new(38.0, -9.0);
        assert!(
            centroid.distance_km(&lisbon) < centroid.distance_km(&truth),
            "centroid should sit near the winning landmark, not the truth"
        );
    }

    #[test]
    fn empty_observations_return_mask() {
        let grid = GeoGrid::new(4.0);
        let mask = Region::full(grid);
        let p = ShortestPing.locate(&[], &mask);
        assert_eq!(p.region.cell_count(), mask.cell_count());
    }
}
