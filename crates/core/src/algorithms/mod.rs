//! The geolocation algorithms under test (§3, §5.1).

mod cbg;
mod cbgpp;
mod hybrid;
mod octant_full;
mod quasi_octant;
mod shortest_ping;
mod spotter;

pub use cbg::Cbg;
pub use cbgpp::{CbgPlusPlus, CbgPlusPlusVariant};
pub use hybrid::Hybrid;
pub use octant_full::OctantWithHeight;
pub use quasi_octant::QuasiOctant;
pub use shortest_ping::ShortestPing;
pub use spotter::Spotter;

use crate::observation::Observation;
use geokit::Region;

/// A prediction region for one target.
#[derive(Debug)]
pub struct Prediction {
    /// Cells the algorithm considers possible locations. May be empty —
    /// the failure mode CBG exhibits when disks underestimate (§5.1).
    pub region: Region,
}

impl Prediction {
    /// Convenience: area of the region, km².
    pub fn area_km2(&self) -> f64 {
        self.region.area_km2()
    }
}

/// A geolocation algorithm: observations in, region out.
///
/// `mask` is the plausibility mask (land, sub-polar — §3); every
/// algorithm's output is a subset of it.
pub trait Geolocator {
    /// Display name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Estimate where the target is.
    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction;
}
