//! Constraint-Based Geolocation (§3.1): per-landmark bestline disks,
//! plain intersection.

use crate::algorithms::{Geolocator, Prediction};
use crate::delay_model::CbgModel;
use crate::multilateration::{
    intersect_constraints, intersect_constraints_cached, DiskCache, RingConstraint,
};
use crate::observation::Observation;
use geokit::Region;

/// The CBG algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cbg;

impl Cbg {
    fn constraints(observations: &[Observation], mask: &Region) -> Vec<RingConstraint> {
        let slack = crate::multilateration::constraint::grid_slack_km(mask.grid());
        observations
            .iter()
            .map(|obs| {
                let model = CbgModel::calibrate(&obs.calibration);
                RingConstraint::disk(obs.landmark, model.max_distance_km(obs.one_way_ms))
                    .inflated(slack)
            })
            .collect()
    }

    /// [`Geolocator::locate`] with bestline disks drawn from a shared
    /// [`DiskCache`] (radii quantized up by at most one grid cell).
    pub fn locate_cached(
        &self,
        observations: &[Observation],
        mask: &Region,
        cache: &DiskCache,
    ) -> Prediction {
        Prediction {
            region: intersect_constraints_cached(
                &Self::constraints(observations, mask),
                mask,
                cache,
            ),
        }
    }
}

impl Geolocator for Cbg {
    fn name(&self) -> &'static str {
        "CBG"
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        Prediction {
            region: intersect_constraints(&Self::constraints(observations, mask), mask),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};

    /// Calibration implying an effective speed of exactly 100 km/ms.
    fn calib() -> CalibrationSet {
        CalibrationSet::from_points(
            (1..=50)
                .map(|i| {
                    let d = f64::from(i) * 200.0;
                    (d, d / 100.0 + 0.2 + f64::from(i % 5)) // floor + noise
                })
                .collect(),
        )
    }

    fn obs(lat: f64, lon: f64, truth: &GeoPoint, speed: f64) -> Observation {
        let lm = GeoPoint::new(lat, lon);
        // Measured delay slightly above the floor (small queueing).
        Observation::new(lm, lm.distance_km(truth) / speed + 1.5, calib())
    }

    #[test]
    fn covers_the_true_location() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.0, 8.0);
        // Delays at exactly the calibrated floor speed: disks are honest
        // upper bounds.
        let observations = vec![
            obs(52.0, 4.0, &truth, 100.0),
            obs(45.0, 12.0, &truth, 100.0),
            obs(55.0, 12.0, &truth, 100.0),
            obs(48.0, 2.0, &truth, 100.0),
        ];
        let p = Cbg.locate(&observations, &mask);
        assert!(!p.region.is_empty());
        assert!(p.region.contains_point(&truth), "CBG missed the truth");
    }

    #[test]
    fn closer_landmarks_shrink_the_region() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.0, 8.0);
        let far = vec![
            obs(20.0, -60.0, &truth, 100.0),
            obs(0.0, 100.0, &truth, 100.0),
        ];
        let near = vec![
            obs(51.0, 7.0, &truth, 100.0),
            obs(49.0, 9.0, &truth, 100.0),
        ];
        let p_far = Cbg.locate(&far, &mask);
        let p_near = Cbg.locate(&near, &mask);
        assert!(p_near.area_km2() < p_far.area_km2());
    }

    #[test]
    fn underestimating_disks_can_produce_empty_region() {
        // The §5.1 failure mode: measurements *faster* than the
        // calibrated bestline (e.g. the calibration was congested) give
        // disks that miss the target — and can be mutually exclusive.
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let a = GeoPoint::new(50.0, 0.0);
        let b = GeoPoint::new(50.0, 40.0);
        // Both see tiny delays: disks of ~100 km around landmarks
        // 2800 km apart.
        let observations = vec![
            Observation::new(a, 1.2, calib()),
            Observation::new(b, 1.2, calib()),
        ];
        let p = Cbg.locate(&observations, &mask);
        assert!(p.region.is_empty());
    }

    #[test]
    fn no_observations_returns_mask() {
        let grid = GeoGrid::new(4.0);
        let mask = Region::full(grid);
        let p = Cbg.locate(&[], &mask);
        assert_eq!(p.region.cell_count(), mask.cell_count());
    }
}
