//! Quasi-Octant (§3.2): per-landmark min/max rings, plain intersection.

use crate::algorithms::{Geolocator, Prediction};
use crate::delay_model::OctantModel;
use crate::multilateration::{max_consistent_subset, RingConstraint};
use crate::observation::Observation;
use geokit::Region;

/// The Quasi-Octant algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuasiOctant;

impl Geolocator for QuasiOctant {
    fn name(&self) -> &'static str {
        "Quasi-Octant"
    }

    fn locate(&self, observations: &[Observation], mask: &Region) -> Prediction {
        let slack = crate::multilateration::constraint::grid_slack_km(mask.grid());
        let constraints: Vec<RingConstraint> = observations
            .iter()
            .map(|obs| {
                let model = OctantModel::calibrate(&obs.calibration);
                let max = model.max_distance_km(obs.one_way_ms);
                let min = model.min_distance_km(obs.one_way_ms).min(max);
                RingConstraint::ring(obs.landmark, min, max).inflated(slack)
            })
            .collect();
        // Octant's multilateration is weight-based: every point scores
        // +1 per satisfied constraint and the highest-scoring region is
        // reported (Wong et al.). The max-consistent-subset search is
        // exactly that on the grid — and unlike a strict intersection it
        // degrades to a (wrong) region rather than to nothing when noisy
        // rings conflict, which is the behaviour Fig. 9 shows.
        Prediction {
            region: max_consistent_subset(&constraints, mask).region,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};

    /// Clean calibration: speeds tightly around 100 km/ms.
    fn tight_calib() -> CalibrationSet {
        CalibrationSet::from_points(
            (1..=60)
                .map(|i| {
                    let d = f64::from(i) * 150.0;
                    let jitter = 1.0 + 0.002 * f64::from(i % 7); // ±0.7 % spread
                    (d, d / 100.0 * jitter)
                })
                .collect(),
        )
    }

    #[test]
    fn rings_cover_truth_under_clean_delays() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        // Truth sits exactly on a 1° cell centre so ring containment is
        // not at the mercy of grid quantization.
        let truth = GeoPoint::new(50.5, 8.5);
        let observations: Vec<Observation> = [
            (53.0, 3.0),
            (46.0, 13.0),
            (54.0, 13.0),
        ]
        .iter()
        .map(|&(lat, lon)| {
            let lm = GeoPoint::new(lat, lon);
            // Delay inside the calibrated envelope (speeds 98.75–100
            // km/ms) so both ring edges bracket the truth.
            Observation::new(lm, lm.distance_km(&truth) / 100.0 * 1.005, tight_calib())
        })
        .collect();
        let p = QuasiOctant.locate(&observations, &mask);
        assert!(!p.region.is_empty());
        assert!(p.region.contains_point(&truth));
    }

    #[test]
    fn min_distance_excludes_the_landmark_itself() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let lm = GeoPoint::new(50.0, 8.0);
        // A substantial delay: the min-distance curve pushes the target
        // away from the landmark.
        let observations = vec![Observation::new(lm, 40.0, tight_calib())];
        let p = QuasiOctant.locate(&observations, &mask);
        assert!(!p.region.is_empty());
        assert!(
            !p.region.contains_point(&lm),
            "ring should exclude the landmark under a 40 ms delay"
        );
    }

    #[test]
    fn queueing_delay_breaks_the_ring() {
        // §2/§5: "a minimum travel distance assumption is invalid in the
        // face of large queueing delays" — inflate the delay and the
        // ring's inner edge overshoots the true location (the weighted
        // region still exists, it is just wrong).
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.0, 8.0);
        let lm = GeoPoint::new(51.0, 9.0); // ~130 km away
        let honest_ms = lm.distance_km(&truth) / 100.0;
        let congested = Observation::new(lm, honest_ms + 30.0, tight_calib());
        let p = QuasiOctant.locate(&[congested], &mask);
        assert!(
            !p.region.contains_point(&truth),
            "min-distance ring should have excluded the nearby truth"
        );
    }

    #[test]
    fn tighter_rings_beat_cbg_on_clean_data() {
        use crate::algorithms::Cbg;
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let truth = GeoPoint::new(50.5, 8.5);
        let observations: Vec<Observation> = [(53.0, 3.0), (46.0, 13.0), (54.0, 13.0)]
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 100.0 * 1.005, tight_calib())
            })
            .collect();
        let octant = QuasiOctant.locate(&observations, &mask);
        let cbg = Cbg.locate(&observations, &mask);
        assert!(
            octant.area_km2() <= cbg.area_km2(),
            "rings should be at most as large as disks on clean data"
        );
    }
}
