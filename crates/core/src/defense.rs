//! The Byzantine-defense layer: catching *actively shaped* measurements.
//!
//! The baseline pipeline (CBG++ → [`assess_claim`](crate::assess)) is
//! sound against passive lying — a proxy that claims the wrong country
//! but measures honestly. It is **not** sound against the
//! `netsim::adversary` threat model: a proxy that holds chosen replies,
//! starves inconvenient landmarks, inflates its self-ping, or colludes
//! with landmarks can manufacture a mutually-consistent set of wrong
//! readings that CBG++ happily intersects into a credible-looking fake
//! region. This module is the countermeasure stack, run *after* a
//! measurement but *before* a verdict is trusted:
//!
//! 1. **Pairwise speed-of-light consistency** over baseline disks
//!    ([`pairwise_infeasible_flags`]): disjoint honest baseline disks
//!    are impossible, so any conflict is named evidence and the flagged
//!    observations are excluded from the robust re-location.
//! 2. **Trimmed robust subset** ([`robust_max_consistent_subset`]):
//!    the subset search over the unflagged baseline disks, with every
//!    discarded constraint named rather than silently dropped.
//! 3. **Disjoint-subset quorum**: the observation set is split into
//!    disjoint groups (canonical geometric order, round-robin — no RNG)
//!    and each group located independently with CBG++. Honest data
//!    agrees from any subset of landmarks; shaped data that leans on a
//!    few poisoned readings does not survive their separation.
//! 4. **Side-channel evidence** from
//!    [`MeasurementDiagnostics`](crate::reliability::MeasurementDiagnostics):
//!    physically impossible corrected RTTs (negative tunnel-leg
//!    subtraction — the self-ping-inflation signature) and an
//!    implausible excess of dead landmarks (the selective-timeout
//!    signature).
//!
//! Any evidence degrades the verdict to
//! [`Assessment::Suspicious`](crate::assess::Assessment::Suspicious):
//! the pipeline refuses to certify rather than being silently fooled.
//! Everything here is deterministic and order-invariant: pure geometry
//! and arithmetic, no RNG, no clocks — the defense slots into the
//! byte-identical determinism contract unchanged.

use crate::algorithms::CbgPlusPlus;
use crate::delay_model::CbgModel;
use crate::multilateration::constraint::grid_slack_km;
use crate::multilateration::{
    pairwise_infeasible_flags, robust_max_consistent_subset, DiskCache, RingConstraint,
};
use crate::observation::Observation;
use crate::reliability::MeasurementDiagnostics;
use geokit::Region;

/// Defense knobs. Disabled by default: the baseline pipeline (and every
/// pinned determinism fingerprint) is untouched unless a study opts in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Master switch. Off = the defense never runs and costs nothing.
    pub enabled: bool,
    /// Disjoint landmark groups for the quorum check.
    pub quorum_groups: usize,
    /// Minimum observations per quorum group; with fewer total
    /// observations than `quorum_groups * min_group_size` the group
    /// count shrinks, and below two groups the quorum is vacuous.
    pub min_group_size: usize,
    /// Dead landmarks above this fraction of contacted landmarks count
    /// as evidence (selective-timeout signature).
    pub max_dead_fraction: f64,
    /// Corrected readings clamped from negative above this count are
    /// evidence (self-ping-inflation signature). A couple can happen
    /// honestly when a landmark sits nearly on top of the proxy.
    pub max_infeasible_readings: usize,
    /// Tolerance for the direct-ping cross-check on pingable proxies.
    /// Honest tunnels satisfy `η·C ≈ D` (that relation *defines* η —
    /// Fig. 13); a reported self-ping with `η·C > tolerance × D` means
    /// the tunnel claims to be much longer than the wire says it is.
    /// Above 1.0 to absorb routing asymmetry between the two minima.
    pub self_ping_tolerance: f64,
    /// Quorum groups only count as *disagreeing* when their regions are
    /// disjoint **and** their centroids sit at least this far apart
    /// (km). Honest disjoint-subset regions can narrowly miss each
    /// other through bestline underestimation, but they still hug the
    /// same spot; shaped quorums split at continent scale.
    pub quorum_split_km: f64,
    /// Fraction of the full constellation the audit re-probes as a
    /// *challenge sweep* before judging (0 = off). The two-phase path
    /// only probes landmarks the (possibly shaped) phase-1 guess
    /// selects — exactly the readings an active adversary rehearses.
    /// A deterministic stride across every continent yields readings
    /// the adversary did not expect to need, and one unrehearsed
    /// honest reading contradicts the whole shaped story.
    pub challenge_fraction: f64,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            enabled: false,
            quorum_groups: 3,
            min_group_size: 4,
            max_dead_fraction: 0.25,
            max_infeasible_readings: 2,
            self_ping_tolerance: 1.5,
            quorum_split_km: 1000.0,
            challenge_fraction: 0.25,
        }
    }
}

impl DefenseConfig {
    /// The default knob set with the master switch on.
    pub fn enabled() -> DefenseConfig {
        DefenseConfig {
            enabled: true,
            ..DefenseConfig::default()
        }
    }
}

/// The tunnel-timing inputs to the direct-ping cross-check: what the
/// proxy *reported* about its own tunnel vs what the verifier measured
/// on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunnelPings {
    /// The proxy-reported tunnel self-ping C (ms).
    pub self_ping_ms: f64,
    /// Directly measured client<->proxy RTT D (ms), when the proxy
    /// answers pings outside the tunnel. `None` = check unavailable.
    pub direct_ping_ms: Option<f64>,
    /// The tunnel-leg subtraction coefficient eta in use.
    pub eta: f64,
}

/// What the defense found for one proxy: flags, quorum outcome, and the
/// named evidence that (if non-empty) degrades the verdict to
/// `Suspicious`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefenseReport {
    /// Observation indices flagged by the pairwise consistency check.
    pub flagged: Vec<usize>,
    /// Mutually-infeasible landmark pairs found (before resolution).
    pub conflict_pairs: usize,
    /// Unflagged baseline disks the robust subset search still had to
    /// discard.
    pub trimmed: usize,
    /// Disjoint groups the quorum check actually located (0 or 1 =
    /// vacuous — too few observations to split).
    pub quorum_groups_checked: usize,
    /// Whether every located group's region overlapped every other's.
    pub quorum_agree: bool,
    /// Physically impossible corrected readings, copied from
    /// diagnostics.
    pub infeasible_readings: usize,
    /// Dead landmarks as a fraction of contacted landmarks.
    pub dead_fraction: f64,
    /// The named evidence lines. Empty = no tampering detected.
    pub evidence: Vec<&'static str>,
}

impl DefenseReport {
    /// True when any evidence of tampering was found.
    pub fn suspicious(&self) -> bool {
        !self.evidence.is_empty()
    }
}

/// Evidence labels (stable identifiers — they appear in reports,
/// JSONL traces, and EXPERIMENTS.md tables).
pub mod evidence {
    /// Two landmarks' baseline disks are disjoint: at least one lies.
    pub const PAIRWISE_CONFLICT: &str = "pairwise_sol_conflict";
    /// Disjoint landmark subsets place the proxy in incompatible places.
    pub const QUORUM_DISAGREEMENT: &str = "quorum_disagreement";
    /// Corrected RTTs went negative (tunnel-leg subtraction overshot).
    pub const INFEASIBLE_RTT: &str = "infeasible_corrected_rtt";
    /// Too many landmarks never answered through this tunnel.
    pub const DEAD_LANDMARK_EXCESS: &str = "dead_landmark_excess";
    /// The reported tunnel self-ping is far larger than the directly
    /// measured client↔proxy RTT allows (`η·C ≫ D` on a pingable
    /// proxy): the self-ping-inflation signature.
    pub const SELF_PING_MISMATCH: &str = "self_ping_direct_mismatch";
}

/// Baseline (pure-physics) disks for a set of observations, inflated by
/// the grid slack exactly as CBG++'s baseline stage builds them.
pub fn baseline_disks(observations: &[Observation], mask: &Region) -> Vec<RingConstraint> {
    let slack = grid_slack_km(mask.grid());
    observations
        .iter()
        .map(|o| {
            RingConstraint::disk(o.landmark, CbgModel::baseline_distance_km(o.one_way_ms))
                .inflated(slack)
        })
        .collect()
}

/// A canonical, input-order-independent sort key for an observation.
fn canonical_key(o: &Observation) -> (u64, u64, u64) {
    (
        o.landmark.lat().to_bits(),
        o.landmark.lon().to_bits(),
        o.one_way_ms.to_bits(),
    )
}

/// Run the full defense stack over one proxy's observations.
///
/// Deterministic and order-invariant: the report depends only on the
/// *set* of observations and the diagnostics, never on their order or
/// on any RNG. `rec` receives `def.*` counters and (at event level)
/// `defense` events in the per-proxy deterministic compartment.
pub fn run_defense(
    observations: &[Observation],
    diagnostics: &MeasurementDiagnostics,
    pings: TunnelPings,
    mask: &Region,
    cache: Option<&DiskCache>,
    rec: &obs::Recorder,
    cfg: &DefenseConfig,
) -> DefenseReport {
    let _span = rec.profile_span("defense.run");
    let mut report = DefenseReport {
        quorum_agree: true,
        ..DefenseReport::default()
    };

    // 1. Pairwise speed-of-light conflicts over baseline disks.
    let disks = baseline_disks(observations, mask);
    let pairwise = pairwise_infeasible_flags(&disks);
    report.conflict_pairs = pairwise.conflicts.len();
    report.flagged = pairwise
        .flagged
        .iter()
        .enumerate()
        .filter_map(|(i, &f)| f.then_some(i))
        .collect();
    if !report.flagged.is_empty() {
        report.evidence.push(evidence::PAIRWISE_CONFLICT);
    }

    // 2. Trimmed robust subset over the unflagged disks: anything the
    // subset search *still* discards is named (but on its own it is the
    // ordinary underestimation CBG++ tolerates, not evidence).
    let robust = robust_max_consistent_subset(&disks, &pairwise.flagged, mask, cache, Some(rec));
    report.trimmed = robust.discarded.len();

    // 3. Disjoint-subset quorum over the unflagged observations.
    let kept: Vec<&Observation> = observations
        .iter()
        .enumerate()
        .filter(|(i, _)| !pairwise.flagged[*i])
        .map(|(_, o)| o)
        .collect();
    let groups = match kept.len().checked_div(cfg.min_group_size) {
        None => cfg.quorum_groups,
        Some(fit) => cfg.quorum_groups.min(fit),
    };
    if groups >= 2 {
        // Canonical order, then round-robin: deterministic, independent
        // of the measurement order, and geographically interleaved so
        // every group spans the constellation.
        let mut order: Vec<&Observation> = kept.clone();
        order.sort_by_key(|o| canonical_key(o));
        let mut parts: Vec<Vec<Observation>> = vec![Vec::new(); groups];
        for (i, o) in order.into_iter().enumerate() {
            parts[i % groups].push(o.clone());
        }
        let regions: Vec<Region> = parts
            .iter()
            .map(|p| CbgPlusPlus.locate_traced(p, mask, cache, rec).region)
            .collect();
        report.quorum_groups_checked = regions.len();
        'pairs: for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                if regions[i].intersects(&regions[j]) {
                    continue;
                }
                // Disjoint — but honest subsets can narrowly miss each
                // other (bestline underestimation), so only a
                // continent-scale split counts as disagreement.
                if let (Some(a), Some(b)) = (regions[i].centroid(), regions[j].centroid()) {
                    if a.distance_km(&b) >= cfg.quorum_split_km {
                        report.quorum_agree = false;
                        break 'pairs;
                    }
                }
            }
        }
        if !report.quorum_agree {
            report.evidence.push(evidence::QUORUM_DISAGREEMENT);
        }
    }

    // 4. Direct-ping cross-check (pingable proxies only): the η factor
    // is *defined* by `η·C ≈ D` over pingable tunnels (Fig. 13), so a
    // self-ping whose tunnel-leg estimate `η·C` wildly exceeds the
    // directly measured client↔proxy RTT is reporting a tunnel longer
    // than the wire — the self-ping-inflation signature, visible even
    // when the adversary holds every landmark reading consistent. (No
    // self-ping invariant exists against the landmark minimum alone:
    // honest tunnels routinely see `B < C` when a landmark sits closer
    // to the proxy than the client does.)
    if let Some(direct) = pings.direct_ping_ms {
        if direct > 0.0 && pings.self_ping_ms.is_finite() && pings.self_ping_ms > 0.0 && pings.eta > 0.0
        {
            let implied_leg = pings.eta * pings.self_ping_ms;
            if implied_leg > cfg.self_ping_tolerance * direct + 2.0 {
                report.evidence.push(evidence::SELF_PING_MISMATCH);
            }
        }
    }

    // 5. Side-channel evidence from the measurement diagnostics.
    report.infeasible_readings = diagnostics.infeasible_readings;
    if diagnostics.infeasible_readings > cfg.max_infeasible_readings {
        report.evidence.push(evidence::INFEASIBLE_RTT);
    }
    let contacted = diagnostics.landmarks_measured + diagnostics.dead_landmarks;
    report.dead_fraction = if contacted == 0 {
        0.0
    } else {
        diagnostics.dead_landmarks as f64 / contacted as f64
    };
    if contacted > 0 && report.dead_fraction > cfg.max_dead_fraction {
        report.evidence.push(evidence::DEAD_LANDMARK_EXCESS);
    }

    if rec.counters_enabled() {
        rec.count("def.runs", 1);
        rec.count("def.flagged", report.flagged.len() as u64);
        rec.count("def.conflict_pairs", report.conflict_pairs as u64);
        rec.count("def.trimmed", report.trimmed as u64);
        if !report.quorum_agree {
            rec.count("def.quorum_fail", 1);
        }
        if report.suspicious() {
            rec.count("def.suspicious", 1);
        }
        if rec.events_enabled() {
            rec.event(
                "defense",
                "report",
                vec![
                    ("flagged", report.flagged.len().into()),
                    ("conflict_pairs", report.conflict_pairs.into()),
                    ("trimmed", report.trimmed.into()),
                    ("quorum_groups", report.quorum_groups_checked.into()),
                    ("quorum_agree", report.quorum_agree.into()),
                    ("infeasible", report.infeasible_readings.into()),
                ],
            );
            for kind in &report.evidence {
                rec.event("defense", "evidence", vec![("kind", (*kind).into())]);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};

    fn calib() -> CalibrationSet {
        CalibrationSet::from_points(
            (1..=50)
                .map(|i| {
                    let d = f64::from(i) * 200.0;
                    (d, d / 100.0 + 0.2 + f64::from(i % 5))
                })
                .collect(),
        )
    }

    fn honest_observations(truth: GeoPoint, landmarks: &[(f64, f64)]) -> Vec<Observation> {
        landmarks
            .iter()
            .map(|&(lat, lon)| {
                let lm = GeoPoint::new(lat, lon);
                Observation::new(lm, lm.distance_km(&truth) / 100.0 + 0.4, calib())
            })
            .collect()
    }

    const LANDMARKS: [(f64, f64); 9] = [
        (52.0, 4.0),
        (45.0, 12.0),
        (55.0, 16.0),
        (40.0, 2.0),
        (51.0, 0.0),
        (48.0, 16.5),
        (43.0, 6.0),
        (53.5, 10.0),
        (47.0, 2.5),
    ];

    #[test]
    fn honest_measurements_raise_no_evidence() {
        let mask = Region::full(GeoGrid::new(1.0));
        let obs = honest_observations(GeoPoint::new(48.0, 11.0), &LANDMARKS);
        let diag = MeasurementDiagnostics {
            landmarks_measured: obs.len(),
            ..Default::default()
        };
        let report = run_defense(
            &obs,
            &diag,
            TunnelPings { self_ping_ms: 8.0, direct_ping_ms: None, eta: 0.5 },
            &mask,
            None,
            &obs::Recorder::off(),
            &DefenseConfig::enabled(),
        );
        assert!(!report.suspicious(), "evidence: {:?}", report.evidence);
        assert!(report.flagged.is_empty());
        assert!(report.quorum_agree);
        assert!(report.quorum_groups_checked >= 2);
    }

    #[test]
    fn colluding_landmark_is_flagged_by_pairwise_check() {
        let mask = Region::full(GeoGrid::new(1.0));
        let mut obs = honest_observations(GeoPoint::new(48.0, 11.0), &LANDMARKS);
        // A colluder under-reports so hard its baseline disk (a few
        // hundred km around Lisbon) cannot reach any honest disk's
        // coverage of the truth… make it truly disjoint: tiny reading
        // from a far-away landmark.
        obs.push(Observation::new(GeoPoint::new(-33.9, 18.4), 0.3, calib()));
        let diag = MeasurementDiagnostics {
            landmarks_measured: obs.len(),
            ..Default::default()
        };
        let report = run_defense(
            &obs,
            &diag,
            TunnelPings { self_ping_ms: 8.0, direct_ping_ms: None, eta: 0.5 },
            &mask,
            None,
            &obs::Recorder::off(),
            &DefenseConfig::enabled(),
        );
        assert_eq!(report.flagged, vec![LANDMARKS.len()]);
        assert!(report.evidence.contains(&evidence::PAIRWISE_CONFLICT));
        assert!(report.suspicious());
    }

    #[test]
    fn infeasible_readings_and_dead_excess_are_evidence() {
        let mask = Region::full(GeoGrid::new(1.0));
        let obs = honest_observations(GeoPoint::new(48.0, 11.0), &LANDMARKS);
        let diag = MeasurementDiagnostics {
            landmarks_measured: obs.len(),
            dead_landmarks: obs.len() * 2, // most landmarks starved
            infeasible_readings: 5,
            ..Default::default()
        };
        let report = run_defense(
            &obs,
            &diag,
            TunnelPings { self_ping_ms: 8.0, direct_ping_ms: None, eta: 0.5 },
            &mask,
            None,
            &obs::Recorder::off(),
            &DefenseConfig::enabled(),
        );
        assert!(report.evidence.contains(&evidence::INFEASIBLE_RTT));
        assert!(report.evidence.contains(&evidence::DEAD_LANDMARK_EXCESS));
    }

    #[test]
    fn report_is_order_invariant() {
        let mask = Region::full(GeoGrid::new(1.0));
        let mut obs = honest_observations(GeoPoint::new(48.0, 11.0), &LANDMARKS);
        obs.push(Observation::new(GeoPoint::new(-33.9, 18.4), 0.3, calib()));
        let diag = MeasurementDiagnostics {
            landmarks_measured: obs.len(),
            ..Default::default()
        };
        let cfg = DefenseConfig::enabled();
        let rec = obs::Recorder::off();
        let forward = run_defense(&obs, &diag, TunnelPings { self_ping_ms: 8.0, direct_ping_ms: None, eta: 0.5 }, &mask, None, &rec, &cfg);
        let mut rev = obs.clone();
        rev.reverse();
        let backward = run_defense(&rev, &diag, TunnelPings { self_ping_ms: 8.0, direct_ping_ms: None, eta: 0.5 }, &mask, None, &rec, &cfg);
        // Flags are indices into different orders; compare by identity.
        let pick = |r: &DefenseReport, o: &[Observation]| -> Vec<(u64, u64)> {
            let mut v: Vec<(u64, u64)> = r
                .flagged
                .iter()
                .map(|&i| {
                    (
                        o[i].landmark.lat().to_bits(),
                        o[i].landmark.lon().to_bits(),
                    )
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(pick(&forward, &obs), pick(&backward, &rev));
        assert_eq!(forward.evidence, backward.evidence);
        assert_eq!(forward.quorum_agree, backward.quorum_agree);
        assert_eq!(forward.trimmed, backward.trimmed);
    }

    #[test]
    fn inflated_self_ping_fails_direct_ping_cross_check() {
        let mask = Region::full(GeoGrid::new(1.0));
        let obs = honest_observations(GeoPoint::new(48.0, 11.0), &LANDMARKS);
        let diag = MeasurementDiagnostics {
            landmarks_measured: obs.len(),
            ..Default::default()
        };
        // Honest tunnel: direct ping D = 4 ms, self-ping C = 8 ms ->
        // eta*C = 4 ~ D: fine. Inflated: the proxy reports C = 40 ms but
        // the wire still answers in 4 ms -> eta*C = 20 >> 1.5*D + 2.
        let honest = run_defense(
            &obs,
            &diag,
            TunnelPings { self_ping_ms: 8.0, direct_ping_ms: Some(4.0), eta: 0.5 },
            &mask,
            None,
            &obs::Recorder::off(),
            &DefenseConfig::enabled(),
        );
        assert!(!honest.evidence.contains(&evidence::SELF_PING_MISMATCH));
        let inflated = run_defense(
            &obs,
            &diag,
            TunnelPings { self_ping_ms: 40.0, direct_ping_ms: Some(4.0), eta: 0.5 },
            &mask,
            None,
            &obs::Recorder::off(),
            &DefenseConfig::enabled(),
        );
        assert!(inflated.evidence.contains(&evidence::SELF_PING_MISMATCH));
        assert!(inflated.suspicious());
        // Unpingable proxies: the check is unavailable, not evidence.
        let blind = run_defense(
            &obs,
            &diag,
            TunnelPings { self_ping_ms: 40.0, direct_ping_ms: None, eta: 0.5 },
            &mask,
            None,
            &obs::Recorder::off(),
            &DefenseConfig::enabled(),
        );
        assert!(!blind.evidence.contains(&evidence::SELF_PING_MISMATCH));
    }

    #[test]
    fn quorum_is_vacuous_with_too_few_observations() {
        let mask = Region::full(GeoGrid::new(1.0));
        let obs = honest_observations(GeoPoint::new(48.0, 11.0), &LANDMARKS[..3]);
        let diag = MeasurementDiagnostics::default();
        let report = run_defense(
            &obs,
            &diag,
            TunnelPings { self_ping_ms: 8.0, direct_ping_ms: None, eta: 0.5 },
            &mask,
            None,
            &obs::Recorder::off(),
            &DefenseConfig::enabled(),
        );
        assert_eq!(report.quorum_groups_checked, 0);
        assert!(report.quorum_agree);
        assert!(!report.suspicious());
    }
}
