//! Measurement reliability: retries, backoff, method fallback, and
//! degradation accounting.
//!
//! The paper's measurements run against the real Internet, where
//! landmarks go dark mid-campaign, links lose packets, and middleboxes
//! rate-limit probes (§4.2, §7.1). A measurement layer that silently
//! shrinks its denominator when landmarks fail produces results that
//! *look* precise but are built on fewer constraints than advertised.
//! This module makes failure explicit: every probe is scheduled with a
//! bounded retry budget and exponential backoff, a failed method falls
//! back to one that "always works" (TCP connect, §4.2), and everything
//! that went wrong is tallied in [`MeasurementDiagnostics`] so the audit
//! layer can refuse to issue a verdict on thin evidence.
//!
//! Determinism contract: with all faults disabled, a
//! [`ProbeScheduler`]-wrapped prober consumes *exactly* the same network
//! RNG stream as the bare prober — the scheduler's own jitter RNG is
//! separate and is consumed only when a retry actually happens.
//!
//! Telemetry: the scheduler counts `rel.retry`, `rel.fallback`, and
//! `rel.dead_landmark`, and records the `rel.attempts_per_landmark` and
//! `rel.backoff_us` histograms — all registered in `obs::registry`
//! (exposed as `pv_retry_total`, `pv_scheduler_fallback_total`,
//! `pv_retry_exhaustion_total`, `pv_landmark_attempts`,
//! `pv_retry_backoff_microseconds`). `rel.retry` feeds the per-proxy
//! progress snapshots, and `rel.dead_landmark` is the counter behind
//! the default `retry_exhaustion` SLO rule, so renaming any of these
//! raw names is a registry change, not a local edit.

use crate::twophase::RttProber;
use netsim::{Network, NodeId, SimDuration};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

/// Retry/backoff/fallback policy for one measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per landmark per method before giving up on the method.
    pub max_attempts: usize,
    /// First backoff between attempts, ms (simulation time).
    pub base_backoff_ms: f64,
    /// Multiplicative backoff growth per retry.
    pub backoff_factor: f64,
    /// Backoff ceiling, ms.
    pub max_backoff_ms: f64,
    /// Uniform jitter applied to each backoff, as a fraction (±) of it.
    pub jitter_frac: f64,
    /// Readings above this are discarded as timeouts-in-disguise, ms.
    pub timeout_ms: f64,
    /// After the primary method's budget is spent, try the prober's
    /// fallback method (§4.2: TCP connect works where ping does not).
    pub method_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 200.0,
            backoff_factor: 2.0,
            max_backoff_ms: 5_000.0,
            jitter_frac: 0.25,
            timeout_ms: netsim::network::DEFAULT_PROBE_TIMEOUT_MS,
            method_fallback: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never falls back — the bare
    /// prober's behaviour, used for byte-identical comparisons.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            method_fallback: false,
            ..RetryPolicy::default()
        }
    }
}

/// Everything that went wrong (and how hard we tried) during a
/// measurement run. Attached to every audit verdict so "credible" can be
/// distinguished from "credible, but half the landmarks were down".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasurementDiagnostics {
    /// Total probe attempts issued (all methods).
    pub attempts: usize,
    /// Attempts beyond the first per landmark/method.
    pub retries: usize,
    /// Attempts that produced no reply.
    pub timeouts: usize,
    /// Readings discarded as garbage (non-finite or over the timeout).
    pub corrupt_readings: usize,
    /// Landmarks that answered only the fallback method.
    pub fallbacks: usize,
    /// Landmarks that answered nothing at all, ever.
    pub dead_landmarks: usize,
    /// Landmarks that contributed a usable observation.
    pub landmarks_measured: usize,
    /// Phase-1 anchors that answered.
    pub phase1_responsive: usize,
    /// Phase-1 anchors probed.
    pub phase1_total: usize,
    /// Whether the phase-1 continent quorum was missed and the engine
    /// fell back to an all-continent phase-2 sweep.
    pub quorum_degraded: bool,
    /// Corrected readings that went *negative* in the tunnel-leg
    /// subtraction (`A = B − η·C < 0`) and were clamped to zero.
    /// Physically impossible for an honest path — the signature of an
    /// adversary inflating its self-ping (or a badly mis-estimated η) —
    /// so the defense layer treats a high count as evidence.
    pub infeasible_readings: usize,
}

impl MeasurementDiagnostics {
    /// True if no probing happened at all.
    pub fn is_empty(&self) -> bool {
        self.attempts == 0
    }

    /// Fold another diagnostics record into this one (used for
    /// study-level aggregation).
    pub fn absorb(&mut self, other: &MeasurementDiagnostics) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.corrupt_readings += other.corrupt_readings;
        self.fallbacks += other.fallbacks;
        self.dead_landmarks += other.dead_landmarks;
        self.landmarks_measured += other.landmarks_measured;
        self.phase1_responsive += other.phase1_responsive;
        self.phase1_total += other.phase1_total;
        self.quorum_degraded |= other.quorum_degraded;
        self.infeasible_readings += other.infeasible_readings;
    }
}

/// Reliability knobs for a two-phase run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Per-probe retry policy.
    pub retry: RetryPolicy,
    /// Minimum phase-1 anchors that must answer before the continent
    /// guess is trusted; below it, phase 2 sweeps every continent.
    pub phase1_quorum: usize,
    /// Minimum usable observations for a verdict; below it the result is
    /// reported but flagged `InsufficientData`.
    pub phase2_min_landmarks: usize,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            retry: RetryPolicy::default(),
            phase1_quorum: 2,
            phase2_min_landmarks: 5,
        }
    }
}

/// Wraps any [`RttProber`] with retries, backoff, reading sanitation,
/// and method fallback, tallying diagnostics as it goes.
///
/// Backoffs advance the network's simulation clock (a retry *waits*), so
/// a landmark in a brief outage window can genuinely recover between
/// attempts. The jitter RNG is the scheduler's own: when no retry fires,
/// the network RNG stream is untouched relative to the bare prober.
pub struct ProbeScheduler<P> {
    /// The wrapped prober (public so callers can reach its knobs).
    pub inner: P,
    /// The policy in force.
    pub policy: RetryPolicy,
    /// Diagnostics accumulated since the last [`take_diagnostics`].
    ///
    /// [`take_diagnostics`]: ProbeScheduler::take_diagnostics
    pub diagnostics: MeasurementDiagnostics,
    rng: StdRng,
}

impl<P> ProbeScheduler<P> {
    /// Wrap `inner` under `policy`; `seed` feeds the jitter RNG only.
    pub fn new(inner: P, policy: RetryPolicy, seed: u64) -> ProbeScheduler<P> {
        ProbeScheduler {
            inner,
            policy,
            diagnostics: MeasurementDiagnostics::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Take the accumulated diagnostics, resetting the tally.
    pub fn take_diagnostics(&mut self) -> MeasurementDiagnostics {
        std::mem::take(&mut self.diagnostics)
    }

    /// Backoff before retry number `retry` (0-based), with jitter.
    fn backoff_ms(&mut self, retry: usize) -> f64 {
        let raw = (self.policy.base_backoff_ms
            * self.policy.backoff_factor.powi(retry as i32))
        .min(self.policy.max_backoff_ms);
        if self.policy.jitter_frac > 0.0 {
            let j = self
                .rng
                .random_range(-self.policy.jitter_frac..self.policy.jitter_frac);
            raw * (1.0 + j)
        } else {
            raw
        }
    }

    /// One method's retry loop. Returns the first sane reading.
    fn try_method(
        &mut self,
        network: &mut Network,
        landmark: NodeId,
        fallback: bool,
    ) -> Option<f64>
    where
        P: RttProber,
    {
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.diagnostics.retries += 1;
                let _backoff_span = network.recorder().profile_span("rel.backoff");
                let wait = self.backoff_ms(attempt - 1);
                network.advance(SimDuration::from_ms(wait));
                let rec = network.recorder();
                if rec.counters_enabled() {
                    rec.count("rel.retry", 1);
                    rec.record("rel.backoff_us", (wait * 1_000.0) as u64);
                    if rec.events_enabled() {
                        rec.set_now_ns(network.now().as_nanos());
                        rec.event(
                            "reliability",
                            "retry",
                            vec![
                                ("landmark", landmark.into()),
                                ("attempt", attempt.into()),
                                ("fallback", fallback.into()),
                                ("backoff_ms", wait.into()),
                            ],
                        );
                    }
                }
            }
            self.diagnostics.attempts += 1;
            let reading = if fallback {
                self.inner.probe_fallback(network, landmark)
            } else {
                self.inner.probe(network, landmark)
            };
            match reading {
                Some(ms) if ms.is_finite() && ms <= self.policy.timeout_ms => {
                    return Some(ms)
                }
                Some(_) => {
                    self.diagnostics.corrupt_readings += 1;
                    network.recorder().count("rel.corrupt_reading", 1);
                }
                None => self.diagnostics.timeouts += 1,
            }
        }
        None
    }
}

impl<P: RttProber> RttProber for ProbeScheduler<P> {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        let _prof = network.recorder().profile_span("rel.probe");
        let attempts_before = self.diagnostics.attempts;
        let result = (|| {
            if let Some(ms) = self.try_method(network, landmark, false) {
                self.diagnostics.landmarks_measured += 1;
                return Some(ms);
            }
            if self.policy.method_fallback {
                if let Some(ms) = self.try_method(network, landmark, true) {
                    self.diagnostics.fallbacks += 1;
                    self.diagnostics.landmarks_measured += 1;
                    let rec = network.recorder();
                    rec.count("rel.fallback", 1);
                    if rec.events_enabled() {
                        rec.set_now_ns(network.now().as_nanos());
                        rec.event(
                            "reliability",
                            "fallback_used",
                            vec![("landmark", landmark.into()), ("rtt_ms", ms.into())],
                        );
                    }
                    return Some(ms);
                }
            }
            self.diagnostics.dead_landmarks += 1;
            let rec = network.recorder();
            rec.count("rel.dead_landmark", 1);
            if rec.events_enabled() {
                rec.set_now_ns(network.now().as_nanos());
                rec.event(
                    "reliability",
                    "landmark_dead",
                    vec![("landmark", landmark.into())],
                );
            }
            None
        })();
        // Per-landmark effort: how many attempts this landmark cost,
        // successful or not — the retry-depth distribution the trace
        // figure renders.
        network.recorder().record(
            "rel.attempts_per_landmark",
            (self.diagnostics.attempts - attempts_before) as u64,
        );
        result
    }

    fn probe_fallback(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        self.inner.probe_fallback(network, landmark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A prober whose landmarks fail a scripted number of times before
    /// answering — no network needed; the Network parameter is a real
    /// (tiny) one so signatures line up.
    struct Scripted {
        fail_first: usize,
        calls: HashMap<NodeId, usize>,
        fallback_answers: bool,
    }

    impl RttProber for Scripted {
        fn probe(&mut self, _network: &mut Network, landmark: NodeId) -> Option<f64> {
            let n = self.calls.entry(landmark).or_insert(0);
            *n += 1;
            if *n > self.fail_first {
                Some(10.0)
            } else {
                None
            }
        }
        fn probe_fallback(&mut self, _network: &mut Network, _landmark: NodeId) -> Option<f64> {
            if self.fallback_answers {
                Some(20.0)
            } else {
                None
            }
        }
    }

    fn tiny_network() -> Network {
        let mut topo = netsim::Topology::new();
        let a = topo.add_node(netsim::topology::plain_node(
            netsim::NodeKind::Host,
            geokit::GeoPoint::new(0.0, 0.0),
        ));
        let b = topo.add_node(netsim::topology::plain_node(
            netsim::NodeKind::Host,
            geokit::GeoPoint::new(1.0, 1.0),
        ));
        topo.add_link(a, b, 1.0);
        Network::new(topo, 9)
    }

    #[test]
    fn retry_recovers_a_flaky_landmark() {
        let mut network = tiny_network();
        let scripted = Scripted {
            fail_first: 2,
            calls: HashMap::new(),
            fallback_answers: false,
        };
        let mut sched = ProbeScheduler::new(scripted, RetryPolicy::default(), 5);
        assert_eq!(sched.probe(&mut network, 0), Some(10.0));
        let d = sched.take_diagnostics();
        assert_eq!(d.attempts, 3);
        assert_eq!(d.retries, 2);
        assert_eq!(d.timeouts, 2);
        assert_eq!(d.landmarks_measured, 1);
        assert_eq!(d.dead_landmarks, 0);
        assert_eq!(d.fallbacks, 0);
    }

    #[test]
    fn backoff_advances_the_simulation_clock() {
        let mut network = tiny_network();
        let scripted = Scripted {
            fail_first: 2,
            calls: HashMap::new(),
            fallback_answers: false,
        };
        let policy = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let before = network.now();
        let mut sched = ProbeScheduler::new(scripted, policy, 5);
        sched.probe(&mut network, 0);
        // Two backoffs: 200 ms then 400 ms (no jitter).
        let waited = network.now().since(before).as_ms();
        assert!((waited - 600.0).abs() < 1e-6, "waited {waited} ms");
    }

    #[test]
    fn fallback_runs_after_primary_budget_is_spent() {
        let mut network = tiny_network();
        let scripted = Scripted {
            fail_first: usize::MAX,
            calls: HashMap::new(),
            fallback_answers: true,
        };
        let mut sched = ProbeScheduler::new(scripted, RetryPolicy::default(), 5);
        assert_eq!(sched.probe(&mut network, 0), Some(20.0));
        let d = sched.take_diagnostics();
        assert_eq!(d.fallbacks, 1);
        assert_eq!(d.landmarks_measured, 1);
        assert_eq!(d.timeouts, 3); // primary budget spent first
    }

    #[test]
    fn dead_landmark_is_counted_dead() {
        let mut network = tiny_network();
        let scripted = Scripted {
            fail_first: usize::MAX,
            calls: HashMap::new(),
            fallback_answers: false,
        };
        let mut sched = ProbeScheduler::new(scripted, RetryPolicy::default(), 5);
        assert_eq!(sched.probe(&mut network, 0), None);
        let d = sched.take_diagnostics();
        assert_eq!(d.dead_landmarks, 1);
        assert_eq!(d.landmarks_measured, 0);
        assert_eq!(d.attempts, 6); // 3 primary + 3 fallback
    }

    #[test]
    fn non_finite_readings_are_discarded_not_returned() {
        struct Garbage;
        impl RttProber for Garbage {
            fn probe(&mut self, _n: &mut Network, _l: NodeId) -> Option<f64> {
                Some(f64::NAN)
            }
        }
        let mut network = tiny_network();
        let mut sched = ProbeScheduler::new(Garbage, RetryPolicy::default(), 5);
        assert_eq!(sched.probe(&mut network, 0), None);
        let d = sched.take_diagnostics();
        assert_eq!(d.corrupt_readings, 3);
        assert_eq!(d.dead_landmarks, 1);
    }

    #[test]
    fn no_retry_means_no_jitter_rng_use_and_no_clock_movement() {
        struct Instant;
        impl RttProber for Instant {
            fn probe(&mut self, _n: &mut Network, _l: NodeId) -> Option<f64> {
                Some(5.0)
            }
        }
        let mut network = tiny_network();
        let before = network.now();
        let mut sched = ProbeScheduler::new(Instant, RetryPolicy::default(), 5);
        for lm in 0..10u32 {
            assert_eq!(sched.probe(&mut network, lm), Some(5.0));
        }
        assert_eq!(network.now(), before, "clock moved without retries");
        // The jitter RNG is untouched: a fresh scheduler with the same
        // seed produces the identical next backoff.
        let fresh = ProbeScheduler::new(Instant, RetryPolicy::default(), 5);
        let (mut a, mut b) = (sched, fresh);
        assert_eq!(a.backoff_ms(0).to_bits(), b.backoff_ms(0).to_bits());
    }

    #[test]
    fn scheduler_narrates_retries_and_fallbacks() {
        let mut network = tiny_network();
        network.set_recorder(obs::Recorder::new(obs::Level::Events));
        let scripted = Scripted {
            fail_first: usize::MAX,
            calls: HashMap::new(),
            fallback_answers: true,
        };
        let mut sched = ProbeScheduler::new(scripted, RetryPolicy::default(), 5);
        assert_eq!(sched.probe(&mut network, 0), Some(20.0));
        let rec = network.recorder();
        assert_eq!(rec.counter("rel.retry"), 2); // primary budget: 3 attempts
        assert_eq!(rec.counter("rel.fallback"), 1);
        assert_eq!(rec.counter("rel.dead_landmark"), 0);
        let depth = rec.hist("rel.attempts_per_landmark").expect("hist recorded");
        assert_eq!(depth.count, 1);
        assert_eq!(depth.sum, 4); // 3 primary + 1 fallback attempt
        rec.with_events(|evs| {
            assert!(evs.iter().any(|e| e.name == "retry"));
            assert!(evs.iter().any(|e| e.name == "fallback_used"));
        });
    }

    #[test]
    fn diagnostics_absorb_accumulates() {
        let mut total = MeasurementDiagnostics::default();
        let one = MeasurementDiagnostics {
            attempts: 3,
            retries: 2,
            timeouts: 2,
            landmarks_measured: 1,
            phase1_responsive: 4,
            phase1_total: 6,
            quorum_degraded: true,
            ..Default::default()
        };
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.attempts, 6);
        assert_eq!(total.phase1_responsive, 8);
        assert!(total.quorum_degraded);
        assert!(!total.is_empty());
        assert!(MeasurementDiagnostics::default().is_empty());
    }
}
