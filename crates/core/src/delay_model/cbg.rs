//! CBG's bestline/baseline model (§3.1), plus the CBG++ slowline (§5.1).
//!
//! For each landmark, CBG fits a **bestline** over the calibration
//! scatter of one-way time `y` (ms) as a function of distance `x` (km):
//! the line `y = b + m·x` that is *below every point* but *as close as
//! possible to all of them* (minimum total vertical residual), with the
//! physical constraint that its implied speed `1/m` not exceed the
//! **baseline** speed of 200 km/ms. CBG++ adds the **slowline**: the
//! implied speed may not fall below 84.5 km/ms either, because a landmark
//! can never be farther than half the Earth's circumference away and
//! one-way delays past 237 ms say nothing (§5.1).
//!
//! The optimal constrained line lies on the lower convex hull of the
//! scatter: every hull edge is a candidate, as are the slope-clamped
//! lines pushed down until feasible; we enumerate and take the minimum
//! total residual.

use atlas::CalibrationSet;
use geokit::hull::lower_hull;
use geokit::{FIBER_SPEED_KM_PER_MS, SLOWLINE_SPEED_KM_PER_MS};

/// Slope of the baseline in ms/km (1 / 200 km·ms⁻¹).
pub const BASELINE_SLOPE_MS_PER_KM: f64 = 1.0 / FIBER_SPEED_KM_PER_MS;

/// Slope of the slowline in ms/km (1 / 84.5 km·ms⁻¹).
pub const SLOWLINE_SLOPE_MS_PER_KM: f64 = 1.0 / SLOWLINE_SPEED_KM_PER_MS;

/// A fitted per-landmark CBG model.
#[derive(Debug, Clone, PartialEq)]
pub struct CbgModel {
    /// Bestline intercept, ms (may be slightly negative under noise;
    /// negative intercepts only enlarge distance bounds).
    pub intercept_ms: f64,
    /// Bestline slope, ms/km (≥ baseline slope; ≤ slowline slope when
    /// fitted with `calibrate_with_slowline`).
    pub slope_ms_per_km: f64,
}

impl CbgModel {
    /// Plain CBG fit: slope constrained to `[1/200, ∞)` ms/km.
    pub fn calibrate(set: &CalibrationSet) -> CbgModel {
        fit(set, BASELINE_SLOPE_MS_PER_KM, f64::INFINITY)
    }

    /// CBG++ fit: slope additionally capped at the slowline
    /// (`1/84.5` ms/km), eliminating a class of underestimates (§5.1).
    pub fn calibrate_with_slowline(set: &CalibrationSet) -> CbgModel {
        fit(set, BASELINE_SLOPE_MS_PER_KM, SLOWLINE_SLOPE_MS_PER_KM)
    }

    /// Bestline distance bound: the farthest the target can be given a
    /// one-way time, km. Zero if the time is below the intercept.
    pub fn max_distance_km(&self, one_way_ms: f64) -> f64 {
        ((one_way_ms - self.intercept_ms) / self.slope_ms_per_km).max(0.0)
    }

    /// Baseline distance bound: distance at the raw fibre speed. This is
    /// the physically-unbeatable bound CBG++ uses for its filter disks.
    pub fn baseline_distance_km(one_way_ms: f64) -> f64 {
        (one_way_ms * FIBER_SPEED_KM_PER_MS).max(0.0)
    }

    /// The implied bestline speed, km/ms (for reporting; the paper's
    /// example lands at 93.5 km/ms).
    pub fn speed_km_per_ms(&self) -> f64 {
        1.0 / self.slope_ms_per_km
    }
}

/// Fit the minimum-total-residual line below all points with slope in
/// `[min_slope, max_slope]`.
fn fit(set: &CalibrationSet, min_slope: f64, max_slope: f64) -> CbgModel {
    let pts = set.points();
    if pts.is_empty() {
        // No calibration: fall back to the baseline itself (pure physics).
        return CbgModel {
            intercept_ms: 0.0,
            slope_ms_per_km: min_slope,
        };
    }

    // Candidate slopes: every edge of the lower hull, plus both clamps.
    let hull = lower_hull(pts);
    let mut slopes: Vec<f64> = hull
        .windows(2)
        .filter(|w| w[1].0 > w[0].0)
        .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
        .collect();
    slopes.push(min_slope);
    if max_slope.is_finite() {
        slopes.push(max_slope);
    }

    let sum_x: f64 = pts.iter().map(|p| p.0).sum();
    let sum_y: f64 = pts.iter().map(|p| p.1).sum();
    let n = pts.len() as f64;

    let mut best: Option<CbgModel> = None;
    let mut best_cost = f64::INFINITY;
    for slope in slopes {
        let slope = slope.clamp(min_slope, max_slope);
        // Push the line down until it clears every point. The intercept
        // may be negative (noisy points below the physical floor); that
        // only makes distance bounds *larger*, which is the safe
        // direction for a coverage-first algorithm.
        let intercept = pts
            .iter()
            .map(|&(x, y)| y - slope * x)
            .fold(f64::INFINITY, f64::min);
        // Total residual of a feasible (below-all-points) line.
        let cost = sum_y - (slope * sum_x + n * intercept);
        debug_assert!(cost >= -1e-9, "negative residual for feasible line");
        if cost < best_cost {
            best_cost = cost;
            best = Some(CbgModel {
                intercept_ms: intercept,
                slope_ms_per_km: slope,
            });
        }
    }
    best.expect("at least one candidate slope")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(points: Vec<(f64, f64)>) -> CalibrationSet {
        CalibrationSet::from_points(points)
    }

    /// Synthetic scatter around an effective speed of 100 km/ms with
    /// queueing noise above.
    fn noisy_scatter() -> CalibrationSet {
        let mut pts = Vec::new();
        for i in 1..=60 {
            let d = f64::from(i) * 150.0;
            // floor at 100 km/ms + deterministic pseudo-noise above
            let noise = f64::from((i * 37) % 11) * 2.0;
            pts.push((d, d / 100.0 + 0.5 + noise));
        }
        set(pts)
    }

    #[test]
    fn bestline_is_below_all_points() {
        let s = noisy_scatter();
        let m = CbgModel::calibrate(&s);
        for &(x, y) in s.points() {
            assert!(
                y + 1e-9 >= m.intercept_ms + m.slope_ms_per_km * x,
                "point ({x}, {y}) below bestline"
            );
        }
    }

    #[test]
    fn bestline_speed_is_subluminal() {
        let m = CbgModel::calibrate(&noisy_scatter());
        assert!(m.speed_km_per_ms() <= FIBER_SPEED_KM_PER_MS + 1e-9);
        // And for this scatter it should be close to the true 100 km/ms.
        assert!(
            (m.speed_km_per_ms() - 100.0).abs() < 15.0,
            "speed {}",
            m.speed_km_per_ms()
        );
    }

    #[test]
    fn max_distance_inverts_the_line() {
        let m = CbgModel {
            intercept_ms: 1.0,
            slope_ms_per_km: 0.01,
        };
        assert!((m.max_distance_km(3.0) - 200.0).abs() < 1e-9);
        assert_eq!(m.max_distance_km(0.5), 0.0); // below intercept
    }

    #[test]
    fn baseline_distance_is_fiber_speed() {
        assert_eq!(CbgModel::baseline_distance_km(10.0), 2000.0);
    }

    #[test]
    fn slowline_caps_pathological_fits() {
        // All calibration points extremely slow (heavy congestion):
        // an unconstrained bestline would estimate a very slow speed and
        // tiny disks; the slowline clamps it.
        let slow = set((1..=30).map(|i| {
            let d = f64::from(i) * 100.0;
            (d, d / 20.0) // 20 km/ms — slower than the slowline
        }).collect());
        let plain = CbgModel::calibrate(&slow);
        assert!(plain.speed_km_per_ms() < SLOWLINE_SPEED_KM_PER_MS);
        let clamped = CbgModel::calibrate_with_slowline(&slow);
        assert!(
            (clamped.speed_km_per_ms() - SLOWLINE_SPEED_KM_PER_MS).abs() < 1e-9,
            "slowline clamp missing: {}",
            clamped.speed_km_per_ms()
        );
        // The clamped model yields larger (safer) distance bounds.
        assert!(clamped.max_distance_km(50.0) > plain.max_distance_km(50.0));
    }

    #[test]
    fn empty_calibration_falls_back_to_baseline() {
        let m = CbgModel::calibrate(&CalibrationSet::default());
        assert_eq!(m.intercept_ms, 0.0);
        assert!((m.speed_km_per_ms() - FIBER_SPEED_KM_PER_MS).abs() < 1e-9);
    }

    #[test]
    fn clamped_slope_stays_feasible() {
        // A single point faster than the slowline: the clamped slope
        // forces a negative intercept, but the line must still pass
        // through (or below) the point — never above it.
        let s = set(vec![(10_000.0, 20.0)]);
        let m = CbgModel::calibrate_with_slowline(&s);
        assert!(
            m.intercept_ms + m.slope_ms_per_km * 10_000.0 <= 20.0 + 1e-9,
            "line above the calibration point"
        );
        // And the resulting max-distance estimate can only overshoot.
        assert!(m.max_distance_km(20.0) >= 10_000.0 - 1e-6);
    }

    #[test]
    fn residual_is_minimized_among_candidates() {
        // Construct a hull with two distinct edges and check the fit
        // picks the edge with smaller total residual.
        let s = set(vec![
            (100.0, 1.0),
            (1000.0, 6.0),
            (5000.0, 40.0),
            (200.0, 8.0),
            (3000.0, 35.0),
            (4000.0, 50.0),
        ]);
        let m = CbgModel::calibrate(&s);
        // Whatever the winner, it must be feasible …
        for &(x, y) in s.points() {
            assert!(y + 1e-9 >= m.intercept_ms + m.slope_ms_per_km * x);
        }
        // … and cost-optimal vs a brute-force scan of hull edges.
        let hull = lower_hull(s.points());
        let mut best_cost = f64::INFINITY;
        for w in hull.windows(2) {
            let slope =
                ((w[1].1 - w[0].1) / (w[1].0 - w[0].0)).max(BASELINE_SLOPE_MS_PER_KM);
            let intercept = s
                .points()
                .iter()
                .map(|&(x, y)| y - slope * x)
                .fold(f64::INFINITY, f64::min);
            let cost: f64 = s
                .points()
                .iter()
                .map(|&(x, y)| y - (intercept + slope * x))
                .sum();
            best_cost = best_cost.min(cost);
        }
        let fit_cost: f64 = s
            .points()
            .iter()
            .map(|&(x, y)| y - (m.intercept_ms + m.slope_ms_per_km * x))
            .sum();
        assert!(fit_cost <= best_cost + 1e-9, "{fit_cost} vs {best_cost}");
    }
}
