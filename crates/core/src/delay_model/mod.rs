//! Delay–distance models: given a one-way travel time, how far could (and
//! must) the packet have gone?

pub mod cbg;
pub mod octant;
pub mod spotter;

pub use cbg::CbgModel;
pub use octant::OctantModel;
pub use spotter::SpotterModel;
