//! Spotter's probabilistic delay model (§3.3).
//!
//! Spotter models the distance to the target as a Gaussian whose mean μ
//! and standard deviation σ are functions of the observed delay, fitted
//! over *pooled* landmark–landmark calibration data ("unlike CBG and
//! Octant, a single fit is used for all landmarks"). The paper fits
//! "a polynomial" to each; following its choices we use cubic
//! least-squares constrained to be non-decreasing (μ) — "anything more
//! flexible led to severe overfitting" — degrading the degree when the
//! constraint fails.
//!
//! Fitting detail the paper leaves open: we compute μ(t) and σ(t) on
//! delay-quantile bins (so dense short-delay data doesn't starve the
//! tail) and fit the binned statistics.

use atlas::CalibrationSet;
use geokit::regress::{fit_monotone_polynomial, fit_polynomial, Polynomial};
use geokit::stats::{mean, std_dev};

/// Number of delay-quantile bins used for the μ/σ estimates.
const BINS: usize = 24;

/// The global Spotter delay model.
#[derive(Debug, Clone)]
pub struct SpotterModel {
    mu: Polynomial,
    sigma: Polynomial,
    /// Fit domain (delays outside are clamped to the edge values).
    t_min: f64,
    t_max: f64,
}

impl SpotterModel {
    /// Fit from pooled calibration sets.
    ///
    /// Returns a degenerate single-bin model when the pool is (nearly)
    /// empty — callers in the study always have mesh data.
    pub fn calibrate(sets: &[&CalibrationSet]) -> SpotterModel {
        let mut pooled: Vec<(f64, f64)> = sets
            .iter()
            .flat_map(|s| s.points().iter().map(|&(d, t)| (t, d)))
            .collect();
        if pooled.is_empty() {
            return SpotterModel {
                mu: Polynomial {
                    coefficients: vec![0.0, geokit::FIBER_SPEED_KM_PER_MS / 2.0],
                },
                sigma: Polynomial {
                    coefficients: vec![500.0],
                },
                t_min: 0.0,
                t_max: 300.0,
            };
        }
        pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite delays"));
        let t_min = pooled[0].0;
        let t_max = pooled[pooled.len() - 1].0;

        // Quantile bins over delay.
        let mut mu_pts = Vec::with_capacity(BINS);
        let mut sigma_pts = Vec::with_capacity(BINS);
        let per_bin = pooled.len().div_ceil(BINS);
        for chunk in pooled.chunks(per_bin) {
            let ts: Vec<f64> = chunk.iter().map(|p| p.0).collect();
            let ds: Vec<f64> = chunk.iter().map(|p| p.1).collect();
            let t_mid = mean(&ts);
            mu_pts.push((t_mid, mean(&ds)));
            sigma_pts.push((t_mid, std_dev(&ds).max(1.0)));
        }

        let mu = fit_monotone_polynomial(&mu_pts, 3, t_min, t_max)
            .expect("nonempty bin statistics");
        let sigma = fit_polynomial(&sigma_pts, 3)
            .or_else(|| fit_polynomial(&sigma_pts, 1))
            .unwrap_or(Polynomial {
                coefficients: vec![mean(&sigma_pts.iter().map(|p| p.1).collect::<Vec<_>>())],
            });
        SpotterModel {
            mu,
            sigma,
            t_min,
            t_max,
        }
    }

    /// Mean distance for a one-way delay, km (clamped to the fit domain,
    /// never negative).
    pub fn mu_km(&self, one_way_ms: f64) -> f64 {
        let t = one_way_ms.clamp(self.t_min, self.t_max);
        self.mu.eval(t).max(0.0)
    }

    /// Distance standard deviation for a one-way delay, km (floored at a
    /// kilometre to keep likelihoods finite).
    pub fn sigma_km(&self, one_way_ms: f64) -> f64 {
        let t = one_way_ms.clamp(self.t_min, self.t_max);
        self.sigma.eval(t).max(1.0)
    }

    /// Log-density of the distance Gaussian at `dist_km` for an observed
    /// delay — the per-landmark factor in Spotter's Bayes product.
    pub fn log_density(&self, one_way_ms: f64, dist_km: f64) -> f64 {
        let mu = self.mu_km(one_way_ms);
        let sigma = self.sigma_km(one_way_ms);
        let z = (dist_km - mu) / sigma;
        -0.5 * z * z - sigma.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pooled scatter with mean speed ~90 km/ms and spread growing with
    /// delay.
    fn pool() -> CalibrationSet {
        let mut pts = Vec::new();
        for i in 1..=400 {
            let t = f64::from(i) * 0.4; // delays 0.4..160 ms
            let spread = f64::from((i * 31) % 17) - 8.0; // ±8 "units"
            let d = (t * 90.0 + spread * (10.0 + t)).max(0.0);
            pts.push((d, t));
        }
        CalibrationSet::from_points(pts)
    }

    #[test]
    fn mu_tracks_the_speed() {
        let p = pool();
        let m = SpotterModel::calibrate(&[&p]);
        for t in [10.0, 40.0, 100.0, 150.0] {
            let mu = m.mu_km(t);
            assert!(
                (mu - t * 90.0).abs() < 0.25 * t * 90.0 + 200.0,
                "μ({t}) = {mu}, expected ≈ {}",
                t * 90.0
            );
        }
    }

    #[test]
    fn mu_is_monotone() {
        let p = pool();
        let m = SpotterModel::calibrate(&[&p]);
        let mut prev = -1.0;
        for i in 0..160 {
            let mu = m.mu_km(f64::from(i));
            assert!(mu + 1e-6 >= prev, "μ decreasing at {i} ms");
            prev = mu;
        }
    }

    #[test]
    fn sigma_is_positive() {
        let p = pool();
        let m = SpotterModel::calibrate(&[&p]);
        for t in [0.5, 5.0, 50.0, 150.0, 500.0] {
            assert!(m.sigma_km(t) >= 1.0);
        }
    }

    #[test]
    fn log_density_peaks_at_mu() {
        let p = pool();
        let m = SpotterModel::calibrate(&[&p]);
        let t = 50.0;
        let mu = m.mu_km(t);
        let at_mu = m.log_density(t, mu);
        assert!(at_mu > m.log_density(t, mu + 2000.0));
        assert!(at_mu > m.log_density(t, (mu - 2000.0).max(0.0)));
    }

    #[test]
    fn clamps_outside_fit_domain() {
        let p = pool();
        let m = SpotterModel::calibrate(&[&p]);
        // Extrapolation is clamped: a crazy delay doesn't explode μ.
        assert_eq!(m.mu_km(10_000.0), m.mu_km(160.0));
        assert_eq!(m.mu_km(0.0), m.mu_km(0.4));
    }

    #[test]
    fn empty_pool_gives_fallback() {
        let m = SpotterModel::calibrate(&[]);
        assert!(m.mu_km(10.0) > 0.0);
        assert!(m.sigma_km(10.0) >= 1.0);
    }
}
