//! (Quasi-)Octant's delay model (§3.2).
//!
//! Octant bounds the target's distance from a landmark on *both* sides:
//! a maximum-distance curve (how far the fastest plausible path reaches
//! in the observed time) and a minimum-distance curve (how far even the
//! slowest plausible path must have gone). Both are piecewise-linear
//! curves over the calibration scatter:
//!
//! * the **max curve** follows the *fast frontier* — the upper convex
//!   frontier of distance as a function of delay — using only
//!   observations whose delay is below the 50th percentile;
//! * the **min curve** follows the *slow frontier* — the lower frontier —
//!   using observations below the 75th percentile;
//! * beyond the cutoffs "Octant uses fixed empirical speed estimates":
//!   we extend with the 90th- and 10th-percentile observed speeds
//!   respectively (the published description leaves the exact constants
//!   open; any fixed empirical quantile pair preserves the behaviour).
//!
//! This is "Quasi"-Octant: the height/traceroute features of the original
//! are omitted, exactly as in the paper, because proxies break traceroute
//! (§4.2).

use atlas::CalibrationSet;
use geokit::hull::{lower_hull, PiecewiseLinear};
use geokit::stats::Ecdf;
use geokit::FIBER_SPEED_KM_PER_MS;

/// A fitted per-landmark Quasi-Octant model.
#[derive(Debug, Clone)]
pub struct OctantModel {
    /// Fast frontier (delay → max distance), valid up to `max_cutoff_ms`.
    max_curve: PiecewiseLinear,
    /// Slow frontier (delay → min distance), valid up to `min_cutoff_ms`.
    min_curve: PiecewiseLinear,
    /// 50th-percentile delay cutoff for the max curve.
    max_cutoff_ms: f64,
    /// 75th-percentile delay cutoff for the min curve.
    min_cutoff_ms: f64,
    /// Fixed empirical speed for delays beyond the max cutoff, km/ms.
    fast_speed: f64,
    /// Fixed empirical speed for delays beyond the min cutoff, km/ms.
    slow_speed: f64,
}

impl OctantModel {
    /// Fit from a landmark's calibration scatter.
    pub fn calibrate(set: &CalibrationSet) -> OctantModel {
        let pts = set.points();
        if pts.is_empty() {
            // Physics-only fallback: max at fibre speed, no minimum.
            return OctantModel {
                max_curve: PiecewiseLinear::new(vec![(0.0, 0.0)]),
                min_curve: PiecewiseLinear::new(vec![(0.0, 0.0)]),
                max_cutoff_ms: 0.0,
                min_cutoff_ms: 0.0,
                fast_speed: FIBER_SPEED_KM_PER_MS,
                slow_speed: 0.0,
            };
        }

        // Work in (delay, distance) space.
        let dt: Vec<(f64, f64)> = pts.iter().map(|&(d, t)| (t, d)).collect();
        let delays = Ecdf::new(dt.iter().map(|p| p.0).collect());
        let max_cutoff_ms = delays.quantile(0.5).expect("nonempty");
        let min_cutoff_ms = delays.quantile(0.75).expect("nonempty");

        // Fast frontier: upper hull of (delay, distance) = lower hull of
        // (delay, -distance), restricted to the cutoff.
        let fast_pts: Vec<(f64, f64)> = dt
            .iter()
            .filter(|p| p.0 <= max_cutoff_ms)
            .map(|&(t, d)| (t, -d))
            .collect();
        let max_curve = PiecewiseLinear::new(
            lower_hull(&fast_pts)
                .into_iter()
                .map(|(t, nd)| (t, -nd))
                .collect(),
        );

        // Slow frontier: lower hull of (delay, distance) up to 75 %.
        let slow_pts: Vec<(f64, f64)> = dt
            .iter()
            .filter(|p| p.0 <= min_cutoff_ms)
            .copied()
            .collect();
        let min_curve = PiecewiseLinear::new(lower_hull(&slow_pts));

        // Empirical extension speeds from the whole scatter.
        let speeds = Ecdf::new(
            dt.iter()
                .filter(|p| p.0 > 1e-9)
                .map(|&(t, d)| d / t)
                .collect(),
        );
        let fast_speed = speeds
            .quantile(0.9)
            .unwrap_or(FIBER_SPEED_KM_PER_MS)
            .min(FIBER_SPEED_KM_PER_MS);
        let slow_speed = speeds.quantile(0.1).unwrap_or(0.0).max(0.0);

        OctantModel {
            max_curve,
            min_curve,
            max_cutoff_ms,
            min_cutoff_ms,
            fast_speed,
            slow_speed,
        }
    }

    /// Maximum distance the target can be from the landmark, km.
    pub fn max_distance_km(&self, one_way_ms: f64) -> f64 {
        if one_way_ms <= self.max_cutoff_ms {
            self.max_curve.eval(one_way_ms).max(0.0)
        } else {
            // Beyond the reliable region: anchor at the curve's end and
            // extend at the fixed fast speed.
            let base = self.max_curve.eval(self.max_cutoff_ms).max(0.0);
            base + (one_way_ms - self.max_cutoff_ms) * self.fast_speed
        }
    }

    /// Minimum distance the target must be from the landmark, km.
    ///
    /// This is the assumption that "there is a minimum speed packets can
    /// travel" which large queueing delays invalidate (§2, §5) — the very
    /// reason Octant-style models underperform on noisy global data.
    ///
    /// Clamped to never exceed [`OctantModel::max_distance_km`]: the two
    /// envelopes extend from different cutoffs (50 % vs 75 %) at different
    /// fixed speeds, and on degenerate calibration sets the raw curves can
    /// cross — an incoherent ring, so the max curve wins.
    pub fn min_distance_km(&self, one_way_ms: f64) -> f64 {
        let raw = if one_way_ms <= self.min_cutoff_ms {
            self.min_curve.eval(one_way_ms).max(0.0)
        } else {
            let base = self.min_curve.eval(self.min_cutoff_ms).max(0.0);
            base + (one_way_ms - self.min_cutoff_ms) * self.slow_speed
        };
        raw.min(self.max_distance_km(one_way_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scatter: distance/time around 100 km/ms ± structured noise.
    fn scatter() -> CalibrationSet {
        let mut pts = Vec::new();
        for i in 1..=80 {
            let d = f64::from(i) * 120.0;
            let base = d / 100.0;
            let noise = f64::from((i * 29) % 13); // 0..12 ms extra
            pts.push((d, base + noise));
        }
        CalibrationSet::from_points(pts)
    }

    #[test]
    fn envelope_brackets_calibration_points_below_cutoff() {
        let s = scatter();
        let m = OctantModel::calibrate(&s);
        for &(d, t) in s.points() {
            if t <= m.max_cutoff_ms {
                assert!(
                    m.max_distance_km(t) + 1e-6 >= d,
                    "max curve cuts below point ({d}, {t})"
                );
            }
            if t <= m.min_cutoff_ms {
                assert!(
                    m.min_distance_km(t) <= d + 1e-6,
                    "min curve cuts above point ({d}, {t})"
                );
            }
        }
    }

    #[test]
    fn min_is_below_max() {
        let m = OctantModel::calibrate(&scatter());
        for t in [1.0, 5.0, 20.0, 60.0, 150.0, 400.0] {
            assert!(
                m.min_distance_km(t) <= m.max_distance_km(t) + 1e-6,
                "inverted envelope at {t} ms"
            );
        }
    }

    #[test]
    fn curves_extend_beyond_cutoff() {
        let m = OctantModel::calibrate(&scatter());
        let t_far = m.max_cutoff_ms * 4.0;
        let at_cut = m.max_distance_km(m.max_cutoff_ms);
        assert!(m.max_distance_km(t_far) > at_cut, "no extension growth");
        // And the extension is linear in t.
        let a = m.max_distance_km(t_far);
        let b = m.max_distance_km(t_far + 10.0);
        let c = m.max_distance_km(t_far + 20.0);
        assert!(((c - b) - (b - a)).abs() < 1e-6);
    }

    #[test]
    fn empty_calibration_behaves_like_physics() {
        let m = OctantModel::calibrate(&CalibrationSet::default());
        assert_eq!(m.min_distance_km(100.0), 0.0);
        assert!((m.max_distance_km(10.0) - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn max_distance_is_monotone_in_delay() {
        let m = OctantModel::calibrate(&scatter());
        let mut prev = 0.0;
        for i in 0..200 {
            let t = f64::from(i) * 0.5;
            let d = m.max_distance_km(t);
            assert!(d + 1e-6 >= prev, "max curve decreasing at {t} ms");
            prev = d;
        }
    }
}
