//! Proxy adaptation (§5.3, Figs. 12–13).
//!
//! A measurement *through* a proxy observes
//! `B = RTT(client↔proxy) + RTT(proxy↔landmark)`; to locate the proxy we
//! need `A = RTT(proxy↔landmark) = B − RTT(client↔proxy)`. Proxies won't
//! answer direct pings, so the client↔proxy leg is estimated from `C`,
//! the *tunnel self-ping* (a ping to the client's own tunnel address,
//! which crosses the tunnel twice): `A = B − η·C`, with η the robust
//! slope of direct-vs-indirect RTTs over the proxies that happen to be
//! pingable both ways — almost exactly ½ (Fig. 13).

use geokit::regress::{theil_sen, Line};
use netsim::{Network, NodeId};

/// The canonical η when no estimate is available: exactly half.
pub const DEFAULT_ETA: f64 = 0.5;

/// Estimated η (slope of direct RTT as a function of tunnel self-ping
/// RTT) plus fit quality.
#[derive(Debug, Clone, Copy)]
pub struct EtaEstimate {
    /// The fitted robust line (slope = η).
    pub line: Line,
    /// R² of the fit over the sample.
    pub r_squared: f64,
    /// Number of (indirect, direct) pairs used.
    pub samples: usize,
}

impl EtaEstimate {
    /// The η factor itself.
    pub fn eta(&self) -> f64 {
        self.line.slope
    }
}

/// Estimate η from the proxies that answer *both* a direct ping and a
/// tunnel self-ping, taking the minimum of `attempts` tries for each
/// quantity (§5.3 uses robust regression because a minority of tunnels
/// see pathological routing).
pub fn estimate_eta(
    network: &mut Network,
    client: NodeId,
    proxies: &[NodeId],
    attempts: usize,
) -> Option<EtaEstimate> {
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for &proxy in proxies {
        let direct = min_of(attempts, || network.ping(client, proxy).map(|d| d.as_ms()));
        let indirect = min_of(attempts, || {
            network
                .self_ping_via_proxy_rtt(client, proxy)
                .map(|d| d.as_ms())
        });
        if let (Some(d), Some(i)) = (direct, indirect) {
            pairs.push((i, d));
        }
    }
    let line = theil_sen(&pairs)?;
    let r2 = geokit::regress::r_squared(&pairs, |x| line.eval(x));
    Some(EtaEstimate {
        line,
        r_squared: r2,
        samples: pairs.len(),
    })
}

fn min_of<F: FnMut() -> Option<f64>>(attempts: usize, mut f: F) -> Option<f64> {
    let mut best: Option<f64> = None;
    for _ in 0..attempts {
        if let Some(v) = f() {
            best = Some(best.map_or(v, |b: f64| b.min(v)));
        }
    }
    best
}

/// Correct a through-proxy RTT to an estimated proxy↔landmark RTT:
/// `A = B − η·C`, floored at zero. A non-finite input stays non-finite
/// (`f64::max` would silently turn NaN into 0.0 — the tightest possible
/// constraint — so a corrupted reading must survive to be filtered
/// upstream, not be laundered into fake precision).
pub fn correct_indirect_rtt(measured_ms: f64, self_ping_ms: f64, eta: f64) -> f64 {
    correct_indirect_rtt_checked(measured_ms, self_ping_ms, eta).0
}

/// [`correct_indirect_rtt`] plus an *infeasibility flag*: true when the
/// subtraction went negative, i.e. the tunnel leg `η·C` claims to be
/// longer than the whole through-proxy path `B`. Physically impossible
/// for an honest proxy (light doesn't go backwards) — exactly what an
/// adversary inflating its self-ping produces — so the caller should
/// count it in `MeasurementDiagnostics::infeasible_readings` rather than
/// silently accept the clamped 0 ms (the tightest possible constraint).
pub fn correct_indirect_rtt_checked(measured_ms: f64, self_ping_ms: f64, eta: f64) -> (f64, bool) {
    let corrected = measured_ms - eta * self_ping_ms;
    if !corrected.is_finite() {
        return (f64::NAN, false);
    }
    (corrected.max(0.0), corrected < 0.0)
}

/// Everything needed to measure landmarks *through* one proxy: the
/// client, the proxy, its minimum self-ping, and the η in force.
#[derive(Debug, Clone, Copy)]
pub struct ProxyContext {
    /// Measurement client (the paper used one host in Frankfurt).
    pub client: NodeId,
    /// The proxy under investigation.
    pub proxy: NodeId,
    /// Minimum observed tunnel self-ping RTT, ms.
    pub self_ping_ms: f64,
    /// The η correction factor.
    pub eta: f64,
}

impl ProxyContext {
    /// Build a context by self-pinging the proxy `attempts` times.
    /// Returns `None` if the tunnel never answers.
    pub fn establish(
        network: &mut Network,
        client: NodeId,
        proxy: NodeId,
        eta: f64,
        attempts: usize,
    ) -> Option<ProxyContext> {
        let self_ping_ms = min_of(attempts, || {
            network
                .self_ping_via_proxy_rtt(client, proxy)
                .map(|d| d.as_ms())
        })?;
        Some(ProxyContext {
            client,
            proxy,
            self_ping_ms,
            eta,
        })
    }

    /// Measure one landmark through the tunnel (minimum of `attempts`),
    /// returning the corrected proxy↔landmark RTT estimate in ms.
    pub fn measure_landmark(
        &self,
        network: &mut Network,
        landmark: NodeId,
        attempts: usize,
    ) -> Option<f64> {
        self.measure_landmark_port(network, landmark, 80, attempts)
    }

    /// [`measure_landmark`](ProxyContext::measure_landmark) on an
    /// explicit port — the reliability layer's fallback uses 443 when a
    /// landmark rate-limits or filters port 80.
    pub fn measure_landmark_port(
        &self,
        network: &mut Network,
        landmark: NodeId,
        port: u16,
        attempts: usize,
    ) -> Option<f64> {
        self.measure_landmark_port_checked(network, landmark, port, attempts)
            .map(|(ms, _)| ms)
    }

    /// [`measure_landmark_port`](ProxyContext::measure_landmark_port)
    /// plus the infeasibility flag from
    /// [`correct_indirect_rtt_checked`] — true when the tunnel-leg
    /// subtraction went negative and the reading was clamped to zero.
    pub fn measure_landmark_port_checked(
        &self,
        network: &mut Network,
        landmark: NodeId,
        port: u16,
        attempts: usize,
    ) -> Option<(f64, bool)> {
        let raw = min_of(attempts, || {
            let d = network
                .tcp_connect_via_proxy_rtt(self.client, self.proxy, landmark, port)?;
            Some(network.corrupt_rtt_ms(d.as_ms()))
        })?;
        Some(correct_indirect_rtt_checked(
            raw,
            self.self_ping_ms,
            self.eta,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::{plain_node, NodeKind, Topology};
    use netsim::FilterPolicy;

    /// client — A ——— B — {proxies, landmark}, with varying B-side spurs.
    fn net(n_proxies: usize) -> (Network, NodeId, Vec<NodeId>, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node(plain_node(NodeKind::Ixp, geokit::GeoPoint::new(50.0, 8.0)));
        let b = topo.add_node(plain_node(NodeKind::Ixp, geokit::GeoPoint::new(48.0, 2.0)));
        topo.add_link(a, b, 4.0);
        let client = topo.add_node(plain_node(NodeKind::Host, geokit::GeoPoint::new(50.1, 8.7)));
        topo.add_link(client, a, 0.4);
        let mut proxies = Vec::new();
        for i in 0..n_proxies {
            let p = topo.add_node(plain_node(
                NodeKind::Host,
                geokit::GeoPoint::new(48.5 + 0.1 * i as f64, 2.2),
            ));
            topo.add_link(p, b, 0.3 + 0.25 * i as f64);
            proxies.push(p);
        }
        let lm = topo.add_node(plain_node(NodeKind::Host, geokit::GeoPoint::new(47.9, 1.9)));
        topo.add_link(lm, b, 0.2);
        (Network::new(topo, 77), client, proxies, lm)
    }

    #[test]
    fn eta_is_about_half() {
        let (mut network, client, proxies, _) = net(8);
        let est = estimate_eta(&mut network, client, &proxies, 12).unwrap();
        assert_eq!(est.samples, 8);
        assert!(
            (est.eta() - 0.5).abs() < 0.05,
            "η = {} (expected ≈ 0.5)",
            est.eta()
        );
        assert!(est.r_squared > 0.95, "R² = {}", est.r_squared);
    }

    #[test]
    fn eta_skips_unpingable_proxies() {
        let (mut network, client, proxies, _) = net(6);
        // Make half the proxies drop pings: they can't contribute pairs.
        for &p in proxies.iter().take(3) {
            network.topology_mut().node_mut(p).policy = FilterPolicy::vpn_server();
        }
        let est = estimate_eta(&mut network, client, &proxies, 10).unwrap();
        assert_eq!(est.samples, 3);
    }

    #[test]
    fn corrected_rtt_matches_direct_leg() {
        let (mut network, client, proxies, lm) = net(3);
        let proxy = proxies[0];
        let ctx = ProxyContext::establish(&mut network, client, proxy, 0.5, 20).unwrap();
        let corrected = ctx.measure_landmark(&mut network, lm, 20).unwrap();
        let direct_floor = network.floor_rtt_ms(proxy, lm).unwrap();
        assert!(
            (corrected - direct_floor).abs() < 2.0,
            "corrected {corrected} vs direct floor {direct_floor}"
        );
    }

    #[test]
    fn correction_never_goes_negative() {
        assert_eq!(correct_indirect_rtt(5.0, 100.0, 0.5), 0.0);
        assert_eq!(correct_indirect_rtt(30.0, 20.0, 0.5), 20.0);
    }

    #[test]
    fn checked_correction_flags_impossible_readings() {
        // Negative after subtraction: clamped to zero AND flagged.
        assert_eq!(correct_indirect_rtt_checked(5.0, 100.0, 0.5), (0.0, true));
        // Feasible: passed through, not flagged.
        assert_eq!(correct_indirect_rtt_checked(30.0, 20.0, 0.5), (20.0, false));
        // NaN survives unflagged — corrupted, not physically impossible;
        // the scheduler's sanitation discards it.
        let (ms, flag) = correct_indirect_rtt_checked(f64::NAN, 20.0, 0.5);
        assert!(ms.is_nan() && !flag);
    }

    #[test]
    fn context_fails_on_dead_tunnel() {
        let (mut network, client, proxies, _) = net(1);
        let p = proxies[0];
        // Unreachable proxy: detach by filtering everything is not
        // possible at this level, but a 100 % drop fault plan is.
        network.faults_mut().set_drop_chance(1.0);
        assert!(ProxyContext::establish(&mut network, client, p, 0.5, 3).is_none());
    }
}
