//! The two-phase measurement procedure (§4.1).
//!
//! Measuring all ~250 anchors takes minutes and most of them contribute
//! nothing (far landmarks are rarely effective, §5.2), so the paper
//! first pins down the *continent* with three anchors per continent,
//! then measures 25 more randomly chosen landmarks on that continent.
//! Random selection spreads measurement load across the constellation.

use crate::observation::Observation;
use crate::proxy::ProxyContext;
use atlas::{LandmarkServer, RttSample, WebTool};
use netsim::{Network, NodeId};
use simrng::rngs::StdRng;
use simrng::Rng;
use worldmap::Continent;

/// Something that can measure an RTT to a landmark on behalf of the
/// geolocation engine. Implementations: a direct CLI client, a Web-tool
/// client, a through-proxy client.
pub trait RttProber {
    /// One corrected RTT measurement to `landmark`, ms, or `None` if the
    /// landmark was unreachable/filtered.
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64>;
}

/// Direct measurement with the CLI tool: min of `attempts` TCP connects.
#[derive(Debug, Clone, Copy)]
pub struct CliProber {
    /// Measuring host.
    pub client: NodeId,
    /// Connect attempts per landmark (minimum taken).
    pub attempts: usize,
}

impl RttProber for CliProber {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        let mut best: Option<f64> = None;
        for _ in 0..self.attempts {
            if let Some(d) = network.tcp_connect_rtt(self.client, landmark, 80) {
                let ms = d.as_ms();
                best = Some(best.map_or(ms, |b: f64| b.min(ms)));
            }
        }
        best
    }
}

/// Web-tool measurement: min of `attempts` fetch-failure timings, with
/// the 1-vs-2-round-trip ambiguity and OS noise baked in.
pub struct WebProber {
    /// Measuring host (the volunteer's machine).
    pub client: NodeId,
    /// The browser/OS profile.
    pub tool: WebTool,
    /// Fetches per landmark (minimum taken).
    pub attempts: usize,
    /// Noise RNG.
    pub rng: StdRng,
}

impl RttProber for WebProber {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        let mut best: Option<RttSample> = None;
        for _ in 0..self.attempts {
            if let Some(s) = self.tool.measure(network, self.client, landmark, &mut self.rng)
            {
                best = Some(match best {
                    None => s,
                    Some(b) if s.rtt_ms < b.rtt_ms => s,
                    Some(b) => b,
                });
            }
        }
        best.map(|s| s.rtt_ms)
    }
}

/// Through-proxy measurement with η correction (§5.3).
#[derive(Debug, Clone, Copy)]
pub struct ProxyProber {
    /// The established tunnel context.
    pub ctx: ProxyContext,
    /// Tunnel connects per landmark (minimum taken).
    pub attempts: usize,
}

impl RttProber for ProxyProber {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        self.ctx.measure_landmark(network, landmark, self.attempts)
    }
}

/// Result of a two-phase measurement run.
#[derive(Debug)]
pub struct TwoPhaseResult {
    /// The continent inferred in phase 1.
    pub continent: Continent,
    /// Observations from the winning continent's phase-1 anchors plus
    /// the phase-2 landmarks.
    pub observations: Vec<Observation>,
}

/// Run the two-phase procedure.
///
/// Returns `None` when phase 1 yields no usable measurement at all (a
/// completely unreachable target).
pub fn run_two_phase<P: RttProber, R: Rng + ?Sized>(
    network: &mut Network,
    server: &LandmarkServer<'_>,
    prober: &mut P,
    rng: &mut R,
) -> Option<TwoPhaseResult> {
    let landmarks = server.constellation().landmarks();

    // Phase 1: three anchors per continent; fastest answer wins.
    let mut best: Option<(f64, Continent)> = None;
    let mut phase1_obs: Vec<(usize, f64)> = Vec::new();
    for id in server.phase1_landmarks() {
        let Some(rtt) = prober.probe(network, landmarks[id].node) else {
            continue;
        };
        let continent = server
            .atlas()
            .country(landmarks[id].country)
            .continent();
        phase1_obs.push((id, rtt));
        if best.is_none_or(|(b, _)| rtt < b) {
            best = Some((rtt, continent));
        }
    }
    let (_, continent) = best?;

    // Phase 2: 25 random landmarks on that continent (anchors + probes).
    let mut observations = Vec::new();
    let mut seen: Vec<usize> = Vec::new();
    for (id, rtt) in phase1_obs {
        let c = server.atlas().country(landmarks[id].country).continent();
        if c == continent {
            observations.push(make_observation(server, id, rtt));
            seen.push(id);
        }
    }
    for id in server.phase2_landmarks(continent, rng) {
        if seen.contains(&id) {
            continue;
        }
        if let Some(rtt) = prober.probe(network, landmarks[id].node) {
            observations.push(make_observation(server, id, rtt));
        }
    }
    Some(TwoPhaseResult {
        continent,
        observations,
    })
}

fn make_observation(server: &LandmarkServer<'_>, id: usize, rtt_ms: f64) -> Observation {
    let lm = &server.constellation().landmarks()[id];
    Observation::new(lm.location, rtt_ms / 2.0, server.calibration_for(id).clone())
}

/// Iterative refinement (§8.1): after the initial two-phase run, keep
/// adding the unmeasured landmarks closest to the current prediction's
/// centroid — the ones most likely to be *effective* (§5.2) — re-locating
/// after each batch, until the region stops shrinking or the landmark
/// budget is spent.
///
/// This is the paper's proposed fix for the noisy per-measurement
/// variation of Fig. 16: "additional probes and anchors are included in
/// the measurement as necessary to reduce the size of the predicted
/// region."
pub struct RefinementConfig {
    /// Landmarks added per refinement round.
    pub batch: usize,
    /// Maximum refinement rounds.
    pub max_rounds: usize,
    /// Stop when a round shrinks the region by less than this fraction.
    pub min_shrink: f64,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            batch: 10,
            max_rounds: 4,
            min_shrink: 0.05,
        }
    }
}

/// Result of an iteratively refined measurement.
pub struct RefinedResult {
    /// The two-phase result, extended with the refinement observations.
    pub observations: Vec<Observation>,
    /// Continent from phase 1.
    pub continent: Continent,
    /// Final prediction region.
    pub region: geokit::Region,
    /// Region area after each locate (index 0 = pre-refinement).
    pub area_history: Vec<f64>,
}

/// Run two-phase measurement followed by iterative refinement using the
/// given locator.
pub fn run_refined<P: RttProber, R: Rng + ?Sized>(
    network: &mut Network,
    server: &LandmarkServer<'_>,
    prober: &mut P,
    locator: &dyn crate::Geolocator,
    mask: &geokit::Region,
    config: &RefinementConfig,
    rng: &mut R,
) -> Option<RefinedResult> {
    let two_phase = run_two_phase(network, server, prober, rng)?;
    let TwoPhaseResult {
        continent,
        mut observations,
    } = two_phase;
    let landmarks = server.constellation().landmarks();

    let mut region = locator.locate(&observations, mask).region;
    let mut area_history = vec![region.area_km2()];

    // Track which landmarks have been used (by location identity).
    let mut used: Vec<bool> = vec![false; landmarks.len()];
    for obs in &observations {
        for (i, lm) in landmarks.iter().enumerate() {
            if lm.location == obs.landmark {
                used[i] = true;
            }
        }
    }

    for _ in 0..config.max_rounds {
        let Some(centroid) = region.centroid() else {
            break;
        };
        // Closest unused landmarks on the predicted continent (plus any
        // others if the continent pool runs dry).
        let mut candidates: Vec<(f64, usize)> = server
            .continent_landmarks(continent)
            .iter()
            .copied()
            .filter(|&id| !used[id])
            .map(|id| (landmarks[id].location.distance_km(&centroid), id))
            .collect();
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        if candidates.is_empty() {
            break;
        }
        let mut measured_any = false;
        for &(_, id) in candidates.iter().take(config.batch) {
            used[id] = true;
            if let Some(rtt) = prober.probe(network, landmarks[id].node) {
                observations.push(make_observation(server, id, rtt));
                measured_any = true;
            }
        }
        if !measured_any {
            break;
        }
        let new_region = locator.locate(&observations, mask).region;
        let old_area = region.area_km2();
        let new_area = new_region.area_km2();
        region = new_region;
        area_history.push(new_area);
        if old_area <= 0.0 || (old_area - new_area) / old_area < config.min_shrink {
            break;
        }
    }

    Some(RefinedResult {
        observations,
        continent,
        region,
        area_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::{CalibrationDb, Constellation, ConstellationConfig};
    use geokit::GeoGrid;
    use netsim::{FilterPolicy, WorldNet, WorldNetConfig};
    use simrng::SeedableRng;
    use std::sync::{Arc, Mutex, OnceLock};
    use worldmap::WorldAtlas;

    struct Fixture {
        world: WorldNet,
        constellation: Constellation,
        calibration: CalibrationDb,
    }

    fn fixture() -> &'static Mutex<Fixture> {
        static S: OnceLock<Mutex<Fixture>> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
            let mut world = WorldNet::build(atlas, WorldNetConfig::default());
            let constellation =
                Constellation::place(&mut world, &ConstellationConfig::small(21));
            let calibration = CalibrationDb::collect(world.network_mut(), &constellation, 8);
            Mutex::new(Fixture {
                world,
                constellation,
                calibration,
            })
        })
    }

    #[test]
    fn continent_guess_is_correct_for_european_host() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(48.2, 11.5), // Munich
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mut prober = CliProber {
            client: host,
            attempts: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let result =
            run_two_phase(world.network_mut(), &server, &mut prober, &mut rng).unwrap();
        assert_eq!(result.continent, Continent::Europe);
        assert!(
            result.observations.len() >= 15,
            "only {} observations",
            result.observations.len()
        );
    }

    #[test]
    fn continent_guess_is_correct_for_american_host() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(41.8, -87.7), // Chicago
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mut prober = CliProber {
            client: host,
            attempts: 3,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let result =
            run_two_phase(world.network_mut(), &server, &mut prober, &mut rng).unwrap();
        assert_eq!(result.continent, Continent::NorthAmerica);
    }

    #[test]
    fn observations_are_one_way_times() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(geokit::GeoPoint::new(52.5, 13.4), FilterPolicy::default());
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mut prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let result =
            run_two_phase(world.network_mut(), &server, &mut prober, &mut rng).unwrap();
        for obs in &result.observations {
            // One-way times are physically bounded below by distance/200,
            // minus the coarse tolerance of the berlin attachment.
            assert!(obs.one_way_ms > 0.0);
            assert!(!obs.calibration.is_empty());
        }
    }

    #[test]
    fn refinement_never_grows_the_final_region_much() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(48.85, 2.35), // Paris
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mask = atlas.plausibility_mask().clone();
        let locator = crate::algorithms::CbgPlusPlus;
        let mut prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let refined = run_refined(
            world.network_mut(),
            &server,
            &mut prober,
            &locator,
            &mask,
            &RefinementConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(!refined.region.is_empty());
        assert!(refined.area_history.len() >= 2, "no refinement happened");
        let first = refined.area_history[0];
        let last = *refined.area_history.last().unwrap();
        assert!(
            last <= first * 1.05,
            "refinement grew the region: {first} → {last}"
        );
        // The truth stays covered.
        assert!(refined
            .region
            .contains_point(&geokit::GeoPoint::new(48.85, 2.35)));
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(geokit::GeoPoint::new(48.0, 2.0), FilterPolicy::default());
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        world.network_mut().faults_mut().set_drop_chance(1.0);
        let mut prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_two_phase(world.network_mut(), &server, &mut prober, &mut rng);
        assert!(result.is_none());
        world.network_mut().faults_mut().set_drop_chance(0.0);
    }
}
