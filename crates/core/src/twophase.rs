//! The two-phase measurement procedure (§4.1).
//!
//! Measuring all ~250 anchors takes minutes and most of them contribute
//! nothing (far landmarks are rarely effective, §5.2), so the paper
//! first pins down the *continent* with three anchors per continent,
//! then measures 25 more randomly chosen landmarks on that continent.
//! Random selection spreads measurement load across the constellation.

use crate::observation::Observation;
use crate::proxy::ProxyContext;
use crate::reliability::{MeasurementDiagnostics, ProbeScheduler, ReliabilityConfig};
use atlas::{LandmarkServer, RttSample, WebTool};
use netsim::{Network, NodeId};
use simrng::rngs::StdRng;
use simrng::Rng;
use worldmap::Continent;

/// Something that can measure an RTT to a landmark on behalf of the
/// geolocation engine. Implementations: a direct CLI client, a Web-tool
/// client, a through-proxy client.
pub trait RttProber {
    /// One corrected RTT measurement to `landmark`, ms, or `None` if the
    /// landmark was unreachable/filtered.
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64>;

    /// Alternate measurement method, tried by the reliability layer when
    /// the primary method's retry budget is spent (§4.2: when ping gets
    /// no answer, a TCP connect to a port that always answers still
    /// measures the round trip). Default: no fallback available.
    fn probe_fallback(&mut self, _network: &mut Network, _landmark: NodeId) -> Option<f64> {
        None
    }
}

/// Direct measurement with the CLI tool: min of `attempts` TCP connects.
#[derive(Debug, Clone, Copy)]
pub struct CliProber {
    /// Measuring host.
    pub client: NodeId,
    /// Connect attempts per landmark (minimum taken).
    pub attempts: usize,
}

impl CliProber {
    fn min_connect(&self, network: &mut Network, landmark: NodeId, port: u16) -> Option<f64> {
        let mut best: Option<f64> = None;
        for _ in 0..self.attempts {
            if let Some(d) = network.tcp_connect_rtt(self.client, landmark, port) {
                let ms = network.corrupt_rtt_ms(d.as_ms());
                best = Some(best.map_or(ms, |b: f64| b.min(ms)));
            }
        }
        best
    }
}

impl RttProber for CliProber {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        self.min_connect(network, landmark, 80)
    }

    fn probe_fallback(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        self.min_connect(network, landmark, 443)
    }
}

/// ICMP-echo measurement with a TCP fallback: the classic research-tool
/// configuration (§4.2 — ping is cheapest, but ~90 % of VPN servers and
/// many landmarks filter it, so TCP connect is the method of last
/// resort that "always works").
#[derive(Debug, Clone, Copy)]
pub struct PingProber {
    /// Measuring host.
    pub client: NodeId,
    /// Echo attempts per landmark (minimum taken).
    pub attempts: usize,
}

impl RttProber for PingProber {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        let mut best: Option<f64> = None;
        for _ in 0..self.attempts {
            if let Some(d) = network.ping(self.client, landmark) {
                let ms = network.corrupt_rtt_ms(d.as_ms());
                best = Some(best.map_or(ms, |b: f64| b.min(ms)));
            }
        }
        best
    }

    fn probe_fallback(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        CliProber {
            client: self.client,
            attempts: self.attempts,
        }
        .probe(network, landmark)
    }
}

/// Web-tool measurement: min of `attempts` fetch-failure timings, with
/// the 1-vs-2-round-trip ambiguity and OS noise baked in.
pub struct WebProber {
    /// Measuring host (the volunteer's machine).
    pub client: NodeId,
    /// The browser/OS profile.
    pub tool: WebTool,
    /// Fetches per landmark (minimum taken).
    pub attempts: usize,
    /// Noise RNG.
    pub rng: StdRng,
}

impl RttProber for WebProber {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        let mut best: Option<RttSample> = None;
        for _ in 0..self.attempts {
            if let Some(s) = self.tool.measure(network, self.client, landmark, &mut self.rng)
            {
                best = Some(match best {
                    None => s,
                    Some(b) if s.rtt_ms < b.rtt_ms => s,
                    Some(b) => b,
                });
            }
        }
        best.map(|s| s.rtt_ms)
    }
}

/// Through-proxy measurement with η correction (§5.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyProberStats {
    /// Readings whose tunnel-leg subtraction went negative and were
    /// clamped to zero (see
    /// [`correct_indirect_rtt_checked`](crate::proxy::correct_indirect_rtt_checked)).
    pub infeasible_readings: usize,
}

/// Through-proxy measurement with η correction (§5.3).
#[derive(Debug, Clone, Copy)]
pub struct ProxyProber {
    /// The established tunnel context.
    pub ctx: ProxyContext,
    /// Tunnel connects per landmark (minimum taken).
    pub attempts: usize,
    /// Tally of physically impossible readings, harvested by the audit
    /// into [`MeasurementDiagnostics::infeasible_readings`] post-run.
    pub stats: ProxyProberStats,
}

impl ProxyProber {
    /// A prober over an established tunnel context.
    pub fn new(ctx: ProxyContext, attempts: usize) -> ProxyProber {
        ProxyProber {
            ctx,
            attempts,
            stats: ProxyProberStats::default(),
        }
    }

    fn checked(&mut self, network: &mut Network, landmark: NodeId, port: u16) -> Option<f64> {
        let (ms, infeasible) =
            self.ctx
                .measure_landmark_port_checked(network, landmark, port, self.attempts)?;
        if infeasible {
            // A negative corrected RTT is physically impossible — the
            // tunnel-leg subtraction overshot the whole measurement. It
            // backs no constraint: count it (the defense layer treats a
            // high count as adversary evidence) and report no reading
            // rather than propagating a clamped zero into a disk.
            self.stats.infeasible_readings += 1;
            network.recorder().count("rel.infeasible_reading", 1);
            return None;
        }
        Some(ms)
    }
}

impl RttProber for ProxyProber {
    fn probe(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        self.checked(network, landmark, 80)
    }

    fn probe_fallback(&mut self, network: &mut Network, landmark: NodeId) -> Option<f64> {
        // Port 443: a landmark rate-limiting or filtering port 80 still
        // answers its TLS port.
        self.checked(network, landmark, 443)
    }
}

/// Result of a two-phase measurement run.
#[derive(Debug)]
pub struct TwoPhaseResult {
    /// The continent inferred in phase 1.
    pub continent: Continent,
    /// Observations from the winning continent's phase-1 anchors plus
    /// the phase-2 landmarks.
    pub observations: Vec<Observation>,
}

/// How a reliability-aware measurement run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurementStatus {
    /// Enough landmarks answered for the result to be trusted.
    Ok,
    /// Some landmarks answered, but fewer than the configured minimum —
    /// the partial result is reported but must not back a verdict.
    InsufficientData,
    /// Nothing answered at all.
    Unmeasurable,
}

/// A two-phase run with explicit failure accounting.
#[derive(Debug)]
pub struct ReliableTwoPhase {
    /// The measurement, when anything answered (present even under
    /// `InsufficientData` so callers can inspect the partial evidence).
    pub result: Option<TwoPhaseResult>,
    /// How the run ended.
    pub status: MeasurementStatus,
    /// What it took to get there.
    pub diagnostics: MeasurementDiagnostics,
}

/// Degradation knobs for the shared engine: the legacy path uses
/// `quorum = 1, min = 0, sweep = false`, which reproduces the original
/// control flow exactly (same probes, same RNG stream, same output).
struct InnerConfig {
    phase1_quorum: usize,
    sweep_on_quorum_miss: bool,
}

struct InnerOutcome {
    result: Option<TwoPhaseResult>,
    phase1_responsive: usize,
    phase1_total: usize,
    quorum_degraded: bool,
}

fn two_phase_inner<P: RttProber, R: Rng + ?Sized>(
    network: &mut Network,
    server: &LandmarkServer<'_>,
    prober: &mut P,
    rng: &mut R,
    cfg: &InnerConfig,
) -> InnerOutcome {
    let landmarks = server.constellation().landmarks();
    let continent_of = |id: usize| server.continent_of(id);

    // Phase 1: three anchors per continent; fastest answer wins. The
    // set is precomputed on the server, which the audit shares across
    // every proxy — no per-proxy selection work.
    let phase1 = server.phase1_landmarks();
    let phase1_total = phase1.len();
    if network.recorder().events_enabled() {
        let rec = network.recorder();
        rec.set_now_ns(network.now().as_nanos());
        rec.event(
            "twophase",
            "phase1_start",
            vec![("anchors", phase1_total.into())],
        );
    }
    let phase1_span = network.recorder().profile_span("twophase.phase1");
    let mut best: Option<(f64, Continent)> = None;
    let mut phase1_obs: Vec<(usize, f64)> = Vec::new();
    for &id in phase1 {
        let Some(rtt) = prober.probe(network, landmarks[id].node) else {
            continue;
        };
        let continent = continent_of(id);
        phase1_obs.push((id, rtt));
        if best.is_none_or(|(b, _)| rtt < b) {
            best = Some((rtt, continent));
        }
    }
    drop(phase1_span);
    let phase1_responsive = phase1_obs.len();
    let quorum_met = phase1_responsive >= cfg.phase1_quorum.max(1);
    {
        let rec = network.recorder();
        rec.count("tp.phase1_responsive", phase1_responsive as u64);
        rec.count("tp.phase1_total", phase1_total as u64);
        if rec.events_enabled() {
            rec.set_now_ns(network.now().as_nanos());
            rec.event(
                "twophase",
                "phase1_done",
                vec![
                    ("responsive", phase1_responsive.into()),
                    ("total", phase1_total.into()),
                    ("quorum_met", quorum_met.into()),
                    (
                        "continent",
                        best.map_or("none", |(_, c)| c.name()).into(),
                    ),
                ],
            );
        }
    }

    let mut observations = Vec::new();
    let mut seen = vec![false; landmarks.len()];

    if quorum_met {
        // Trusted continent guess: the original §4.1 procedure.
        let (_, continent) = best.expect("quorum met implies an answer");
        if network.recorder().events_enabled() {
            let rec = network.recorder();
            rec.set_now_ns(network.now().as_nanos());
            rec.event(
                "twophase",
                "phase2_start",
                vec![("continent", continent.name().into())],
            );
        }
        let _phase2_span = network.recorder().profile_span("twophase.phase2");
        for (id, rtt) in phase1_obs {
            if continent_of(id) == continent {
                observations.push(make_observation(server, id, rtt));
                seen[id] = true;
            }
        }
        for id in server.phase2_landmarks(continent, rng) {
            if seen[id] {
                continue;
            }
            if let Some(rtt) = prober.probe(network, landmarks[id].node) {
                observations.push(make_observation(server, id, rtt));
            }
        }
        network
            .recorder()
            .count("tp.observations", observations.len() as u64);
        return InnerOutcome {
            result: Some(TwoPhaseResult {
                continent,
                observations,
            }),
            phase1_responsive,
            phase1_total,
            quorum_degraded: false,
        };
    }

    if !cfg.sweep_on_quorum_miss {
        // Legacy behaviour (quorum = 1): a miss means nothing answered.
        return InnerOutcome {
            result: None,
            phase1_responsive,
            phase1_total,
            quorum_degraded: false,
        };
    }

    // Quorum missed: the continent guess rests on too few anchors (or
    // none). Degrade loudly — keep whatever phase 1 produced and sweep a
    // phase-2 draw from *every* continent, then take the continent of the
    // fastest responder overall.
    {
        let rec = network.recorder();
        rec.count("tp.quorum_degraded", 1);
        if rec.events_enabled() {
            rec.set_now_ns(network.now().as_nanos());
            rec.event(
                "twophase",
                "quorum_degraded",
                vec![
                    ("responsive", phase1_responsive.into()),
                    ("quorum", cfg.phase1_quorum.into()),
                ],
            );
        }
    }
    let _sweep_span = network.recorder().profile_span("twophase.sweep");
    for &(id, rtt) in &phase1_obs {
        observations.push(make_observation(server, id, rtt));
        seen[id] = true;
    }
    for &continent in Continent::ALL.iter() {
        for id in server.phase2_landmarks(continent, rng) {
            if seen[id] {
                continue;
            }
            seen[id] = true;
            if let Some(rtt) = prober.probe(network, landmarks[id].node) {
                if best.is_none_or(|(b, _)| rtt < b) {
                    best = Some((rtt, continent_of(id)));
                }
                observations.push(make_observation(server, id, rtt));
            }
        }
    }
    network
        .recorder()
        .count("tp.observations", observations.len() as u64);
    InnerOutcome {
        result: best.map(|(_, continent)| TwoPhaseResult {
            continent,
            observations,
        }),
        phase1_responsive,
        phase1_total,
        quorum_degraded: true,
    }
}

/// Run the two-phase procedure.
///
/// Returns `None` when phase 1 yields no usable measurement at all (a
/// completely unreachable target).
pub fn run_two_phase<P: RttProber, R: Rng + ?Sized>(
    network: &mut Network,
    server: &LandmarkServer<'_>,
    prober: &mut P,
    rng: &mut R,
) -> Option<TwoPhaseResult> {
    two_phase_inner(
        network,
        server,
        prober,
        rng,
        &InnerConfig {
            phase1_quorum: 1,
            sweep_on_quorum_miss: false,
        },
    )
    .result
}

/// Run the two-phase procedure under a reliability policy: the prober is
/// a [`ProbeScheduler`] (retries, backoff, fallback), a missed phase-1
/// quorum degrades to an all-continent sweep instead of trusting a thin
/// continent guess, and the outcome always carries diagnostics.
pub fn run_two_phase_reliable<P: RttProber, R: Rng + ?Sized>(
    network: &mut Network,
    server: &LandmarkServer<'_>,
    scheduler: &mut ProbeScheduler<P>,
    rng: &mut R,
    cfg: &ReliabilityConfig,
) -> ReliableTwoPhase {
    let outcome = two_phase_inner(
        network,
        server,
        scheduler,
        rng,
        &InnerConfig {
            phase1_quorum: cfg.phase1_quorum,
            sweep_on_quorum_miss: true,
        },
    );
    let mut diagnostics = scheduler.take_diagnostics();
    diagnostics.phase1_responsive = outcome.phase1_responsive;
    diagnostics.phase1_total = outcome.phase1_total;
    diagnostics.quorum_degraded = outcome.quorum_degraded;
    let status = match &outcome.result {
        None => MeasurementStatus::Unmeasurable,
        Some(r) if r.observations.len() < cfg.phase2_min_landmarks => {
            MeasurementStatus::InsufficientData
        }
        Some(_) => MeasurementStatus::Ok,
    };
    ReliableTwoPhase {
        result: outcome.result,
        status,
        diagnostics,
    }
}

fn make_observation(server: &LandmarkServer<'_>, id: usize, rtt_ms: f64) -> Observation {
    let lm = &server.constellation().landmarks()[id];
    Observation::new(lm.location, rtt_ms / 2.0, server.calibration_for(id).clone())
}

/// Iterative refinement (§8.1): after the initial two-phase run, keep
/// adding the unmeasured landmarks closest to the current prediction's
/// centroid — the ones most likely to be *effective* (§5.2) — re-locating
/// after each batch, until the region stops shrinking or the landmark
/// budget is spent.
///
/// This is the paper's proposed fix for the noisy per-measurement
/// variation of Fig. 16: "additional probes and anchors are included in
/// the measurement as necessary to reduce the size of the predicted
/// region."
pub struct RefinementConfig {
    /// Landmarks added per refinement round.
    pub batch: usize,
    /// Maximum refinement rounds.
    pub max_rounds: usize,
    /// Stop when a round shrinks the region by less than this fraction.
    pub min_shrink: f64,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            batch: 10,
            max_rounds: 4,
            min_shrink: 0.05,
        }
    }
}

/// Result of an iteratively refined measurement.
pub struct RefinedResult {
    /// The two-phase result, extended with the refinement observations.
    pub observations: Vec<Observation>,
    /// Continent from phase 1.
    pub continent: Continent,
    /// Final prediction region.
    pub region: geokit::Region,
    /// Region area after each locate (index 0 = pre-refinement).
    pub area_history: Vec<f64>,
}

/// Run two-phase measurement followed by iterative refinement using the
/// given locator.
pub fn run_refined<P: RttProber, R: Rng + ?Sized>(
    network: &mut Network,
    server: &LandmarkServer<'_>,
    prober: &mut P,
    locator: &dyn crate::Geolocator,
    mask: &geokit::Region,
    config: &RefinementConfig,
    rng: &mut R,
) -> Option<RefinedResult> {
    let two_phase = run_two_phase(network, server, prober, rng)?;
    let TwoPhaseResult {
        continent,
        mut observations,
    } = two_phase;
    let landmarks = server.constellation().landmarks();

    let mut region = locator.locate(&observations, mask).region;
    let mut area_history = vec![region.area_km2()];

    // Track which landmarks have been used (by location identity).
    let mut used: Vec<bool> = vec![false; landmarks.len()];
    for obs in &observations {
        for (i, lm) in landmarks.iter().enumerate() {
            if lm.location == obs.landmark {
                used[i] = true;
            }
        }
    }

    for _ in 0..config.max_rounds {
        let Some(centroid) = region.centroid() else {
            break;
        };
        // Closest unused landmarks on the predicted continent (plus any
        // others if the continent pool runs dry).
        let mut candidates: Vec<(f64, usize)> = server
            .continent_landmarks(continent)
            .iter()
            .copied()
            .filter(|&id| !used[id])
            .map(|id| (landmarks[id].location.distance_km(&centroid), id))
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        if candidates.is_empty() {
            break;
        }
        let mut measured_any = false;
        for &(_, id) in candidates.iter().take(config.batch) {
            used[id] = true;
            if let Some(rtt) = prober.probe(network, landmarks[id].node) {
                observations.push(make_observation(server, id, rtt));
                measured_any = true;
            }
        }
        if !measured_any {
            break;
        }
        let new_region = locator.locate(&observations, mask).region;
        let old_area = region.area_km2();
        let new_area = new_region.area_km2();
        region = new_region;
        area_history.push(new_area);
        if old_area <= 0.0 || (old_area - new_area) / old_area < config.min_shrink {
            break;
        }
    }

    Some(RefinedResult {
        observations,
        continent,
        region,
        area_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::{CalibrationDb, Constellation, ConstellationConfig};
    use geokit::GeoGrid;
    use netsim::{FilterPolicy, WorldNet, WorldNetConfig};
    use simrng::SeedableRng;
    use std::sync::{Arc, Mutex, OnceLock};
    use worldmap::WorldAtlas;

    struct Fixture {
        world: WorldNet,
        constellation: Constellation,
        calibration: CalibrationDb,
    }

    fn fixture() -> &'static Mutex<Fixture> {
        static S: OnceLock<Mutex<Fixture>> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
            let mut world = WorldNet::build(atlas, WorldNetConfig::default());
            let constellation =
                Constellation::place(&mut world, &ConstellationConfig::small(21));
            let calibration = CalibrationDb::collect(world.network_mut(), &constellation, 8);
            Mutex::new(Fixture {
                world,
                constellation,
                calibration,
            })
        })
    }

    #[test]
    fn continent_guess_is_correct_for_european_host() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(48.2, 11.5), // Munich
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mut prober = CliProber {
            client: host,
            attempts: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let result =
            run_two_phase(world.network_mut(), &server, &mut prober, &mut rng).unwrap();
        assert_eq!(result.continent, Continent::Europe);
        assert!(
            result.observations.len() >= 15,
            "only {} observations",
            result.observations.len()
        );
    }

    #[test]
    fn continent_guess_is_correct_for_american_host() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(41.8, -87.7), // Chicago
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mut prober = CliProber {
            client: host,
            attempts: 3,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let result =
            run_two_phase(world.network_mut(), &server, &mut prober, &mut rng).unwrap();
        assert_eq!(result.continent, Continent::NorthAmerica);
    }

    #[test]
    fn observations_are_one_way_times() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(geokit::GeoPoint::new(52.5, 13.4), FilterPolicy::default());
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mut prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let result =
            run_two_phase(world.network_mut(), &server, &mut prober, &mut rng).unwrap();
        for obs in &result.observations {
            // One-way times are physically bounded below by distance/200,
            // minus the coarse tolerance of the berlin attachment.
            assert!(obs.one_way_ms > 0.0);
            assert!(!obs.calibration.is_empty());
        }
    }

    #[test]
    fn refinement_never_grows_the_final_region_much() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(48.85, 2.35), // Paris
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        let mask = atlas.plausibility_mask().clone();
        let locator = crate::algorithms::CbgPlusPlus;
        let mut prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let refined = run_refined(
            world.network_mut(),
            &server,
            &mut prober,
            &locator,
            &mask,
            &RefinementConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(!refined.region.is_empty());
        assert!(refined.area_history.len() >= 2, "no refinement happened");
        let first = refined.area_history[0];
        let last = *refined.area_history.last().unwrap();
        assert!(
            last <= first * 1.05,
            "refinement grew the region: {first} → {last}"
        );
        // The truth stays covered.
        assert!(refined
            .region
            .contains_point(&geokit::GeoPoint::new(48.85, 2.35)));
    }

    fn quick_policy() -> crate::reliability::RetryPolicy {
        crate::reliability::RetryPolicy {
            max_attempts: 2,
            ..Default::default()
        }
    }

    #[test]
    fn dark_phase1_is_unmeasurable_with_diagnostics() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(geokit::GeoPoint::new(48.0, 9.0), FilterPolicy::default());
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        world.network_mut().faults_mut().set_drop_chance(1.0);
        let prober = CliProber {
            client: host,
            attempts: 1,
        };
        let mut sched = ProbeScheduler::new(prober, quick_policy(), 7);
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_two_phase_reliable(
            world.network_mut(),
            &server,
            &mut sched,
            &mut rng,
            &ReliabilityConfig::default(),
        );
        world.network_mut().faults_mut().clear();
        assert_eq!(out.status, MeasurementStatus::Unmeasurable);
        assert!(out.result.is_none());
        assert!(!out.diagnostics.is_empty(), "no attempts recorded");
        assert_eq!(out.diagnostics.phase1_responsive, 0);
        assert!(out.diagnostics.phase1_total > 0);
        assert!(out.diagnostics.dead_landmarks > 0);
        assert!(out.diagnostics.retries > 0, "scheduler never retried");
    }

    #[test]
    fn missed_phase1_quorum_degrades_to_all_continent_sweep() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(48.2, 11.5), // Munich
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        // Keep exactly one phase-1 anchor (a European one) alive: one
        // responsive anchor misses the default quorum of two.
        let phase1 = server.phase1_landmarks();
        let lms = server.constellation().landmarks();
        let keep = phase1
            .iter()
            .copied()
            .find(|&id| {
                atlas.country(lms[id].country).continent() == Continent::Europe
            })
            .expect("a European anchor in phase 1");
        let down: Vec<_> = phase1
            .iter()
            .copied()
            .filter(|&id| id != keep)
            .map(|id| lms[id].node)
            .collect();
        let t0 = world.network_mut().now();
        for node in down {
            world.network_mut().faults_mut().add_permanent_outage(node, t0);
        }
        let prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut sched = ProbeScheduler::new(prober, quick_policy(), 8);
        let mut rng = StdRng::seed_from_u64(6);
        let out = run_two_phase_reliable(
            world.network_mut(),
            &server,
            &mut sched,
            &mut rng,
            &ReliabilityConfig::default(),
        );
        world.network_mut().faults_mut().clear();
        assert!(out.diagnostics.quorum_degraded, "quorum miss not flagged");
        assert_eq!(out.diagnostics.phase1_responsive, 1);
        assert_eq!(out.status, MeasurementStatus::Ok);
        let result = out.result.expect("sweep should still measure");
        // The all-continent sweep still finds the right continent: the
        // fastest responders are the European landmarks near the host.
        assert_eq!(result.continent, Continent::Europe);
        assert!(
            result.observations.len() >= 15,
            "only {} observations from the sweep",
            result.observations.len()
        );
    }

    #[test]
    fn thin_phase2_is_flagged_insufficient_not_silently_ok() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(
            geokit::GeoPoint::new(50.1, 8.7), // Frankfurt
            FilterPolicy::default(),
        );
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        // Phase-1 anchors stay up everywhere, so the continent guess is
        // sound — but every *other* European landmark is down, so phase 2
        // contributes nothing beyond the phase-1 anchors.
        let lms = server.constellation().landmarks();
        let phase1 = server.phase1_landmarks();
        let down: Vec<_> = server
            .continent_landmarks(Continent::Europe)
            .iter()
            .copied()
            .filter(|id| !phase1.contains(id))
            .map(|id| lms[id].node)
            .collect();
        let t0 = world.network_mut().now();
        for node in down {
            world.network_mut().faults_mut().add_permanent_outage(node, t0);
        }
        let prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut sched = ProbeScheduler::new(prober, quick_policy(), 9);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = ReliabilityConfig {
            phase2_min_landmarks: 5,
            ..Default::default()
        };
        let out =
            run_two_phase_reliable(world.network_mut(), &server, &mut sched, &mut rng, &cfg);
        world.network_mut().faults_mut().clear();
        assert_eq!(out.status, MeasurementStatus::InsufficientData);
        let result = out.result.expect("partial evidence is still reported");
        assert!(
            result.observations.len() < 5,
            "{} observations should be thin",
            result.observations.len()
        );
        assert_eq!(result.continent, Continent::Europe);
        assert!(out.diagnostics.dead_landmarks > 0);
    }

    #[test]
    fn reliable_run_without_faults_matches_legacy_byte_for_byte() {
        // Two freshly built, identically seeded worlds: the legacy engine
        // on one, the scheduler-wrapped reliable engine on the other.
        // With no faults the scheduler never retries, so both must
        // consume identical RNG streams and emit identical observations.
        let build = || {
            let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
            let mut world = WorldNet::build(Arc::clone(&atlas), WorldNetConfig::default());
            let constellation =
                Constellation::place(&mut world, &ConstellationConfig::small(33));
            let calibration = CalibrationDb::collect(world.network_mut(), &constellation, 4);
            let host = world.attach_host(
                geokit::GeoPoint::new(48.2, 11.5),
                FilterPolicy::default(),
            );
            (world, constellation, calibration, host)
        };

        let (mut wa, ca, da, host_a) = build();
        let atlas_a = Arc::clone(wa.atlas());
        let server_a = LandmarkServer::new(&ca, &da, &atlas_a);
        let mut prober = CliProber {
            client: host_a,
            attempts: 2,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let legacy =
            run_two_phase(wa.network_mut(), &server_a, &mut prober, &mut rng).unwrap();

        let (mut wb, cb, db, host_b) = build();
        let atlas_b = Arc::clone(wb.atlas());
        let server_b = LandmarkServer::new(&cb, &db, &atlas_b);
        let mut sched = ProbeScheduler::new(
            CliProber {
                client: host_b,
                attempts: 2,
            },
            crate::reliability::RetryPolicy::default(),
            99,
        );
        let mut rng = StdRng::seed_from_u64(11);
        let reliable = run_two_phase_reliable(
            wb.network_mut(),
            &server_b,
            &mut sched,
            &mut rng,
            &ReliabilityConfig::default(),
        );
        assert_eq!(reliable.status, MeasurementStatus::Ok);
        assert_eq!(reliable.diagnostics.retries, 0);
        assert_eq!(reliable.diagnostics.fallbacks, 0);
        let got = reliable.result.unwrap();
        assert_eq!(got.continent, legacy.continent);
        assert_eq!(got.observations.len(), legacy.observations.len());
        for (a, b) in legacy.observations.iter().zip(got.observations.iter()) {
            assert_eq!(a.landmark, b.landmark);
            assert_eq!(
                a.one_way_ms.to_bits(),
                b.one_way_ms.to_bits(),
                "observation diverged: {} vs {}",
                a.one_way_ms,
                b.one_way_ms
            );
        }
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut f = fixture().lock().unwrap();
        let Fixture {
            world,
            constellation,
            calibration,
        } = &mut *f;
        let host = world.attach_host(geokit::GeoPoint::new(48.0, 2.0), FilterPolicy::default());
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(constellation, calibration, &atlas);
        world.network_mut().faults_mut().set_drop_chance(1.0);
        let mut prober = CliProber {
            client: host,
            attempts: 2,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_two_phase(world.network_mut(), &server, &mut prober, &mut rng);
        assert!(result.is_none());
        world.network_mut().faults_mut().set_drop_chance(0.0);
    }
}
