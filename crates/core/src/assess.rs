//! Claim assessment (§6): is the provider's country claim *credible*,
//! *uncertain*, or *false*?
//!
//! "We say that the provider's claim for a proxy is **false** if the
//! predicted region does not cover any part of the claimed country …
//! **credible** if the predicted region is entirely within the claimed
//! country … **uncertain** if the predicted region covers both the
//! claimed country and others." For false and uncertain claims the paper
//! also records whether the prediction stays on the claimed continent.

use geokit::Region;
use worldmap::{Continent, CountryId, WorldAtlas};

/// Country-level verdict on one claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assessment {
    /// Prediction region entirely within the claimed country.
    Credible,
    /// Prediction region covers the claimed country and others.
    Uncertain,
    /// Prediction region misses the claimed country entirely.
    False,
    /// The measurements themselves look *adversarially shaped*: the
    /// geometric verdict (whatever it was) is withheld because the
    /// defense layer found named evidence of tampering — pairwise
    /// speed-of-light conflicts between landmarks, a failed disjoint-
    /// subset quorum, physically impossible corrected RTTs, or an
    /// implausible excess of dead landmarks. Never produced by the
    /// baseline pipeline; only [`run_defense`](crate::defense) degrades
    /// a verdict to this.
    Suspicious,
}

impl Assessment {
    /// Stable, lowercase wire name — the on-disk representation used by
    /// the verdict store (`vpnstudy::store`).
    pub fn as_str(self) -> &'static str {
        match self {
            Assessment::Credible => "credible",
            Assessment::Uncertain => "uncertain",
            Assessment::False => "false",
            Assessment::Suspicious => "suspicious",
        }
    }

    /// Inverse of [`as_str`](Assessment::as_str).
    pub fn parse(s: &str) -> Option<Assessment> {
        match s {
            "credible" => Some(Assessment::Credible),
            "uncertain" => Some(Assessment::Uncertain),
            "false" => Some(Assessment::False),
            "suspicious" => Some(Assessment::Suspicious),
            _ => None,
        }
    }
}

/// Continent-level refinement recorded alongside the assessment
/// (Fig. 17's row categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContinentVerdict {
    /// The prediction stays on the claimed continent.
    Credible,
    /// The prediction touches the claimed continent and others.
    Uncertain,
    /// The prediction misses the claimed continent entirely.
    False,
}

impl ContinentVerdict {
    /// Stable, lowercase wire name (see [`Assessment::as_str`]).
    pub fn as_str(self) -> &'static str {
        match self {
            ContinentVerdict::Credible => "credible",
            ContinentVerdict::Uncertain => "uncertain",
            ContinentVerdict::False => "false",
        }
    }

    /// Inverse of [`as_str`](ContinentVerdict::as_str).
    pub fn parse(s: &str) -> Option<ContinentVerdict> {
        match s {
            "credible" => Some(ContinentVerdict::Credible),
            "uncertain" => Some(ContinentVerdict::Uncertain),
            "false" => Some(ContinentVerdict::False),
            _ => None,
        }
    }
}

/// Full verdict for one proxy claim.
#[derive(Debug, Clone)]
pub struct ClaimVerdict {
    /// Country-level result.
    pub assessment: Assessment,
    /// Continent-level result.
    pub continent: ContinentVerdict,
    /// Countries the prediction touches, largest covered area first.
    pub touched: Vec<(CountryId, f64)>,
}

/// Assess a prediction region against a claimed country.
///
/// An *empty* prediction region is treated as `False` at both levels —
/// the algorithm affirmatively failed to place the target anywhere, so
/// it cannot support the claim. (CBG++ by construction never returns an
/// empty region, §5.1.)
pub fn assess_claim(
    atlas: &WorldAtlas,
    prediction: &Region,
    claimed: CountryId,
) -> ClaimVerdict {
    let touched = atlas.countries_touched(prediction);
    let claimed_continent = atlas.country(claimed).continent();

    let covers_claimed = touched.iter().any(|&(c, _)| c == claimed);
    let covers_other = touched.iter().any(|&(c, _)| c != claimed);
    let assessment = match (covers_claimed, covers_other) {
        (true, false) => Assessment::Credible,
        (true, true) => Assessment::Uncertain,
        (false, _) => Assessment::False,
    };

    let continents: Vec<Continent> = {
        let mut v: Vec<Continent> = touched
            .iter()
            .map(|&(c, _)| atlas.country(c).continent())
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let on_continent = continents.contains(&claimed_continent);
    let other_continent = continents.iter().any(|&c| c != claimed_continent);
    let continent = match (on_continent, other_continent) {
        (true, false) => ContinentVerdict::Credible,
        (true, true) => ContinentVerdict::Uncertain,
        (false, _) => ContinentVerdict::False,
    };

    ClaimVerdict {
        assessment,
        continent,
        touched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::{GeoGrid, GeoPoint, SphericalCap};
    use std::sync::OnceLock;
    use worldmap::WorldAtlas;

    fn atlas() -> &'static WorldAtlas {
        static A: OnceLock<WorldAtlas> = OnceLock::new();
        A.get_or_init(|| WorldAtlas::new(GeoGrid::new(0.5)))
    }

    fn region_around(lat: f64, lon: f64, r: f64) -> Region {
        let a = atlas();
        Region::from_cap(a.grid(), &SphericalCap::new(GeoPoint::new(lat, lon), r))
            .intersection(a.land())
    }

    #[test]
    fn tight_region_in_claimed_country_is_credible() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        // A small disk around Frankfurt, inside Germany.
        let region = region_around(50.1, 8.7, 80.0);
        let v = assess_claim(a, &region, de);
        assert_eq!(v.assessment, Assessment::Credible);
        assert_eq!(v.continent, ContinentVerdict::Credible);
    }

    #[test]
    fn benelux_region_for_german_claim_is_uncertain() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        // Covers western Germany and the Low Countries.
        let region = region_around(50.8, 6.0, 300.0);
        let v = assess_claim(a, &region, de);
        assert_eq!(v.assessment, Assessment::Uncertain);
        assert_eq!(v.continent, ContinentVerdict::Credible);
    }

    #[test]
    fn european_region_for_north_korea_claim_is_false() {
        let a = atlas();
        let kp = a.country_by_iso2("kp").unwrap();
        let region = region_around(50.8, 6.0, 400.0);
        let v = assess_claim(a, &region, kp);
        assert_eq!(v.assessment, Assessment::False);
        assert_eq!(v.continent, ContinentVerdict::False);
    }

    #[test]
    fn same_continent_false_claim() {
        let a = atlas();
        // Region in Germany; claim = Spain: false country, credible
        // continent (Europe).
        let es = a.country_by_iso2("es").unwrap();
        let region = region_around(50.1, 8.7, 150.0);
        let v = assess_claim(a, &region, es);
        assert_eq!(v.assessment, Assessment::False);
        assert_eq!(v.continent, ContinentVerdict::Credible);
    }

    #[test]
    fn us_canada_region_rules_out_the_rest_of_the_world() {
        let a = atlas();
        // The paper's example: a prediction covering Canada and the USA
        // is uncertain between them but false for anywhere else.
        let region = region_around(45.0, -75.0, 600.0);
        let ca = a.country_by_iso2("ca").unwrap();
        let kp = a.country_by_iso2("kp").unwrap();
        assert_eq!(assess_claim(a, &region, ca).assessment, Assessment::Uncertain);
        assert_eq!(assess_claim(a, &region, kp).assessment, Assessment::False);
    }

    #[test]
    fn empty_region_is_false() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        let empty = Region::empty(std::sync::Arc::clone(a.grid()));
        let v = assess_claim(a, &empty, de);
        assert_eq!(v.assessment, Assessment::False);
        assert_eq!(v.continent, ContinentVerdict::False);
        assert!(v.touched.is_empty());
    }

    #[test]
    fn verdict_wire_names_round_trip() {
        for a in [
            Assessment::Credible,
            Assessment::Uncertain,
            Assessment::False,
            Assessment::Suspicious,
        ] {
            assert_eq!(Assessment::parse(a.as_str()), Some(a));
        }
        for c in [
            ContinentVerdict::Credible,
            ContinentVerdict::Uncertain,
            ContinentVerdict::False,
        ] {
            assert_eq!(ContinentVerdict::parse(c.as_str()), Some(c));
        }
        assert_eq!(Assessment::parse("bogus"), None);
        assert_eq!(ContinentVerdict::parse("suspicious"), None);
    }

    #[test]
    fn touched_is_sorted_by_area() {
        let a = atlas();
        let region = region_around(50.8, 6.0, 500.0);
        let de = a.country_by_iso2("de").unwrap();
        let v = assess_claim(a, &region, de);
        assert!(v.touched.len() >= 3);
        for w in v.touched.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
