//! The ICLab geolocation checker (§6.2).
//!
//! ICLab's checker "only attempts to prove that each proxy is *not* in
//! the claimed country": for each landmark measurement, compute the
//! minimum distance from the landmark to the claimed country; if covering
//! that distance within the observed time would require a speed above
//! 153 km/ms (0.5104 c, slightly faster than the 'speed of internet'),
//! the claim is rejected. The claim is accepted only if no measurement
//! requires a super-limit speed.

use crate::observation::Observation;
use worldmap::{CountryId, WorldAtlas};

/// ICLab's speed limit, km/ms.
pub const ICLAB_SPEED_LIMIT_KM_PER_MS: f64 = 153.0;

/// Verdict of the ICLab checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IclabVerdict {
    /// No measurement contradicts the claim.
    Accepted,
    /// At least one measurement would require a super-limit speed.
    Rejected,
}

/// The checker, parameterized by its speed limit.
#[derive(Debug, Clone, Copy)]
pub struct IclabChecker {
    /// Maximum believable speed, km/ms.
    pub speed_limit: f64,
}

impl Default for IclabChecker {
    fn default() -> Self {
        IclabChecker {
            speed_limit: ICLAB_SPEED_LIMIT_KM_PER_MS,
        }
    }
}

impl IclabChecker {
    /// Check a claimed country against landmark measurements.
    ///
    /// Observations carry *one-way* times (the checker reasons about
    /// one-way reach, as the distance bound does).
    pub fn check(
        &self,
        atlas: &WorldAtlas,
        claimed: CountryId,
        observations: &[Observation],
    ) -> IclabVerdict {
        for obs in observations {
            let min_dist = atlas.distance_to_country_km(&obs.landmark, claimed);
            if min_dist <= 0.0 {
                continue; // landmark inside the claimed country
            }
            if obs.one_way_ms <= 0.0 {
                return IclabVerdict::Rejected;
            }
            let required_speed = min_dist / obs.one_way_ms;
            if required_speed > self.speed_limit {
                return IclabVerdict::Rejected;
            }
        }
        IclabVerdict::Accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::{GeoGrid, GeoPoint};
    use std::sync::OnceLock;

    fn atlas() -> &'static WorldAtlas {
        static A: OnceLock<WorldAtlas> = OnceLock::new();
        A.get_or_init(|| WorldAtlas::new(GeoGrid::new(1.0)))
    }

    fn obs(lat: f64, lon: f64, one_way_ms: f64) -> Observation {
        Observation::new(
            GeoPoint::new(lat, lon),
            one_way_ms,
            CalibrationSet::default(),
        )
    }

    #[test]
    fn plausible_claim_accepted() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        // A Paris landmark, 4 ms one-way: Germany is ~300 km away —
        // 75 km/ms needed, fine.
        let v = IclabChecker::default().check(a, de, &[obs(48.86, 2.35, 4.0)]);
        assert_eq!(v, IclabVerdict::Accepted);
    }

    #[test]
    fn impossible_claim_rejected() {
        let a = atlas();
        let kp = a.country_by_iso2("kp").unwrap(); // North Korea
        // A Frankfurt landmark with a 5 ms one-way time: North Korea is
        // ~8000 km away — would need 1600 km/ms.
        let v = IclabChecker::default().check(a, kp, &[obs(50.11, 8.68, 5.0)]);
        assert_eq!(v, IclabVerdict::Rejected);
    }

    #[test]
    fn landmark_inside_claimed_country_never_rejects() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        let v = IclabChecker::default().check(a, de, &[obs(50.11, 8.68, 0.1)]);
        assert_eq!(v, IclabVerdict::Accepted);
    }

    #[test]
    fn one_bad_measurement_suffices() {
        let a = atlas();
        let kp = a.country_by_iso2("kp").unwrap();
        let observations = vec![
            obs(39.0, 125.8, 2.0),  // Pyongyang-ish landmark: consistent
            obs(50.11, 8.68, 5.0),  // Frankfurt: impossible
        ];
        let v = IclabChecker::default().check(a, kp, &observations);
        assert_eq!(v, IclabVerdict::Rejected);
    }

    #[test]
    fn stricter_limit_rejects_more() {
        let a = atlas();
        let es = a.country_by_iso2("es").unwrap();
        // Frankfurt → Spain ≈ 1000 km, 8 ms ⇒ 125 km/ms.
        let o = [obs(50.11, 8.68, 8.0)];
        assert_eq!(
            IclabChecker::default().check(a, es, &o),
            IclabVerdict::Accepted
        );
        let strict = IclabChecker { speed_limit: 100.0 };
        assert_eq!(strict.check(a, es, &o), IclabVerdict::Rejected);
    }

    #[test]
    fn no_observations_accepts() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        assert_eq!(
            IclabChecker::default().check(a, de, &[]),
            IclabVerdict::Accepted
        );
    }
}
