//! The input record every geolocation algorithm consumes.

use atlas::CalibrationSet;
use geokit::GeoPoint;

/// One landmark observation: where the landmark is, the measured one-way
/// travel time to it, and the landmark's delay–distance calibration data.
///
/// Algorithms see nothing else — in particular they never see the
/// target's true location or the raw network — which keeps the evaluation
/// honest: the same `Observation`s drive every algorithm under test.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Landmark location (documented, trusted — §4: anchor locations are
    /// accurate).
    pub landmark: GeoPoint,
    /// One-way travel time in ms (RTT/2 after any proxy correction).
    pub one_way_ms: f64,
    /// The landmark's delay–distance calibration scatter (from the
    /// anchor mesh; probes inherit their nearest anchor's set).
    pub calibration: CalibrationSet,
}

impl Observation {
    /// Construct, validating the delay.
    ///
    /// # Panics
    /// Panics on a non-finite or negative one-way time.
    pub fn new(landmark: GeoPoint, one_way_ms: f64, calibration: CalibrationSet) -> Observation {
        assert!(
            one_way_ms.is_finite() && one_way_ms >= 0.0,
            "bad one-way time {one_way_ms}"
        );
        Observation {
            landmark,
            one_way_ms,
            calibration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs() {
        let o = Observation::new(
            GeoPoint::new(50.0, 8.0),
            12.5,
            CalibrationSet::from_points(vec![(100.0, 1.0)]),
        );
        assert_eq!(o.one_way_ms, 12.5);
    }

    #[test]
    #[should_panic(expected = "bad one-way time")]
    fn rejects_negative_delay() {
        Observation::new(GeoPoint::new(0.0, 0.0), -1.0, CalibrationSet::default());
    }
}
