//! A shared memo of rasterized landmark disks.
//!
//! The audit evaluates thousands of proxies against the *same* landmark
//! constellation, and several algorithms (CBG's bestline disks, CBG++'s
//! baseline and bestline passes) rebuild disks around the same centres
//! with near-identical radii. A [`DiskCache`] keys rasterized cap
//! [`Region`]s by (landmark position, radius quantized **up** to a whole
//! grid cell) so that every repeat is a clone of an `Arc` instead of a
//! fresh rasterization.
//!
//! Quantizing the radius up preserves soundness: a cached disk is never
//! smaller than the exact disk, so a region built from cached disks can
//! only over-cover — it never excludes the true location. The growth is
//! bounded by one grid cell of radius, below the rasterization slack the
//! constraint engine already applies ([`grid_slack_km`]).
//!
//! ## Fill-once concurrency protocol
//!
//! The cache is safe to share across worker threads (`Arc<DiskCache>`)
//! and fills **once per key**: the map is sharded across striped locks,
//! and each entry is a reservation cell ([`OnceLock`]). The first worker
//! to ask for a key inserts an empty reservation under the shard lock,
//! counts the one miss, and rasterizes *outside* the lock; every other
//! worker finds the reservation, counts a hit, and blocks on
//! [`OnceLock::wait`] until the disk is ready. No disk is ever
//! rasterized twice, and the traffic counters are exact — for a fixed
//! workload, `hits`, `misses`, and `entries` are identical for every
//! thread count (`misses == entries` always), so they can participate
//! in determinism diffs rather than being quarantined as telemetry.
//!
//! [`grid_slack_km`]: crate::multilateration::constraint::grid_slack_km

use geokit::{GeoGrid, GeoPoint, Region, SphericalCap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: exact landmark coordinates (bit patterns — landmarks are
/// shared constellation points, so equal positions have equal bits) plus
/// the radius in whole grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DiskKey {
    lat_bits: u64,
    lon_bits: u64,
    radius_cells: u32,
}

impl DiskKey {
    /// Shard index: a 64-bit avalanche over the key fields so nearby
    /// landmarks don't pile onto one stripe.
    fn shard(&self) -> usize {
        let mut h = self.lat_bits
            ^ self.lon_bits.rotate_left(21)
            ^ u64::from(self.radius_cells).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h as usize) % SHARD_COUNT
    }
}

/// Number of striped locks over the key space. Contention on a shard
/// lock is held only for a map probe or a reservation insert — never a
/// rasterization — so a modest stripe count suffices.
const SHARD_COUNT: usize = 16;

/// One reservation cell: empty while the reserving worker rasterizes,
/// filled exactly once.
type DiskSlot = Arc<OnceLock<Arc<Region>>>;

/// Running totals of cache traffic. Exact under any thread count: the
/// fill-once protocol guarantees every lookup counts exactly one hit or
/// one miss, and exactly one worker misses per distinct key, so for a
/// fixed workload `hits`, `misses`, and `entries` are thread-count
/// invariant (with `misses == entries`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Lookups answered from the memo (including lookups that waited on
    /// another worker's in-flight rasterization).
    pub hits: u64,
    /// Lookups that reserved the key and rasterized (one per entry).
    pub misses: u64,
    /// Distinct disks stored.
    pub entries: usize,
}

impl DiskCacheStats {
    /// Hit fraction in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An `Arc`-shared, fill-once memo of rasterized landmark disks on one
/// grid.
#[derive(Debug)]
pub struct DiskCache {
    grid: Arc<GeoGrid>,
    /// Kilometres per whole-cell radius step (one equatorial cell
    /// height).
    cell_km: f64,
    /// Striped reservation maps: `key.shard()` picks the stripe. The
    /// lock guards only map probes and reservation inserts; the
    /// rasterization itself happens outside, on the reserving worker.
    shards: Vec<Mutex<HashMap<DiskKey, DiskSlot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Wall-clock profiling sink (off by default). Lookup and rasterize
    /// spans land here, nesting under whatever span the calling thread
    /// has open — telemetry only, never deterministic output.
    obs: obs::Recorder,
}

impl DiskCache {
    /// An empty cache of disks rasterized on `grid`.
    pub fn new(grid: Arc<GeoGrid>) -> DiskCache {
        let cell_km = grid.resolution_deg() * 111.32;
        DiskCache {
            grid,
            cell_km,
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs: obs::Recorder::off(),
        }
    }

    /// Attach a profiling recorder: subsequent lookups time themselves
    /// as `cache.lookup` / `cache.rasterize` profile spans into it. Call
    /// before sharing the cache across threads.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.obs = rec;
    }

    /// The grid the cached disks live on.
    pub fn grid(&self) -> &Arc<GeoGrid> {
        &self.grid
    }

    /// The radius actually rasterized for a requested radius: quantized
    /// up to the next whole grid cell (minimum one cell).
    pub fn quantized_radius_km(&self, radius_km: f64) -> f64 {
        f64::from(self.radius_cells(radius_km)) * self.cell_km
    }

    fn radius_cells(&self, radius_km: f64) -> u32 {
        ((radius_km / self.cell_km).ceil()).max(1.0) as u32
    }

    /// The rasterized disk of (up to one cell more than) `radius_km`
    /// around `center`, from the memo when possible.
    pub fn disk(&self, center: &GeoPoint, radius_km: f64) -> Arc<Region> {
        self.disk_of_cells(center, self.radius_cells(radius_km))
    }

    /// The disk of (up to one cell *less* than) `radius_km` around
    /// `center`, or `None` when the floor-quantized radius is zero.
    ///
    /// This is the sound quantization for the *inner* cap of an annulus
    /// constraint: shrinking what gets subtracted can only over-cover,
    /// mirroring how [`disk`](DiskCache::disk) grows the outer cap.
    pub fn inner_disk(&self, center: &GeoPoint, radius_km: f64) -> Option<Arc<Region>> {
        let cells = (radius_km / self.cell_km).floor() as u32;
        (cells > 0).then(|| self.disk_of_cells(center, cells))
    }

    /// Rasterize the given disks now, on the calling thread, so a
    /// parallel fan-out starts with them already filled. Radii quantize
    /// exactly as [`disk`](DiskCache::disk) does. Returns how many
    /// entries were newly rasterized; already-present keys are skipped.
    ///
    /// Pre-warming counts neither hits nor misses — it is setup, not
    /// traffic — so a warmed run reports more hits (and zero extra
    /// entries) for the same lookups, deterministically.
    pub fn prewarm<I>(&self, disks: I) -> usize
    where
        I: IntoIterator<Item = (GeoPoint, f64)>,
    {
        let mut filled = 0usize;
        for (center, radius_km) in disks {
            let key = DiskKey {
                lat_bits: center.lat().to_bits(),
                lon_bits: center.lon().to_bits(),
                radius_cells: self.radius_cells(radius_km),
            };
            let (slot, reserved) = self.reserve(key);
            if reserved {
                slot.set(self.rasterize(&center, key.radius_cells))
                    .expect("reserved slot filled twice");
                filled += 1;
            }
        }
        filled
    }

    /// Probe-or-reserve: returns the key's slot and whether *this* call
    /// created it (making the caller responsible for filling it).
    fn reserve(&self, key: DiskKey) -> (DiskSlot, bool) {
        let mut shard = self.shards[key.shard()].lock().expect("disk cache poisoned");
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(v) => {
                let slot: DiskSlot = Arc::new(OnceLock::new());
                v.insert(Arc::clone(&slot));
                (slot, true)
            }
        }
    }

    fn rasterize(&self, center: &GeoPoint, cells: u32) -> Arc<Region> {
        let _raster_span = self.obs.profile_span("cache.rasterize");
        let cap = SphericalCap::new(*center, f64::from(cells) * self.cell_km);
        Arc::new(Region::from_cap(&self.grid, &cap))
    }

    fn disk_of_cells(&self, center: &GeoPoint, cells: u32) -> Arc<Region> {
        let _lookup_span = self.obs.profile_span("cache.lookup");
        let key = DiskKey {
            lat_bits: center.lat().to_bits(),
            lon_bits: center.lon().to_bits(),
            radius_cells: cells,
        };
        let (slot, reserved) = self.reserve(key);
        if reserved {
            // This call owns the key: the one miss, the one rasterization.
            self.misses.fetch_add(1, Ordering::Relaxed);
            let region = self.rasterize(center, cells);
            slot.set(Arc::clone(&region))
                .expect("reserved slot filled twice");
            region
        } else {
            // Someone else owns the key; wait for their fill if it is
            // still in flight. A hit either way — the work is not ours.
            self.hits.fetch_add(1, Ordering::Relaxed);
            Arc::clone(slot.wait())
        }
    }

    /// The sorted set of cached keys as raw `(lat_bits, lon_bits,
    /// radius_cells)` triples.
    ///
    /// This is the merge primitive for *sharded* audits: each shard runs
    /// its own cache, and the master reconstructs the counters a single
    /// shared cache would have reported — `entries` is the size of the
    /// union of shard key sets, `misses == entries` (fill-once), and
    /// `hits` is total lookups minus entries. Sorted so the union is a
    /// deterministic merge of deterministic sequences.
    pub fn export_keys(&self) -> Vec<(u64, u64, u32)> {
        let mut keys: Vec<(u64, u64, u32)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("disk cache poisoned")
                    .keys()
                    .map(|k| (k.lat_bits, k.lon_bits, k.radius_cells))
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Current traffic counters and size. Exact and thread-count
    /// invariant for a fixed workload (see the module docs).
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("disk cache poisoned").len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> DiskCache {
        DiskCache::new(GeoGrid::new(2.0))
    }

    #[test]
    fn repeat_lookup_hits() {
        let c = cache();
        let lm = GeoPoint::new(48.0, 11.0);
        let a = c.disk(&lm, 700.0);
        let b = c.disk(&lm, 700.0);
        assert!(Arc::ptr_eq(&a, &b));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn radii_in_the_same_cell_share_an_entry() {
        let c = cache();
        let lm = GeoPoint::new(0.0, 0.0);
        // 2° cells are ~222.64 km: 500 and 600 km both quantize to 3.
        let a = c.disk(&lm, 500.0);
        let b = c.disk(&lm, 600.0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn quantization_never_shrinks_a_disk() {
        let c = cache();
        for r in [1.0, 100.0, 333.3, 1000.0, 5000.0] {
            assert!(c.quantized_radius_km(r) >= r, "radius {r} shrank");
        }
        let lm = GeoPoint::new(30.0, 30.0);
        let exact = Region::from_cap(c.grid(), &SphericalCap::new(lm, 750.0));
        let cached = c.disk(&lm, 750.0);
        assert!(exact.is_subset_of(&cached));
    }

    #[test]
    fn inner_disk_never_grows() {
        let c = cache();
        let lm = GeoPoint::new(-20.0, 100.0);
        // Below one cell: nothing to subtract.
        assert!(c.inner_disk(&lm, 100.0).is_none());
        let exact = Region::from_cap(c.grid(), &SphericalCap::new(lm, 750.0));
        let inner = c.inner_disk(&lm, 750.0).unwrap();
        assert!(inner.is_subset_of(&exact));
        // Outer ceil and inner floor of the same radius share no key
        // only when the radius is not already whole-cell.
        assert!(inner.cell_count() <= c.disk(&lm, 750.0).cell_count());
    }

    #[test]
    fn export_keys_is_sorted_and_matches_entries() {
        let c = cache();
        c.disk(&GeoPoint::new(10.0, 10.0), 400.0);
        c.disk(&GeoPoint::new(-5.0, 80.0), 900.0);
        c.disk(&GeoPoint::new(10.0, 10.0), 400.0); // repeat: no new key
        let keys = c.export_keys();
        assert_eq!(keys.len(), c.stats().entries);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "export must be pre-sorted");
        // Two caches serving the same lookups export the same keys.
        let d = cache();
        d.disk(&GeoPoint::new(-5.0, 80.0), 900.0);
        d.disk(&GeoPoint::new(10.0, 10.0), 400.0);
        assert_eq!(keys, d.export_keys());
    }

    #[test]
    fn distinct_centers_get_distinct_entries() {
        let c = cache();
        c.disk(&GeoPoint::new(10.0, 10.0), 400.0);
        c.disk(&GeoPoint::new(10.0, 12.0), 400.0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
    }

    #[test]
    fn prewarm_fills_without_counting_traffic() {
        let c = cache();
        let lm = GeoPoint::new(48.0, 11.0);
        // Two distinct keys, one repeated: two fresh rasterizations.
        let filled = c.prewarm([(lm, 700.0), (lm, 700.0), (lm, 1500.0)]);
        assert_eq!(filled, 2);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 2));
        // A warmed lookup is a hit and shares the warmed rasterization.
        let warmed = c.disk(&lm, 700.0);
        let again = c.disk(&lm, 700.0);
        assert!(Arc::ptr_eq(&warmed, &again));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 0, 2));
        // Prewarming an existing key is a no-op.
        assert_eq!(c.prewarm([(lm, 700.0)]), 0);
    }

    /// The satellite-1 stress test: hammer one shared cache from many
    /// threads over a workload with heavy key overlap, and require the
    /// counters to be *exact* — `misses == entries`, `hits + misses ==`
    /// the number of lookups — and identical for every thread count.
    #[test]
    fn concurrent_stats_are_exact_and_thread_count_invariant() {
        // 6 distinct centres × 4 distinct radius cells = 24 keys, looked
        // up 40× each per run.
        let workload: Vec<(GeoPoint, f64)> = (0..960)
            .map(|i| {
                let centre = GeoPoint::new(10.0 + f64::from(i % 6) * 7.0, 20.0);
                let radius = 300.0 + f64::from((i / 6) % 4) * 400.0;
                (centre, radius)
            })
            .collect();
        let run = |threads: usize| {
            let c = Arc::new(cache());
            let chunk = workload.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for part in workload.chunks(chunk) {
                    let c = Arc::clone(&c);
                    scope.spawn(move || {
                        for (centre, radius) in part {
                            std::hint::black_box(c.disk(centre, *radius));
                        }
                    });
                }
            });
            c.stats()
        };
        let serial = run(1);
        assert_eq!(serial.misses as usize, serial.entries, "misses must equal entries");
        assert_eq!(serial.hits + serial.misses, workload.len() as u64);
        assert_eq!((serial.misses, serial.entries), (24, 24));
        for threads in [2, 4, 8, 16] {
            let s = run(threads);
            assert_eq!(serial, s, "cache stats diverged at {threads} threads");
        }
    }
}
