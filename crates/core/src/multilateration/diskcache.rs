//! A shared memo of rasterized landmark disks.
//!
//! The audit evaluates thousands of proxies against the *same* landmark
//! constellation, and several algorithms (CBG's bestline disks, CBG++'s
//! baseline and bestline passes) rebuild disks around the same centres
//! with near-identical radii. A [`DiskCache`] keys rasterized cap
//! [`Region`]s by (landmark position, radius quantized **up** to a whole
//! grid cell) so that every repeat is a clone of an `Arc` instead of a
//! fresh rasterization.
//!
//! Quantizing the radius up preserves soundness: a cached disk is never
//! smaller than the exact disk, so a region built from cached disks can
//! only over-cover — it never excludes the true location. The growth is
//! bounded by one grid cell of radius, below the rasterization slack the
//! constraint engine already applies ([`grid_slack_km`]).
//!
//! The cache is safe to share across worker threads (`Arc<DiskCache>`),
//! and — because a cached value is a pure function of its key — the
//! *contents* reached through it are identical no matter which thread
//! populated an entry first. Only the hit/miss counters depend on
//! scheduling; they are telemetry, deliberately excluded from the
//! deterministic study report that CI byte-diffs.
//!
//! [`grid_slack_km`]: crate::multilateration::constraint::grid_slack_km

use geokit::{GeoGrid, GeoPoint, Region, SphericalCap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Cache key: exact landmark coordinates (bit patterns — landmarks are
/// shared constellation points, so equal positions have equal bits) plus
/// the radius in whole grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DiskKey {
    lat_bits: u64,
    lon_bits: u64,
    radius_cells: u32,
}

/// Running totals of cache traffic. Scheduling-dependent under
/// multi-threaded use (two workers can both miss the same key), so
/// report these as telemetry, never as part of deterministic output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to rasterize.
    pub misses: u64,
    /// Distinct disks currently stored.
    pub entries: usize,
}

impl DiskCacheStats {
    /// Hit fraction in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An `Arc`-shared memo of rasterized landmark disks on one grid.
#[derive(Debug)]
pub struct DiskCache {
    grid: Arc<GeoGrid>,
    /// Kilometres per whole-cell radius step (one equatorial cell
    /// height).
    cell_km: f64,
    map: RwLock<HashMap<DiskKey, Arc<Region>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Wall-clock profiling sink (off by default). Lookup and rasterize
    /// spans land here, nesting under whatever span the calling thread
    /// has open — telemetry only, never deterministic output.
    obs: obs::Recorder,
}

impl DiskCache {
    /// An empty cache of disks rasterized on `grid`.
    pub fn new(grid: Arc<GeoGrid>) -> DiskCache {
        let cell_km = grid.resolution_deg() * 111.32;
        DiskCache {
            grid,
            cell_km,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs: obs::Recorder::off(),
        }
    }

    /// Attach a profiling recorder: subsequent lookups time themselves
    /// as `cache.lookup` / `cache.rasterize` profile spans into it. Call
    /// before sharing the cache across threads.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.obs = rec;
    }

    /// The grid the cached disks live on.
    pub fn grid(&self) -> &Arc<GeoGrid> {
        &self.grid
    }

    /// The radius actually rasterized for a requested radius: quantized
    /// up to the next whole grid cell (minimum one cell).
    pub fn quantized_radius_km(&self, radius_km: f64) -> f64 {
        f64::from(self.radius_cells(radius_km)) * self.cell_km
    }

    fn radius_cells(&self, radius_km: f64) -> u32 {
        ((radius_km / self.cell_km).ceil()).max(1.0) as u32
    }

    /// The rasterized disk of (up to one cell more than) `radius_km`
    /// around `center`, from the memo when possible.
    pub fn disk(&self, center: &GeoPoint, radius_km: f64) -> Arc<Region> {
        self.disk_of_cells(center, self.radius_cells(radius_km))
    }

    /// The disk of (up to one cell *less* than) `radius_km` around
    /// `center`, or `None` when the floor-quantized radius is zero.
    ///
    /// This is the sound quantization for the *inner* cap of an annulus
    /// constraint: shrinking what gets subtracted can only over-cover,
    /// mirroring how [`disk`](DiskCache::disk) grows the outer cap.
    pub fn inner_disk(&self, center: &GeoPoint, radius_km: f64) -> Option<Arc<Region>> {
        let cells = (radius_km / self.cell_km).floor() as u32;
        (cells > 0).then(|| self.disk_of_cells(center, cells))
    }

    fn disk_of_cells(&self, center: &GeoPoint, cells: u32) -> Arc<Region> {
        let _lookup_span = self.obs.profile_span("cache.lookup");
        let key = DiskKey {
            lat_bits: center.lat().to_bits(),
            lon_bits: center.lon().to_bits(),
            radius_cells: cells,
        };
        if let Some(region) = self.map.read().expect("disk cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(region);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let region = {
            let _raster_span = self.obs.profile_span("cache.rasterize");
            let cap = SphericalCap::new(*center, f64::from(cells) * self.cell_km);
            Arc::new(Region::from_cap(&self.grid, &cap))
        };
        let mut map = self.map.write().expect("disk cache poisoned");
        // A racing worker may have inserted meanwhile; both rasterized
        // the same pure function of the key, so either value is fine.
        Arc::clone(map.entry(key).or_insert(region))
    }

    /// Current traffic counters and size.
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().expect("disk cache poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> DiskCache {
        DiskCache::new(GeoGrid::new(2.0))
    }

    #[test]
    fn repeat_lookup_hits() {
        let c = cache();
        let lm = GeoPoint::new(48.0, 11.0);
        let a = c.disk(&lm, 700.0);
        let b = c.disk(&lm, 700.0);
        assert!(Arc::ptr_eq(&a, &b));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn radii_in_the_same_cell_share_an_entry() {
        let c = cache();
        let lm = GeoPoint::new(0.0, 0.0);
        // 2° cells are ~222.64 km: 500 and 600 km both quantize to 3.
        let a = c.disk(&lm, 500.0);
        let b = c.disk(&lm, 600.0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn quantization_never_shrinks_a_disk() {
        let c = cache();
        for r in [1.0, 100.0, 333.3, 1000.0, 5000.0] {
            assert!(c.quantized_radius_km(r) >= r, "radius {r} shrank");
        }
        let lm = GeoPoint::new(30.0, 30.0);
        let exact = Region::from_cap(c.grid(), &SphericalCap::new(lm, 750.0));
        let cached = c.disk(&lm, 750.0);
        assert!(exact.is_subset_of(&cached));
    }

    #[test]
    fn inner_disk_never_grows() {
        let c = cache();
        let lm = GeoPoint::new(-20.0, 100.0);
        // Below one cell: nothing to subtract.
        assert!(c.inner_disk(&lm, 100.0).is_none());
        let exact = Region::from_cap(c.grid(), &SphericalCap::new(lm, 750.0));
        let inner = c.inner_disk(&lm, 750.0).unwrap();
        assert!(inner.is_subset_of(&exact));
        // Outer ceil and inner floor of the same radius share no key
        // only when the radius is not already whole-cell.
        assert!(inner.cell_count() <= c.disk(&lm, 750.0).cell_count());
    }

    #[test]
    fn distinct_centers_get_distinct_entries() {
        let c = cache();
        c.disk(&GeoPoint::new(10.0, 10.0), 400.0);
        c.disk(&GeoPoint::new(10.0, 12.0), 400.0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
    }
}
