//! Multilateration engines: turn per-landmark distance constraints into
//! prediction regions on the global grid.

pub mod bayes;
pub mod constraint;
pub mod diskcache;
pub mod robust;
pub mod subset;

pub use bayes::{bayes_region, BayesOutput};
pub use constraint::{intersect_constraints, intersect_constraints_cached, RingConstraint};
pub use diskcache::{DiskCache, DiskCacheStats};
pub use robust::{
    pairwise_infeasible_flags, robust_max_consistent_subset, PairwiseReport, RobustSubsetResult,
};
pub use subset::{
    max_consistent_subset, max_consistent_subset_cached, max_consistent_subset_profiled,
    SubsetResult,
};
