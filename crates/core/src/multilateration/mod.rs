//! Multilateration engines: turn per-landmark distance constraints into
//! prediction regions on the global grid.

pub mod bayes;
pub mod constraint;
pub mod subset;

pub use bayes::{bayes_region, BayesOutput};
pub use constraint::{intersect_constraints, RingConstraint};
pub use subset::{max_consistent_subset, SubsetResult};
