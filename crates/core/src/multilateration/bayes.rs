//! Spotter's probabilistic multilateration (§3.3).
//!
//! Each landmark contributes a ring-shaped Gaussian likelihood over the
//! Earth's surface (distance ~ N(μ(t), σ(t)²)); the landmarks' rings are
//! combined "using Bayes' Rule" — with a uniform-over-land prior this is
//! a per-cell product of densities. The final prediction region is the
//! smallest credible set: cells accumulated in decreasing probability
//! until the requested mass is covered.

use crate::delay_model::SpotterModel;
use geokit::{GeoPoint, Region};

/// Output of a Bayesian multilateration.
#[derive(Debug)]
pub struct BayesOutput {
    /// The credible region (highest-density cells holding `mass`).
    pub region: Region,
    /// Probability-weighted centroid of the full posterior.
    pub centroid: Option<GeoPoint>,
}

/// Combine landmark observations into a credible region over `mask`.
///
/// `observations` are (landmark, one-way ms) pairs; `mass` is the
/// credible-set probability (the study uses 0.95).
///
/// # Panics
/// Panics if `mass` is not within `(0, 1]`.
pub fn bayes_region(
    observations: &[(GeoPoint, f64)],
    model: &SpotterModel,
    mask: &Region,
    mass: f64,
) -> BayesOutput {
    assert!(mass > 0.0 && mass <= 1.0, "credible mass {mass} out of range");
    let grid = mask.grid();
    let cells: Vec<geokit::CellId> = mask.cells().collect();
    if cells.is_empty() {
        return BayesOutput {
            region: Region::empty(std::sync::Arc::clone(grid)),
            centroid: None,
        };
    }

    // Log-likelihood per cell (uniform prior over the mask). Distances
    // come from the grid's cached cell-centre trig tables (spherical law
    // of cosines) — each landmark's trig is evaluated once, not once per
    // cell, and agrees with the haversine to ~1e-4 km, far below the
    // delay model's ~100 km σ.
    let trig = grid.trig();
    let landmarks: Vec<(geokit::PointTrig, f64)> = observations
        .iter()
        .map(|(lm, t)| (geokit::PointTrig::new(lm), *t))
        .collect();
    // Landmark-outer accumulation: each landmark streams its density
    // over the flat cell vector in one pass, so the per-cell trig table
    // lookups are sequential and the landmark's (PointTrig, t) pair
    // stays in registers. Per cell, the additions still happen in the
    // same order as the cell-outer loop — landmark 0, landmark 1, …,
    // then the area term — so every logp is bit-identical to before.
    let mut logps: Vec<f64> = vec![0.0; cells.len()];
    for &(ref lm, t) in &landmarks {
        for (logp, &cell) in logps.iter_mut().zip(&cells) {
            *logp += model.log_density(t, trig.distance_to_cell_km(lm, cell));
        }
    }
    // Weight by cell area so the posterior is over *area*, not cells.
    for (logp, &cell) in logps.iter_mut().zip(&cells) {
        *logp += grid.cell_area_km2(cell).ln();
    }

    // Normalize via log-sum-exp.
    let max_logp = logps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut probs: Vec<f64> = logps.iter().map(|&lp| (lp - max_logp).exp()).collect();
    let total: f64 = probs.iter().sum();
    for p in &mut probs {
        *p /= total;
    }

    // Probability-weighted centroid.
    let mut acc = [0.0f64; 3];
    for (&cell, &p) in cells.iter().zip(&probs) {
        let v = grid.center(cell).to_unit_vector();
        acc[0] += v[0] * p;
        acc[1] += v[1] * p;
        acc[2] += v[2] * p;
    }
    let centroid = GeoPoint::from_vector(acc);

    // Credible set: cells in decreasing probability until `mass`.
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| probs[b].partial_cmp(&probs[a]).expect("finite probs"));
    let mut region = Region::empty(std::sync::Arc::clone(grid));
    let mut acc_mass = 0.0;
    for idx in order {
        region.insert(cells[idx]);
        acc_mass += probs[idx];
        if acc_mass >= mass {
            break;
        }
    }
    BayesOutput { region, centroid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::CalibrationSet;
    use geokit::GeoGrid;

    /// A clean model: distance ≈ 100·t km with σ ≈ 60 + 2t.
    fn model() -> SpotterModel {
        let mut pts = Vec::new();
        for i in 1..=300 {
            let t = f64::from(i) * 0.5;
            let wiggle = f64::from((i * 13) % 7) - 3.0;
            pts.push(((t * 100.0 + wiggle * (20.0 + t)).max(0.0), t));
        }
        let set = CalibrationSet::from_points(pts);
        SpotterModel::calibrate(&[&set])
    }

    #[test]
    fn posterior_peaks_near_truth() {
        let grid = GeoGrid::new(1.0);
        let mask = Region::full(grid);
        let m = model();
        let truth = GeoPoint::new(48.0, 8.0);
        // Landmarks around the truth, delays = distance / 100 km/ms.
        let landmarks = [
            GeoPoint::new(52.0, 4.0),
            GeoPoint::new(45.0, 12.0),
            GeoPoint::new(50.0, 14.0),
            GeoPoint::new(44.0, 2.0),
        ];
        let obs: Vec<(GeoPoint, f64)> = landmarks
            .iter()
            .map(|lm| (*lm, lm.distance_km(&truth) / 100.0))
            .collect();
        let out = bayes_region(&obs, &m, &mask, 0.95);
        assert!(!out.region.is_empty());
        let c = out.centroid.expect("nonempty posterior");
        assert!(
            c.distance_km(&truth) < 700.0,
            "centroid {c} too far from truth"
        );
        assert!(out.region.contains_point(&truth));
    }

    #[test]
    fn higher_mass_means_bigger_region() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::full(grid);
        let m = model();
        let obs = [(GeoPoint::new(50.0, 10.0), 10.0)];
        let small = bayes_region(&obs, &m, &mask, 0.5);
        let big = bayes_region(&obs, &m, &mask, 0.99);
        assert!(big.region.cell_count() >= small.region.cell_count());
    }

    #[test]
    fn empty_mask_yields_empty_output() {
        let grid = GeoGrid::new(4.0);
        let mask = Region::empty(grid);
        let out = bayes_region(&[(GeoPoint::new(0.0, 0.0), 5.0)], &model(), &mask, 0.9);
        assert!(out.region.is_empty());
        assert!(out.centroid.is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_mass_panics() {
        let grid = GeoGrid::new(4.0);
        let mask = Region::full(grid);
        bayes_region(&[], &model(), &mask, 0.0);
    }

    #[test]
    fn no_observations_spreads_over_mask() {
        // With no evidence the posterior is area-uniform: the 50 %
        // credible set covers roughly half the mask area.
        let grid = GeoGrid::new(4.0);
        let mask = Region::full(grid);
        let out = bayes_region(&[], &model(), &mask, 0.5);
        let frac = out.region.area_km2() / mask.area_km2();
        assert!((0.4..0.6).contains(&frac), "fraction {frac}");
    }
}
