//! Outlier-robust multilateration: the Byzantine half of the subset
//! search.
//!
//! [`max_consistent_subset`](crate::multilateration::max_consistent_subset)
//! already tolerates *underestimating* disks — it keeps the largest
//! agreeing subset. But an **active** adversary (see
//! `netsim::adversary`) does not merely underestimate: it shapes
//! readings so that a large, mutually-consistent, *wrong* subset exists,
//! or deflates a minority of colluding landmarks until their disks
//! cannot contain the truth at all. Two defenses live here, both pure
//! geometry over [`RingConstraint`]s (no RNG, no interior state —
//! deterministic and order-invariant by construction):
//!
//! * **Pairwise speed-of-light consistency**
//!   ([`pairwise_infeasible_flags`]). Honest baseline disks (one-way
//!   time × 200 km/ms) each contain the true location, so every honest
//!   pair overlaps. Two *disjoint* baseline disks —
//!   `d(Li, Lj) > ri + rj` — are physical proof that at least one
//!   landmark's reading is a lie, with zero false positives. The
//!   conflict graph is resolved greedily: the constraint in the most
//!   conflicts is flagged first (ties broken on geometric keys only, so
//!   the flag set is invariant under input permutation), until no
//!   conflicts remain.
//! * **Trimmed subset scoring** ([`robust_max_consistent_subset`]).
//!   Flagged constraints are excluded *before* intersection, the subset
//!   search runs over the survivors, and any surviving constraint that
//!   still disagrees with the winning region is reported as discarded —
//!   named evidence for the verdict layer, not a silent shrink.

use crate::multilateration::subset::{
    constraint_overlaps_region, max_consistent_subset_profiled, SubsetResult,
};
use crate::multilateration::{DiskCache, RingConstraint};
use geokit::Region;

/// The pairwise consistency verdict over one constraint set.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseReport {
    /// Per-constraint flag, aligned with the input: true = this
    /// constraint had to be removed to clear all pairwise conflicts.
    pub flagged: Vec<bool>,
    /// Mutually-infeasible pairs in the *input* set (before any
    /// removal) as index pairs `(i, j)` with `i < j`.
    pub conflicts: Vec<(usize, usize)>,
}

impl PairwiseReport {
    /// Number of flagged constraints.
    pub fn flagged_count(&self) -> usize {
        self.flagged.iter().filter(|&&f| f).count()
    }

    /// True if no pair conflicted at all.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// A geometric sort key: identifies a constraint by what it *is*, not
/// where it sits in the input, so greedy tie-breaks are permutation
/// invariant. Smaller disks sort first — a deflated (colluding) reading
/// produces a *tight* disk, so among equally-conflicted constraints the
/// tightest is the most suspicious.
fn geometric_key(c: &RingConstraint) -> (u64, u64, u64, u64) {
    (
        c.max_km.to_bits(),
        c.min_km.to_bits(),
        c.center.lat().to_bits(),
        c.center.lon().to_bits(),
    )
}

/// Flag constraints whose pairwise geometry is physically impossible.
///
/// Two disk constraints conflict when their centers are farther apart
/// than the sum of their outer radii: no point satisfies both, so if
/// both claim to contain the same target at least one is lying. Honest
/// *baseline* disks never conflict (each contains the truth), which
/// makes this check zero-false-positive on baseline geometry; run it on
/// baseline disks, not calibrated bestline disks, which can honestly
/// underestimate.
///
/// Conflicts are cleared greedily: repeatedly flag the constraint
/// involved in the most remaining conflicts, breaking ties by
/// [`geometric_key`] (never by input index), until the remainder is
/// pairwise consistent. The flagged *set* is therefore invariant under
/// permutation of the input (the property test pins this).
pub fn pairwise_infeasible_flags(constraints: &[RingConstraint]) -> PairwiseReport {
    let n = constraints.len();
    let mut conflicts: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = constraints[i].center.distance_km(&constraints[j].center);
            if d > constraints[i].max_km + constraints[j].max_km {
                conflicts.push((i, j));
            }
        }
    }
    let mut flagged = vec![false; n];
    if conflicts.is_empty() {
        return PairwiseReport { flagged, conflicts };
    }

    let mut degree = vec![0usize; n];
    for &(i, j) in &conflicts {
        degree[i] += 1;
        degree[j] += 1;
    }
    let mut remaining = conflicts.len();
    while remaining > 0 {
        // Highest conflict degree wins; ties go to the geometrically
        // smallest key (tightest disk first). Index order never decides:
        // identical (degree, key) constraints are interchangeable.
        let victim = (0..n)
            .filter(|&i| !flagged[i] && degree[i] > 0)
            .min_by(|&a, &b| {
                degree[b]
                    .cmp(&degree[a])
                    .then_with(|| geometric_key(&constraints[a]).cmp(&geometric_key(&constraints[b])))
            })
            .expect("remaining conflicts imply an unflagged endpoint");
        flagged[victim] = true;
        for &(i, j) in &conflicts {
            if (i == victim && !flagged[j]) || (j == victim && !flagged[i]) {
                degree[i] -= 1;
                degree[j] -= 1;
                remaining -= 1;
            }
        }
        degree[victim] = 0;
    }
    PairwiseReport { flagged, conflicts }
}

/// Result of the trimmed subset search.
#[derive(Debug)]
pub struct RobustSubsetResult {
    /// The winning region (over the unflagged constraints).
    pub region: Region,
    /// Constraints satisfied by the winning region.
    pub satisfied: usize,
    /// Constraints given (including excluded ones).
    pub total: usize,
    /// Constraints excluded up front by the pairwise flags.
    pub excluded: usize,
    /// Original indices of *unflagged* constraints that the subset
    /// search still had to discard (they do not overlap the winning
    /// region) — the "most inconsistent" residue, named for evidence.
    pub discarded: Vec<usize>,
}

impl RobustSubsetResult {
    /// Fraction of the given constraints the final region satisfies.
    pub fn satisfied_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.satisfied as f64 / self.total as f64
        }
    }
}

/// The trimmed max-consistent-subset search: exclude `flagged`
/// constraints, run the subset search over the rest, and name any
/// surviving constraint the search still discarded.
///
/// `flagged` must align with `constraints`
/// (typically [`pairwise_infeasible_flags`]`.flagged`). With no flags
/// this reduces to
/// [`max_consistent_subset_profiled`] exactly — same region, same
/// counts.
pub fn robust_max_consistent_subset(
    constraints: &[RingConstraint],
    flagged: &[bool],
    mask: &Region,
    cache: Option<&DiskCache>,
    rec: Option<&obs::Recorder>,
) -> RobustSubsetResult {
    assert_eq!(constraints.len(), flagged.len(), "flag/constraint mismatch");
    let kept_idx: Vec<usize> = (0..constraints.len()).filter(|&i| !flagged[i]).collect();
    let kept: Vec<RingConstraint> = kept_idx.iter().map(|&i| constraints[i]).collect();
    let SubsetResult {
        region, satisfied, ..
    } = max_consistent_subset_profiled(&kept, mask, cache, rec);
    let discarded: Vec<usize> = kept_idx
        .iter()
        .copied()
        .filter(|&i| !region.is_empty() && !constraint_overlaps_region(&constraints[i], &region))
        .collect();
    RobustSubsetResult {
        region,
        satisfied,
        total: constraints.len(),
        excluded: constraints.len() - kept.len(),
        discarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::{GeoGrid, GeoPoint};

    fn disk(lat: f64, lon: f64, r: f64) -> RingConstraint {
        RingConstraint::disk(GeoPoint::new(lat, lon), r)
    }

    #[test]
    fn honest_disks_are_never_flagged() {
        // All disks around one truth, each containing it: pairwise clean.
        let truth = GeoPoint::new(48.0, 11.0);
        let cs: Vec<RingConstraint> = [(52.0, 4.0), (45.0, 12.0), (55.0, 16.0)]
            .iter()
            .map(|&(lat, lon)| {
                let c = GeoPoint::new(lat, lon);
                disk(lat, lon, c.distance_km(&truth) + 50.0)
            })
            .collect();
        let report = pairwise_infeasible_flags(&cs);
        assert!(report.is_clean());
        assert_eq!(report.flagged_count(), 0);
    }

    #[test]
    fn one_deflated_disk_is_flagged_not_its_honest_peers() {
        let truth = GeoPoint::new(48.0, 11.0);
        let mut cs: Vec<RingConstraint> = [(52.0, 4.0), (45.0, 12.0), (55.0, 16.0)]
            .iter()
            .map(|&(lat, lon)| {
                let c = GeoPoint::new(lat, lon);
                disk(lat, lon, c.distance_km(&truth) + 50.0)
            })
            .collect();
        // A colluder far away whose tiny disk cannot reach any honest one.
        cs.push(disk(-30.0, -60.0, 10.0));
        let report = pairwise_infeasible_flags(&cs);
        assert_eq!(report.flagged, vec![false, false, false, true]);
        assert_eq!(report.conflicts.len(), 3, "colluder conflicts with all 3");
    }

    #[test]
    fn flags_are_permutation_invariant() {
        let truth = GeoPoint::new(48.0, 11.0);
        let mut cs: Vec<RingConstraint> = [(52.0, 4.0), (45.0, 12.0), (55.0, 16.0), (40.0, 2.0)]
            .iter()
            .map(|&(lat, lon)| {
                let c = GeoPoint::new(lat, lon);
                disk(lat, lon, c.distance_km(&truth) + 50.0)
            })
            .collect();
        cs.push(disk(-30.0, -60.0, 10.0));
        cs.push(disk(-35.0, 140.0, 25.0));
        let baseline: Vec<_> = pairwise_infeasible_flags(&cs)
            .flagged
            .iter()
            .zip(&cs)
            .filter(|(f, _)| **f)
            .map(|(_, c)| geometric_key(c))
            .collect();
        // Reverse and a rotation: the flagged geometric set must match.
        for perm in [
            cs.iter().rev().copied().collect::<Vec<_>>(),
            cs[3..].iter().chain(&cs[..3]).copied().collect(),
        ] {
            let mut flagged: Vec<_> = pairwise_infeasible_flags(&perm)
                .flagged
                .iter()
                .zip(&perm)
                .filter(|(f, _)| **f)
                .map(|(_, c)| geometric_key(c))
                .collect();
            let mut want = baseline.clone();
            flagged.sort_unstable();
            want.sort_unstable();
            assert_eq!(flagged, want);
        }
    }

    #[test]
    fn robust_subset_reduces_to_plain_subset_without_flags() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::full(grid);
        let cs = vec![disk(50.0, 8.0, 800.0), disk(48.0, 12.0, 800.0)];
        let flags = vec![false, false];
        let robust = robust_max_consistent_subset(&cs, &flags, &mask, None, None);
        let plain = max_consistent_subset_profiled(&cs, &mask, None, None);
        assert_eq!(robust.satisfied, plain.satisfied);
        assert_eq!(robust.excluded, 0);
        assert!(robust.discarded.is_empty());
        assert_eq!(robust.region.cell_count(), plain.region.cell_count());
    }

    #[test]
    fn excluded_constraints_cannot_drag_the_region() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::full(grid);
        // Two honest disks around Munich; one tight lying disk in the
        // South Atlantic that would otherwise win cells for itself.
        let cs = vec![
            disk(50.0, 8.0, 700.0),
            disk(46.0, 14.0, 700.0),
            disk(-30.0, -20.0, 50.0),
        ];
        let report = pairwise_infeasible_flags(&cs);
        assert!(report.flagged[2]);
        let robust = robust_max_consistent_subset(&cs, &report.flagged, &mask, None, None);
        assert_eq!(robust.excluded, 1);
        assert!(robust.region.contains_point(&GeoPoint::new(48.0, 11.0)));
        assert!(!robust.region.contains_point(&GeoPoint::new(-30.0, -20.0)));
    }

    #[test]
    fn surviving_outlier_is_named_in_discarded() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::full(grid);
        // Two agreeing disks and a distant loner, with pairwise flags
        // deliberately withheld: the subset search must discard the
        // loner itself and *name* it, not silently shrink.
        let cs = vec![
            disk(50.0, 8.0, 700.0),
            disk(46.0, 14.0, 700.0),
            disk(-30.0, -20.0, 300.0),
        ];
        let flags = vec![false, false, false];
        let robust = robust_max_consistent_subset(&cs, &flags, &mask, None, None);
        assert_eq!(robust.satisfied, 2);
        assert_eq!(robust.excluded, 0);
        assert_eq!(robust.discarded, vec![2]);
    }
}
