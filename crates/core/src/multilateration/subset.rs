//! The largest-consistent-subset search of CBG++ (§5.1).
//!
//! When disks underestimate, the full intersection can be empty — the
//! algorithm would predict *nowhere*. CBG++ instead finds "the largest
//! subset of all the … disks whose intersection is nonempty". The paper
//! implements this by depth-first search over the powerset; we use an
//! exact cell-wise formulation that is both simpler and faster on a grid:
//!
//! > A subset S of constraints has nonempty intersection iff some mask
//! > cell satisfies every constraint in S; hence the maximum-cardinality
//! > consistent subsets are exactly the constraint-sets of the cells that
//! > satisfy the most constraints, and the union of those subsets'
//! > intersections is the set of cells achieving that maximum count.
//!
//! The fast path (everything consistent) avoids the counting sweep
//! entirely.

use crate::multilateration::constraint::{intersect_constraints, RingConstraint};
use geokit::Region;

/// Result of the subset search.
#[derive(Debug)]
pub struct SubsetResult {
    /// Cells consistent with a maximum-cardinality subset of constraints.
    pub region: Region,
    /// Size of the maximum consistent subset.
    pub satisfied: usize,
    /// Total number of constraints given.
    pub total: usize,
}

/// Find the maximal consistent subset region over `mask`.
///
/// With no constraints, the whole mask is trivially consistent.
pub fn max_consistent_subset(constraints: &[RingConstraint], mask: &Region) -> SubsetResult {
    let total = constraints.len();
    if total == 0 {
        return SubsetResult {
            region: mask.clone(),
            satisfied: 0,
            total,
        };
    }

    // Fast path: all constraints already agree somewhere.
    let all = intersect_constraints(constraints, mask);
    if !all.is_empty() {
        return SubsetResult {
            region: all,
            satisfied: total,
            total,
        };
    }

    // Counting sweep: for every mask cell, how many constraints hold?
    let grid = mask.grid();
    let mut best_count = 0usize;
    let mut best_cells: Vec<geokit::CellId> = Vec::new();
    for cell in mask.cells() {
        let p = grid.center(cell);
        let mut count = 0usize;
        for c in constraints {
            if c.contains(&p) {
                count += 1;
                // Early exit: can't do better than "all", and all was
                // empty, so the max is < total; no pruning beyond that
                // is sound because counts vary per cell.
            }
        }
        use std::cmp::Ordering;
        match count.cmp(&best_count) {
            Ordering::Greater => {
                best_count = count;
                best_cells.clear();
                best_cells.push(cell);
            }
            Ordering::Equal if count > 0 => best_cells.push(cell),
            _ => {}
        }
    }
    let mut region = Region::empty(std::sync::Arc::clone(grid));
    for cell in best_cells {
        region.insert(cell);
    }
    SubsetResult {
        region,
        satisfied: best_count,
        total,
    }
}

/// True if the constraint is consistent with (overlaps) a region: some
/// region cell lies inside the constraint. Used by CBG++ to discard
/// bestline disks that contradict the baseline region (§5.1).
pub fn constraint_overlaps_region(constraint: &RingConstraint, region: &Region) -> bool {
    let grid = region.grid();
    region
        .cells()
        .any(|cell| constraint.contains(&grid.center(cell)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::{GeoGrid, GeoPoint};

    fn mask() -> Region {
        Region::full(GeoGrid::new(1.0))
    }

    #[test]
    fn consistent_set_takes_fast_path() {
        let m = mask();
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 1000.0),
            RingConstraint::disk(GeoPoint::new(50.0, 10.0), 1000.0),
        ];
        let r = max_consistent_subset(&cs, &m);
        assert_eq!(r.satisfied, 2);
        assert!(!r.region.is_empty());
    }

    #[test]
    fn one_bad_disk_is_dropped() {
        let m = mask();
        // Two agreeing disks in Europe, one contradicting disk in the
        // Pacific: the max subset is the European pair.
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 800.0),
            RingConstraint::disk(GeoPoint::new(50.0, 10.0), 800.0),
            RingConstraint::disk(GeoPoint::new(-20.0, -150.0), 500.0),
        ];
        let r = max_consistent_subset(&cs, &m);
        assert_eq!(r.satisfied, 2);
        assert!(r.region.contains_point(&GeoPoint::new(50.0, 7.5)));
        assert!(!r.region.contains_point(&GeoPoint::new(-20.0, -150.0)));
    }

    #[test]
    fn tie_between_subsets_unions_their_intersections() {
        let m = mask();
        // Two disjoint agreeing pairs: both are maximal (size 2), so the
        // result covers both intersection areas.
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 700.0),
            RingConstraint::disk(GeoPoint::new(50.0, 9.0), 700.0),
            RingConstraint::disk(GeoPoint::new(-30.0, 140.0), 700.0),
            RingConstraint::disk(GeoPoint::new(-30.0, 144.0), 700.0),
        ];
        let r = max_consistent_subset(&cs, &m);
        assert_eq!(r.satisfied, 2);
        assert!(r.region.contains_point(&GeoPoint::new(50.0, 7.0)));
        assert!(r.region.contains_point(&GeoPoint::new(-30.0, 142.0)));
    }

    #[test]
    fn empty_constraints_return_mask() {
        let m = mask();
        let r = max_consistent_subset(&[], &m);
        assert_eq!(r.satisfied, 0);
        assert_eq!(r.region.cell_count(), m.cell_count());
    }

    #[test]
    fn overlap_test() {
        let grid = GeoGrid::new(1.0);
        let region = Region::from_cap(
            &grid,
            &geokit::SphericalCap::new(GeoPoint::new(50.0, 5.0), 300.0),
        );
        let near = RingConstraint::disk(GeoPoint::new(50.0, 6.0), 300.0);
        let far = RingConstraint::disk(GeoPoint::new(0.0, 100.0), 300.0);
        assert!(constraint_overlaps_region(&near, &region));
        assert!(!constraint_overlaps_region(&far, &region));
    }

    #[test]
    fn counting_respects_mask() {
        let grid = GeoGrid::new(2.0);
        // Mask excludes Europe entirely; two European disks conflict with
        // one Australian disk — but the Europe cells are unavailable, so
        // the best masked cell satisfies only the Australian disk.
        let mask = Region::from_predicate(&grid, |p| p.lat() < 0.0);
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 500.0),
            RingConstraint::disk(GeoPoint::new(50.0, 8.0), 500.0),
            RingConstraint::disk(GeoPoint::new(-25.0, 135.0), 500.0),
        ];
        let r = max_consistent_subset(&cs, &mask);
        assert_eq!(r.satisfied, 1);
        assert!(r.region.contains_point(&GeoPoint::new(-25.0, 135.0)));
    }
}
