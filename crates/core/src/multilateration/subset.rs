//! The largest-consistent-subset search of CBG++ (§5.1).
//!
//! When disks underestimate, the full intersection can be empty — the
//! algorithm would predict *nowhere*. CBG++ instead finds "the largest
//! subset of all the … disks whose intersection is nonempty". The paper
//! implements this by depth-first search over the powerset; we use an
//! exact cell-wise formulation that is both simpler and faster on a grid:
//!
//! > A subset S of constraints has nonempty intersection iff some mask
//! > cell satisfies every constraint in S; hence the maximum-cardinality
//! > consistent subsets are exactly the constraint-sets of the cells that
//! > satisfy the most constraints, and the union of those subsets'
//! > intersections is the set of cells achieving that maximum count.
//!
//! The fast path (everything consistent) avoids the counting sweep
//! entirely.

use crate::multilateration::constraint::{intersect_constraints, ConstraintRaster, RingConstraint};
use geokit::Region;

/// Result of the subset search.
#[derive(Debug)]
pub struct SubsetResult {
    /// Cells consistent with a maximum-cardinality subset of constraints.
    pub region: Region,
    /// Size of the maximum consistent subset.
    pub satisfied: usize,
    /// Total number of constraints given.
    pub total: usize,
}

/// Find the maximal consistent subset region over `mask`.
///
/// With no constraints, the whole mask is trivially consistent.
pub fn max_consistent_subset(constraints: &[RingConstraint], mask: &Region) -> SubsetResult {
    max_consistent_subset_profiled(constraints, mask, None, None)
}

/// [`max_consistent_subset`] with the fast path drawing disks from a
/// shared [`DiskCache`](crate::multilateration::DiskCache). The
/// counting sweep (reached only when the full set is inconsistent) stays
/// exact and run-based — it never materializes per-disk regions, so
/// there is nothing for it to reuse.
pub fn max_consistent_subset_cached(
    constraints: &[RingConstraint],
    mask: &Region,
    cache: &crate::multilateration::DiskCache,
) -> SubsetResult {
    max_consistent_subset_profiled(constraints, mask, Some(cache), None)
}

/// The fully-parameterized subset search: optional shared disk cache for
/// the fast-path intersection, optional recorder for wall-clock profile
/// spans (`subset.intersect` around the full-set intersection,
/// `subset.counting_sweep` around the inconsistent-set sweep). Both
/// `None`s reduce to [`max_consistent_subset`] exactly.
pub fn max_consistent_subset_profiled(
    constraints: &[RingConstraint],
    mask: &Region,
    cache: Option<&crate::multilateration::DiskCache>,
    rec: Option<&obs::Recorder>,
) -> SubsetResult {
    let total = constraints.len();
    if total == 0 {
        return SubsetResult {
            region: mask.clone(),
            satisfied: 0,
            total,
        };
    }

    // Fast path: all constraints already agree somewhere.
    let all = {
        let _span = rec.map(|r| r.profile_span("subset.intersect"));
        match cache {
            Some(cache) => crate::multilateration::constraint::intersect_constraints_cached(
                constraints,
                mask,
                cache,
            ),
            None => intersect_constraints(constraints, mask),
        }
    };
    if !all.is_empty() {
        return SubsetResult {
            region: all,
            satisfied: total,
            total,
        };
    }
    let _span = rec.map(|r| r.profile_span("subset.counting_sweep"));
    counting_sweep(constraints, mask)
}

/// The inconsistent-set path: find the cells satisfying the most
/// constraints.
fn counting_sweep(constraints: &[RingConstraint], mask: &Region) -> SubsetResult {
    let total = constraints.len();
    // Counting sweep: for every mask cell, how many constraints hold?
    // Instead of testing every (cell, constraint) pair by distance, each
    // constraint rasterizes once into per-row column runs and bumps a
    // flat per-cell counter over its runs — the sweep is memory adds,
    // with one `acos` per constraint per touched row as the only trig.
    let grid = mask.grid();
    let cols = grid.cols();
    let mut counts = vec![0u32; grid.num_cells() as usize];
    for c in constraints {
        let raster = ConstraintRaster::new(grid, c);
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for row in raster.rows() {
            raster.row_runs_into(row, &mut runs);
            let base = (row * cols) as usize;
            for &(lo, hi) in &runs {
                for v in &mut counts[base + lo as usize..base + hi as usize] {
                    *v += 1;
                }
            }
        }
    }
    // Max-scan and region build walk the mask's word-runs instead of
    // decoding cell ids one bit at a time: each run is a contiguous
    // `counts` slice, so both passes are straight-line slice sweeps with
    // no per-cell branch on membership. Pure integer comparisons — the
    // result is identical to the per-cell loop in any iteration order.
    let mut best_count = 0u32;
    for run in mask.runs() {
        for &c in &counts[run.start as usize..run.end as usize] {
            best_count = best_count.max(c);
        }
    }
    let mut region = Region::empty(std::sync::Arc::clone(grid));
    if best_count > 0 {
        for run in mask.runs() {
            // Within a run, insert each maximal sub-run of cells whose
            // count equals the winner as one word-masked splice.
            let base = run.start as usize;
            let slice = &counts[base..run.end as usize];
            let mut i = 0;
            while i < slice.len() {
                if slice[i] == best_count {
                    let mut j = i + 1;
                    while j < slice.len() && slice[j] == best_count {
                        j += 1;
                    }
                    region.insert_id_run((base + i) as u32..(base + j) as u32);
                    i = j;
                } else {
                    i += 1;
                }
            }
        }
    }
    SubsetResult {
        region,
        satisfied: best_count as usize,
        total,
    }
}

/// True if the constraint is consistent with (overlaps) a region: some
/// region cell lies inside the constraint. Used by CBG++ to discard
/// bestline disks that contradict the baseline region (§5.1).
///
/// Evaluated as a run/bitset intersection test per touched row — no
/// per-cell distances.
pub fn constraint_overlaps_region(constraint: &RingConstraint, region: &Region) -> bool {
    let grid = region.grid();
    let raster = ConstraintRaster::new(grid, constraint);
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for row in raster.rows() {
        raster.row_runs_into(row, &mut runs);
        if runs
            .iter()
            .any(|&(lo, hi)| region.intersects_run(row, lo..hi))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::{GeoGrid, GeoPoint};

    fn mask() -> Region {
        Region::full(GeoGrid::new(1.0))
    }

    #[test]
    fn consistent_set_takes_fast_path() {
        let m = mask();
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 1000.0),
            RingConstraint::disk(GeoPoint::new(50.0, 10.0), 1000.0),
        ];
        let r = max_consistent_subset(&cs, &m);
        assert_eq!(r.satisfied, 2);
        assert!(!r.region.is_empty());
    }

    #[test]
    fn one_bad_disk_is_dropped() {
        let m = mask();
        // Two agreeing disks in Europe, one contradicting disk in the
        // Pacific: the max subset is the European pair.
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 800.0),
            RingConstraint::disk(GeoPoint::new(50.0, 10.0), 800.0),
            RingConstraint::disk(GeoPoint::new(-20.0, -150.0), 500.0),
        ];
        let r = max_consistent_subset(&cs, &m);
        assert_eq!(r.satisfied, 2);
        assert!(r.region.contains_point(&GeoPoint::new(50.0, 7.5)));
        assert!(!r.region.contains_point(&GeoPoint::new(-20.0, -150.0)));
    }

    #[test]
    fn tie_between_subsets_unions_their_intersections() {
        let m = mask();
        // Two disjoint agreeing pairs: both are maximal (size 2), so the
        // result covers both intersection areas.
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 700.0),
            RingConstraint::disk(GeoPoint::new(50.0, 9.0), 700.0),
            RingConstraint::disk(GeoPoint::new(-30.0, 140.0), 700.0),
            RingConstraint::disk(GeoPoint::new(-30.0, 144.0), 700.0),
        ];
        let r = max_consistent_subset(&cs, &m);
        assert_eq!(r.satisfied, 2);
        assert!(r.region.contains_point(&GeoPoint::new(50.0, 7.0)));
        assert!(r.region.contains_point(&GeoPoint::new(-30.0, 142.0)));
    }

    #[test]
    fn empty_constraints_return_mask() {
        let m = mask();
        let r = max_consistent_subset(&[], &m);
        assert_eq!(r.satisfied, 0);
        assert_eq!(r.region.cell_count(), m.cell_count());
    }

    #[test]
    fn overlap_test() {
        let grid = GeoGrid::new(1.0);
        let region = Region::from_cap(
            &grid,
            &geokit::SphericalCap::new(GeoPoint::new(50.0, 5.0), 300.0),
        );
        let near = RingConstraint::disk(GeoPoint::new(50.0, 6.0), 300.0);
        let far = RingConstraint::disk(GeoPoint::new(0.0, 100.0), 300.0);
        assert!(constraint_overlaps_region(&near, &region));
        assert!(!constraint_overlaps_region(&far, &region));
    }

    #[test]
    fn counting_respects_mask() {
        let grid = GeoGrid::new(2.0);
        // Mask excludes Europe entirely; two European disks conflict with
        // one Australian disk — but the Europe cells are unavailable, so
        // the best masked cell satisfies only the Australian disk.
        let mask = Region::from_predicate(&grid, |p| p.lat() < 0.0);
        let cs = [
            RingConstraint::disk(GeoPoint::new(50.0, 5.0), 500.0),
            RingConstraint::disk(GeoPoint::new(50.0, 8.0), 500.0),
            RingConstraint::disk(GeoPoint::new(-25.0, 135.0), 500.0),
        ];
        let r = max_consistent_subset(&cs, &mask);
        assert_eq!(r.satisfied, 1);
        assert!(r.region.contains_point(&GeoPoint::new(-25.0, 135.0)));
    }
}
