//! Ring/disk constraints and their intersection.
//!
//! A constraint says "the target is between `min_km` and `max_km` from
//! this landmark" (a disk when `min_km` is zero — CBG's case — or an
//! annulus — Octant's). The intersection engine exploits the structure of
//! the problem: the *smallest* disk confines the search, so it is
//! rasterized once and every other constraint is evaluated as a
//! point-in-ring test on the survivors. Most constraints are wildly
//! slack ("ineffective", §5.2), so this is orders of magnitude cheaper
//! than rasterizing every disk.

use geokit::{CapRaster, GeoGrid, GeoPoint, Region, SphericalCap};

/// One per-landmark distance constraint.
#[derive(Debug, Clone, Copy)]
pub struct RingConstraint {
    /// The landmark.
    pub center: GeoPoint,
    /// Minimum distance, km (0 for a plain disk).
    pub min_km: f64,
    /// Maximum distance, km.
    pub max_km: f64,
}

impl RingConstraint {
    /// A plain disk constraint.
    pub fn disk(center: GeoPoint, max_km: f64) -> RingConstraint {
        RingConstraint {
            center,
            min_km: 0.0,
            max_km,
        }
    }

    /// A ring constraint.
    ///
    /// # Panics
    /// Panics if `min_km > max_km` or either is not finite.
    pub fn ring(center: GeoPoint, min_km: f64, max_km: f64) -> RingConstraint {
        assert!(
            min_km.is_finite() && max_km.is_finite() && min_km >= 0.0 && min_km <= max_km,
            "bad ring bounds [{min_km}, {max_km}]"
        );
        RingConstraint {
            center,
            min_km,
            max_km,
        }
    }

    /// Point-in-constraint test.
    #[inline]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let d = self.center.distance_km(p);
        d >= self.min_km && d <= self.max_km
    }

    /// Inflate the constraint by `slack_km` on both sides (outer radius
    /// grows, inner radius shrinks, floored at zero).
    ///
    /// Used for coverage-preserving rasterization: a region is the set of
    /// *cell centres* satisfying every constraint, and a cell centre can
    /// be up to half a cell diagonal away from the true location, so any
    /// sound grid evaluation must widen constraints by that much (see
    /// [`grid_slack_km`]). Without this, a constraint tighter than one
    /// cell silently excludes the very cell the target sits in.
    pub fn inflated(&self, slack_km: f64) -> RingConstraint {
        assert!(slack_km >= 0.0, "negative slack {slack_km}");
        RingConstraint {
            center: self.center,
            min_km: (self.min_km - slack_km).max(0.0),
            max_km: self.max_km + slack_km,
        }
    }
}

/// The rasterization slack for a grid: slightly more than half the
/// diagonal of an equatorial cell (cells shrink towards the poles, so
/// this is conservative everywhere).
pub fn grid_slack_km(grid: &geokit::GeoGrid) -> f64 {
    0.75 * grid.resolution_deg() * 111.32
}

/// The per-row allowed column runs of one constraint: the outer cap's
/// runs minus (for annuli) the inner cap's. Cells whose centre is at
/// exactly `min_km` from an annulus centre fall to the inner cap and are
/// excluded — a measure-zero boundary convention shared with
/// [`Region::from_ring`].
pub(crate) struct ConstraintRaster<'g> {
    outer: CapRaster<'g>,
    inner: Option<CapRaster<'g>>,
}

impl<'g> ConstraintRaster<'g> {
    pub(crate) fn new(grid: &'g GeoGrid, c: &RingConstraint) -> ConstraintRaster<'g> {
        ConstraintRaster {
            outer: CapRaster::new(grid, &SphericalCap::new(c.center, c.max_km)),
            inner: (c.min_km > 0.0)
                .then(|| CapRaster::new(grid, &SphericalCap::new(c.center, c.min_km))),
        }
    }

    /// The rows the outer cap touches.
    pub(crate) fn rows(&self) -> std::ops::Range<u32> {
        self.outer.rows()
    }

    /// Replace `out` with `row`'s allowed half-open column runs, sorted
    /// and disjoint. Disk constraints (no inner cap, the common case)
    /// allocate nothing here.
    pub(crate) fn row_runs_into(&self, row: u32, out: &mut Vec<(u32, u32)>) {
        out.clear();
        self.outer.row_runs(row, |lo, hi| out.push((lo, hi)));
        if out.is_empty() {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut inn = [(0u32, 0u32); 2];
            let mut n = 0usize;
            inner.row_runs(row, |lo, hi| {
                inn[n] = (lo, hi);
                n += 1;
            });
            if n > 0 {
                subtract_sorted(out, &inn[..n]);
            }
        }
    }
}

/// `a -= b` for sorted disjoint half-open run lists.
fn subtract_sorted(a: &mut Vec<(u32, u32)>, b: &[(u32, u32)]) {
    let mut out = Vec::with_capacity(a.len() + b.len());
    for &(alo, ahi) in a.iter() {
        let mut lo = alo;
        for &(blo, bhi) in b {
            if bhi <= lo || blo >= ahi {
                continue;
            }
            if blo > lo {
                out.push((lo, blo));
            }
            lo = lo.max(bhi);
            if lo >= ahi {
                break;
            }
        }
        if lo < ahi {
            out.push((lo, ahi));
        }
    }
    *a = out;
}

/// `out = a ∩ b` for sorted disjoint half-open run lists.
fn intersect_sorted(a: &[(u32, u32)], b: &[(u32, u32)], out: &mut Vec<(u32, u32)>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Intersect all constraints with each other and the mask. Returns the
/// (possibly empty) region of mask cells satisfying every constraint.
///
/// The intersection runs row-by-row in closed form: each constraint's
/// allowed columns on a latitude row are at most a handful of contiguous
/// runs (one `acos` per cap per row), and run lists intersect by a
/// linear merge — no per-cell distance is ever computed. Surviving runs
/// land in the output region a whole `u64` word at a time.
pub fn intersect_constraints(constraints: &[RingConstraint], mask: &Region) -> Region {
    let grid = mask.grid();
    if constraints.is_empty() {
        return mask.clone();
    }
    // Anchor on the tightest (smallest max radius) constraint: only its
    // latitude band can survive, so only its rows are visited.
    let anchor = constraints
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.max_km
                .partial_cmp(&b.1.max_km)
                .expect("finite radii")
        })
        .map(|(i, _)| i)
        .expect("nonempty constraints");
    let rasters: Vec<ConstraintRaster<'_>> = constraints
        .iter()
        .map(|c| ConstraintRaster::new(grid, c))
        .collect();

    let mut out = Region::empty(std::sync::Arc::clone(grid));
    let mut cur: Vec<(u32, u32)> = Vec::new();
    let mut other: Vec<(u32, u32)> = Vec::new();
    let mut next: Vec<(u32, u32)> = Vec::new();
    for row in rasters[anchor].rows() {
        rasters[anchor].row_runs_into(row, &mut cur);
        for (i, raster) in rasters.iter().enumerate() {
            if i == anchor || cur.is_empty() {
                continue;
            }
            raster.row_runs_into(row, &mut other);
            intersect_sorted(&cur, &other, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        for &(lo, hi) in &cur {
            out.insert_run(row, lo..hi);
        }
    }
    out.intersect_with(mask);
    out
}

/// [`intersect_constraints`] drawing its disks from a shared
/// [`DiskCache`](crate::multilateration::DiskCache) instead of
/// rasterizing.
///
/// Radii are quantized by the cache — outer radii **up**, inner radii
/// **down**, each by at most one grid cell — so the result covers the
/// exact intersection (soundness preserved; precision loss bounded by
/// the slack the grid already imposes). Use this on paths that evaluate
/// many constraint sets over a shared constellation (the audit: proxies
/// × landmarks × algorithms); one-off queries should prefer the exact
/// run-based [`intersect_constraints`].
pub fn intersect_constraints_cached(
    constraints: &[RingConstraint],
    mask: &Region,
    cache: &crate::multilateration::DiskCache,
) -> Region {
    if constraints.is_empty() {
        return mask.clone();
    }
    // Tightest disk first so the working set shrinks as fast as
    // possible.
    let mut order: Vec<usize> = (0..constraints.len()).collect();
    order.sort_by(|&a, &b| {
        constraints[a]
            .max_km
            .partial_cmp(&constraints[b].max_km)
            .expect("finite radii")
    });
    let first = &constraints[order[0]];
    let mut out = (*cache.disk(&first.center, first.max_km)).clone();
    if first.min_km > 0.0 {
        if let Some(inner) = cache.inner_disk(&first.center, first.min_km) {
            out.subtract(&inner);
        }
    }
    for &i in &order[1..] {
        if out.is_empty() {
            break;
        }
        let c = &constraints[i];
        out.intersect_with(&cache.disk(&c.center, c.max_km));
        if c.min_km > 0.0 {
            if let Some(inner) = cache.inner_disk(&c.center, c.min_km) {
                out.subtract(&inner);
            }
        }
    }
    out.intersect_with(mask);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::GeoGrid;

    fn full_mask() -> Region {
        Region::full(GeoGrid::new(1.0))
    }

    #[test]
    fn single_disk_matches_cap_rasterization() {
        let mask = full_mask();
        let c = RingConstraint::disk(GeoPoint::new(50.0, 10.0), 1200.0);
        let region = intersect_constraints(&[c], &mask);
        let direct = Region::from_cap(
            mask.grid(),
            &SphericalCap::new(GeoPoint::new(50.0, 10.0), 1200.0),
        );
        assert_eq!(region.cell_count(), direct.cell_count());
    }

    #[test]
    fn belgium_style_intersection() {
        // The paper's Fig. 1: Bourges 500 km, Cromer 500 km, Randers
        // 800 km ⇒ roughly Belgium.
        let mask = full_mask();
        let cs = [
            RingConstraint::disk(GeoPoint::new(47.08, 2.40), 500.0), // Bourges
            RingConstraint::disk(GeoPoint::new(52.93, 1.30), 500.0), // Cromer
            RingConstraint::disk(GeoPoint::new(56.46, 10.04), 800.0), // Randers
        ];
        let region = intersect_constraints(&cs, &mask);
        assert!(!region.is_empty());
        assert!(region.contains_point(&GeoPoint::new(50.85, 4.35))); // Brussels
        assert!(!region.contains_point(&GeoPoint::new(48.86, 2.35))); // Paris: too far from Cromer
        assert!(!region.contains_point(&GeoPoint::new(52.52, 13.40))); // Berlin
    }

    #[test]
    fn ring_excludes_inner_disk() {
        let mask = full_mask();
        let center = GeoPoint::new(0.0, 0.0);
        let c = RingConstraint::ring(center, 1000.0, 2500.0);
        let region = intersect_constraints(&[c], &mask);
        assert!(!region.contains_point(&center));
        assert!(region.contains_point(&center.destination(90.0, 1800.0)));
    }

    #[test]
    fn disjoint_constraints_give_empty_region() {
        let mask = full_mask();
        let cs = [
            RingConstraint::disk(GeoPoint::new(60.0, 0.0), 400.0),
            RingConstraint::disk(GeoPoint::new(-60.0, 180.0), 400.0),
        ];
        assert!(intersect_constraints(&cs, &mask).is_empty());
    }

    #[test]
    fn mask_is_respected() {
        let grid = GeoGrid::new(1.0);
        // Mask = northern hemisphere only.
        let mask = Region::from_predicate(&grid, |p| p.lat() > 0.0);
        let c = RingConstraint::disk(GeoPoint::new(0.0, 0.0), 3000.0);
        let region = intersect_constraints(&[c], &mask);
        assert!(!region.is_empty());
        for cell in region.cells() {
            assert!(grid.center(cell).lat() > 0.0);
        }
    }

    #[test]
    fn no_constraints_returns_mask() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::from_predicate(&grid, |p| p.lat().abs() < 10.0);
        let region = intersect_constraints(&[], &mask);
        assert_eq!(region.cell_count(), mask.cell_count());
    }

    #[test]
    #[should_panic(expected = "bad ring bounds")]
    fn inverted_ring_panics() {
        RingConstraint::ring(GeoPoint::new(0.0, 0.0), 10.0, 5.0);
    }

    #[test]
    fn cached_intersection_covers_the_exact_one() {
        let mask = full_mask();
        let cache = crate::multilateration::DiskCache::new(std::sync::Arc::clone(mask.grid()));
        let cs = [
            RingConstraint::disk(GeoPoint::new(47.08, 2.40), 512.0),
            RingConstraint::disk(GeoPoint::new(52.93, 1.30), 487.0),
            RingConstraint::ring(GeoPoint::new(56.46, 10.04), 150.0, 803.0),
        ];
        let exact = intersect_constraints(&cs, &mask);
        let cached = intersect_constraints_cached(&cs, &mask, &cache);
        assert!(!exact.is_empty());
        assert!(
            exact.is_subset_of(&cached),
            "quantization must only over-cover"
        );
        // Growth is bounded by one grid cell of radius per disk: the
        // cached region sits inside the exact intersection of the
        // constraints inflated by one cell.
        let inflated: Vec<RingConstraint> =
            cs.iter().map(|c| c.inflated(111.33)).collect();
        assert!(cached.is_subset_of(&intersect_constraints(&inflated, &mask)));
        // Second evaluation is served from the memo.
        let before = cache.stats();
        intersect_constraints_cached(&cs, &mask, &cache);
        let after = cache.stats();
        assert_eq!(after.misses, before.misses);
        assert!(after.hits > before.hits);
    }
}
