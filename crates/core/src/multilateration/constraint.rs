//! Ring/disk constraints and their intersection.
//!
//! A constraint says "the target is between `min_km` and `max_km` from
//! this landmark" (a disk when `min_km` is zero — CBG's case — or an
//! annulus — Octant's). The intersection engine exploits the structure of
//! the problem: the *smallest* disk confines the search, so it is
//! rasterized once and every other constraint is evaluated as a
//! point-in-ring test on the survivors. Most constraints are wildly
//! slack ("ineffective", §5.2), so this is orders of magnitude cheaper
//! than rasterizing every disk.

use geokit::{GeoPoint, Region, SphericalCap};

/// One per-landmark distance constraint.
#[derive(Debug, Clone, Copy)]
pub struct RingConstraint {
    /// The landmark.
    pub center: GeoPoint,
    /// Minimum distance, km (0 for a plain disk).
    pub min_km: f64,
    /// Maximum distance, km.
    pub max_km: f64,
}

impl RingConstraint {
    /// A plain disk constraint.
    pub fn disk(center: GeoPoint, max_km: f64) -> RingConstraint {
        RingConstraint {
            center,
            min_km: 0.0,
            max_km,
        }
    }

    /// A ring constraint.
    ///
    /// # Panics
    /// Panics if `min_km > max_km` or either is not finite.
    pub fn ring(center: GeoPoint, min_km: f64, max_km: f64) -> RingConstraint {
        assert!(
            min_km.is_finite() && max_km.is_finite() && min_km >= 0.0 && min_km <= max_km,
            "bad ring bounds [{min_km}, {max_km}]"
        );
        RingConstraint {
            center,
            min_km,
            max_km,
        }
    }

    /// Point-in-constraint test.
    #[inline]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let d = self.center.distance_km(p);
        d >= self.min_km && d <= self.max_km
    }

    /// Inflate the constraint by `slack_km` on both sides (outer radius
    /// grows, inner radius shrinks, floored at zero).
    ///
    /// Used for coverage-preserving rasterization: a region is the set of
    /// *cell centres* satisfying every constraint, and a cell centre can
    /// be up to half a cell diagonal away from the true location, so any
    /// sound grid evaluation must widen constraints by that much (see
    /// [`grid_slack_km`]). Without this, a constraint tighter than one
    /// cell silently excludes the very cell the target sits in.
    pub fn inflated(&self, slack_km: f64) -> RingConstraint {
        assert!(slack_km >= 0.0, "negative slack {slack_km}");
        RingConstraint {
            center: self.center,
            min_km: (self.min_km - slack_km).max(0.0),
            max_km: self.max_km + slack_km,
        }
    }
}

/// The rasterization slack for a grid: slightly more than half the
/// diagonal of an equatorial cell (cells shrink towards the poles, so
/// this is conservative everywhere).
pub fn grid_slack_km(grid: &geokit::GeoGrid) -> f64 {
    0.75 * grid.resolution_deg() * 111.32
}

/// Intersect all constraints with each other and the mask. Returns the
/// (possibly empty) region of mask cells satisfying every constraint.
pub fn intersect_constraints(constraints: &[RingConstraint], mask: &Region) -> Region {
    let grid = mask.grid();
    let mut out = Region::empty(std::sync::Arc::clone(grid));
    if constraints.is_empty() {
        return mask.clone();
    }
    // Anchor on the tightest (smallest max radius) constraint.
    let anchor = constraints
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.max_km
                .partial_cmp(&b.1.max_km)
                .expect("finite radii")
        })
        .map(|(i, _)| i)
        .expect("nonempty constraints");
    let cap = SphericalCap::new(constraints[anchor].center, constraints[anchor].max_km);
    grid.for_each_cell_in_cap(&cap, |cell| {
        if !mask.contains_cell(cell) {
            return;
        }
        let p = grid.center(cell);
        if constraints
            .iter()
            .all(|c| c.contains(&p))
        {
            out.insert(cell);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::GeoGrid;

    fn full_mask() -> Region {
        Region::full(GeoGrid::new(1.0))
    }

    #[test]
    fn single_disk_matches_cap_rasterization() {
        let mask = full_mask();
        let c = RingConstraint::disk(GeoPoint::new(50.0, 10.0), 1200.0);
        let region = intersect_constraints(&[c], &mask);
        let direct = Region::from_cap(
            mask.grid(),
            &SphericalCap::new(GeoPoint::new(50.0, 10.0), 1200.0),
        );
        assert_eq!(region.cell_count(), direct.cell_count());
    }

    #[test]
    fn belgium_style_intersection() {
        // The paper's Fig. 1: Bourges 500 km, Cromer 500 km, Randers
        // 800 km ⇒ roughly Belgium.
        let mask = full_mask();
        let cs = [
            RingConstraint::disk(GeoPoint::new(47.08, 2.40), 500.0), // Bourges
            RingConstraint::disk(GeoPoint::new(52.93, 1.30), 500.0), // Cromer
            RingConstraint::disk(GeoPoint::new(56.46, 10.04), 800.0), // Randers
        ];
        let region = intersect_constraints(&cs, &mask);
        assert!(!region.is_empty());
        assert!(region.contains_point(&GeoPoint::new(50.85, 4.35))); // Brussels
        assert!(!region.contains_point(&GeoPoint::new(48.86, 2.35))); // Paris: too far from Cromer
        assert!(!region.contains_point(&GeoPoint::new(52.52, 13.40))); // Berlin
    }

    #[test]
    fn ring_excludes_inner_disk() {
        let mask = full_mask();
        let center = GeoPoint::new(0.0, 0.0);
        let c = RingConstraint::ring(center, 1000.0, 2500.0);
        let region = intersect_constraints(&[c], &mask);
        assert!(!region.contains_point(&center));
        assert!(region.contains_point(&center.destination(90.0, 1800.0)));
    }

    #[test]
    fn disjoint_constraints_give_empty_region() {
        let mask = full_mask();
        let cs = [
            RingConstraint::disk(GeoPoint::new(60.0, 0.0), 400.0),
            RingConstraint::disk(GeoPoint::new(-60.0, 180.0), 400.0),
        ];
        assert!(intersect_constraints(&cs, &mask).is_empty());
    }

    #[test]
    fn mask_is_respected() {
        let grid = GeoGrid::new(1.0);
        // Mask = northern hemisphere only.
        let mask = Region::from_predicate(&grid, |p| p.lat() > 0.0);
        let c = RingConstraint::disk(GeoPoint::new(0.0, 0.0), 3000.0);
        let region = intersect_constraints(&[c], &mask);
        assert!(!region.is_empty());
        for cell in region.cells() {
            assert!(grid.center(cell).lat() > 0.0);
        }
    }

    #[test]
    fn no_constraints_returns_mask() {
        let grid = GeoGrid::new(2.0);
        let mask = Region::from_predicate(&grid, |p| p.lat().abs() < 10.0);
        let region = intersect_constraints(&[], &mask);
        assert_eq!(region.cell_count(), mask.cell_count());
    }

    #[test]
    #[should_panic(expected = "bad ring bounds")]
    fn inverted_ring_panics() {
        RingConstraint::ring(GeoPoint::new(0.0, 0.0), 10.0, 5.0);
    }
}
