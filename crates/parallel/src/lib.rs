#![warn(missing_docs)]

//! # parallel
//!
//! A tiny scoped worker pool for embarrassingly parallel, deterministic
//! fan-out: [`map_indexed`] runs one closure per input item across a
//! fixed number of OS threads and returns the outputs **in input
//! order**, regardless of which thread finished which item first.
//!
//! The pool exists so the audit pipeline can parallelize across proxies
//! without giving up the workspace's reproducibility contract: as long
//! as each item's computation is a pure function of the item (every
//! proxy derives its own RNG stream from its own seed), the output
//! vector is byte-identical for any thread count, including 1.
//!
//! Like everything else in this workspace, the crate has zero external
//! dependencies — it is `std::thread::scope` plus an atomic work
//! counter. Items are claimed one at a time from a shared cursor
//! (dynamic scheduling), so a slow item does not stall a whole
//! pre-assigned chunk. The claim itself is lock-free: the cursor's
//! `fetch_add` hands each index to exactly one worker, which is the
//! entire mutual-exclusion argument — no per-item lock is needed to
//! take the input or to write the output slot.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The environment variable that pins the worker count for every
/// consumer of [`configured_threads`] (the CI determinism gate runs the
/// audit under `PV_THREADS=1`, `8`, and `16` and diffs the output).
pub const THREADS_ENV: &str = "PV_THREADS";

/// The worker count to use when the caller expresses no preference:
/// `PV_THREADS` if set to a positive integer, otherwise the machine's
/// available parallelism, otherwise 1.
///
/// A `PV_THREADS` value that is present but not a positive integer
/// (unparsable, or `0`) is **rejected with a one-line stderr warning**
/// naming the value, then ignored — a misconfigured CI job should be
/// visible, not silently fall back.
pub fn configured_threads() -> usize {
    let setting = std::env::var(THREADS_ENV).ok();
    match resolve_thread_setting(setting.as_deref()) {
        Ok(Some(n)) => return n,
        Ok(None) => {}
        Err(warning) => eprintln!("{warning}"),
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve an explicit `PV_THREADS` setting: `Ok(Some(n))` for a
/// positive integer, `Ok(None)` when the variable is unset, and
/// `Err(warning)` — the exact stderr line to emit — when the variable
/// is set to something unusable.
fn resolve_thread_setting(value: Option<&str>) -> Result<Option<usize>, String> {
    resolve_positive_setting(THREADS_ENV, value, "available parallelism")
}

/// The environment variable that pins the audit master's shard count
/// (the CI determinism gate crosses `PV_SHARDS` ∈ {1, 2, 5} with
/// `PV_THREADS` ∈ {1, 8} and diffs the output).
pub const SHARDS_ENV: &str = "PV_SHARDS";

/// The shard count to use when the caller expresses no preference:
/// `PV_SHARDS` if set to a positive integer, otherwise **1** (the
/// monolithic run). Unlike [`configured_threads`], the default is not
/// machine-dependent — sharding is an explicit opt-in, and the
/// determinism contract makes any value produce the same bytes anyway.
///
/// A present-but-unusable value is rejected with a one-line stderr
/// warning naming the value, mirroring the `PV_THREADS` policy.
pub fn configured_shards() -> usize {
    let setting = std::env::var(SHARDS_ENV).ok();
    match resolve_shard_setting(setting.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => 1,
        Err(warning) => {
            eprintln!("{warning}");
            1
        }
    }
}

/// Resolve an explicit `PV_SHARDS` setting; same contract as
/// [`resolve_thread_setting`] with a different fallback description.
fn resolve_shard_setting(value: Option<&str>) -> Result<Option<usize>, String> {
    resolve_positive_setting(SHARDS_ENV, value, "1 shard")
}

fn resolve_positive_setting(
    var: &str,
    value: Option<&str>,
    fallback: &str,
) -> Result<Option<usize>, String> {
    let Some(v) = value else {
        return Ok(None);
    };
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!(
            "warning: ignoring {var}={v:?} (not a positive integer); \
             falling back to {fallback}"
        )),
    }
}

/// An input slot the claiming worker takes from without a lock.
///
/// Safety contract: `take` may be called at most once per slot, by the
/// single worker that claimed the slot's index from the atomic cursor.
struct TakeCell<T>(UnsafeCell<Option<T>>);

// One slot is only ever touched by the one worker that claimed its
// index; the cursor's fetch_add is the exclusion proof.
unsafe impl<T: Send> Sync for TakeCell<T> {}

impl<T> TakeCell<T> {
    fn new(value: T) -> TakeCell<T> {
        TakeCell(UnsafeCell::new(Some(value)))
    }

    /// # Safety
    /// The caller must be the unique claimant of this slot's index.
    unsafe fn take(&self) -> T {
        unsafe { (*self.0.get()).take().expect("item claimed twice") }
    }
}

/// An output slot the claiming worker writes exactly once, read back by
/// the caller after the scope join.
struct SlotCell<U>(UnsafeCell<Option<U>>);

unsafe impl<U: Send> Sync for SlotCell<U> {}

impl<U> SlotCell<U> {
    fn empty() -> SlotCell<U> {
        SlotCell(UnsafeCell::new(None))
    }

    /// # Safety
    /// The caller must be the unique claimant of this slot's index.
    unsafe fn put(&self, value: U) {
        unsafe {
            debug_assert!((*self.0.get()).is_none(), "duplicate result write");
            *self.0.get() = Some(value);
        }
    }

    fn into_inner(self) -> Option<U> {
        self.0.into_inner()
    }
}

/// Map `f` over `items` on `threads` worker threads, preserving input
/// order in the output.
///
/// `f` receives `(index, item)` and writes its result straight into the
/// output slot of the same index, so the returned vector is identical
/// to the serial `items.into_iter().enumerate().map(...)` whenever `f`
/// is a pure function of its arguments. Scheduling is dynamic: workers
/// claim the next unclaimed index from a shared atomic cursor, so load
/// imbalance across items costs at most one item's latency.
///
/// The cursor's `fetch_add` returns each index to exactly one worker,
/// which makes that worker the unique owner of the index's input and
/// output slots — the take and the result write are plain unsynchronized
/// accesses (no per-item mutex), published to the caller by the scope
/// join's happens-before edge.
///
/// With `threads <= 1`, or fewer than two items, everything runs on the
/// calling thread with no pool at all — the 1-thread path *is* the
/// serial path, not a simulation of it.
///
/// # Panics
/// Panics if a worker panics (the panic is propagated, not swallowed).
pub fn map_indexed<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 2 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let workers = threads.min(n);
    let slots: Vec<TakeCell<T>> = items.into_iter().map(TakeCell::new).collect();
    let out: Vec<SlotCell<U>> = (0..n).map(|_| SlotCell::empty()).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let slots = &slots;
            let out = &out;
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the fetch_add handed index `i` to this worker
                // alone, so it is the unique accessor of both slots.
                let item = unsafe { slots[i].take() };
                let result = f(i, item);
                unsafe { out[i].put(result) };
            }));
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });

    out.into_iter()
        .map(|slot| slot.into_inner().expect("missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..97).collect();
            let out = map_indexed(threads, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..97u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        // A per-item "RNG stream": seed derived from the item alone, so
        // the output must not depend on scheduling.
        let run = |threads: usize| {
            map_indexed(threads, (0u64..40).collect(), |_, seed| {
                let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
                for _ in 0..100 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                }
                x
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8, 16] {
            assert_eq!(serial, run(threads));
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(map_indexed(4, none, |_, x: u32| x).is_empty());
        assert_eq!(map_indexed(4, vec![7u32], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = map_indexed(32, vec![1u32, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn unclaimed_items_drop_cleanly() {
        // Non-Copy payloads: every item is either mapped or dropped, and
        // every output arrives — exercises the UnsafeCell slots' Drop
        // path and the take-exactly-once invariant under contention.
        let items: Vec<String> = (0..50).map(|i| format!("payload-{i}")).collect();
        let out = map_indexed(8, items, |_, s| s.len());
        assert_eq!(out.len(), 50);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        map_indexed(2, (0..8u32).collect(), |_, x| {
            if x == 5 {
                panic!("worker boom");
            }
            x
        });
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn thread_setting_accepts_positive_integers() {
        assert_eq!(resolve_thread_setting(Some("1")), Ok(Some(1)));
        assert_eq!(resolve_thread_setting(Some("16")), Ok(Some(16)));
        assert_eq!(resolve_thread_setting(Some(" 8 ")), Ok(Some(8)), "whitespace trims");
        assert_eq!(resolve_thread_setting(None), Ok(None));
    }

    #[test]
    fn rejected_thread_setting_warns_naming_the_value() {
        for bad in ["0", "abc", "-3", "1.5", ""] {
            let err = resolve_thread_setting(Some(bad))
                .expect_err(&format!("{bad:?} should be rejected"));
            assert!(
                err.contains(&format!("{bad:?}")) && err.contains(THREADS_ENV),
                "warning must name the variable and the rejected value: {err}"
            );
            assert_eq!(err.lines().count(), 1, "warning must be one line");
        }
    }

    #[test]
    fn shard_setting_accepts_positive_integers() {
        assert_eq!(resolve_shard_setting(Some("1")), Ok(Some(1)));
        assert_eq!(resolve_shard_setting(Some("5")), Ok(Some(5)));
        assert_eq!(resolve_shard_setting(Some(" 2 ")), Ok(Some(2)), "whitespace trims");
        assert_eq!(resolve_shard_setting(None), Ok(None));
    }

    #[test]
    fn rejected_shard_setting_warns_naming_the_value() {
        for bad in ["0", "many", "-1", "2.5", ""] {
            let err = resolve_shard_setting(Some(bad))
                .expect_err(&format!("{bad:?} should be rejected"));
            assert!(
                err.contains(&format!("{bad:?}")) && err.contains(SHARDS_ENV),
                "warning must name the variable and the rejected value: {err}"
            );
            assert_eq!(err.lines().count(), 1, "warning must be one line");
        }
    }

    #[test]
    fn configured_shards_defaults_to_one() {
        // PV_SHARDS is not set in the test environment; the default must
        // be the monolithic run, never machine parallelism.
        if std::env::var(SHARDS_ENV).is_err() {
            assert_eq!(configured_shards(), 1);
        }
    }
}
