#![warn(missing_docs)]

//! # parallel
//!
//! A tiny scoped worker pool for embarrassingly parallel, deterministic
//! fan-out: [`map_indexed`] runs one closure per input item across a
//! fixed number of OS threads and returns the outputs **in input
//! order**, regardless of which thread finished which item first.
//!
//! The pool exists so the audit pipeline can parallelize across proxies
//! without giving up the workspace's reproducibility contract: as long
//! as each item's computation is a pure function of the item (every
//! proxy derives its own RNG stream from its own seed), the output
//! vector is byte-identical for any thread count, including 1.
//!
//! Like everything else in this workspace, the crate has zero external
//! dependencies — it is `std::thread::scope` plus an atomic work
//! counter. Items are claimed one at a time from a shared cursor
//! (dynamic scheduling), so a slow item does not stall a whole
//! pre-assigned chunk.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable that pins the worker count for every
/// consumer of [`configured_threads`] (the CI determinism gate runs the
/// audit under `PV_THREADS=1` and `PV_THREADS=4` and diffs the output).
pub const THREADS_ENV: &str = "PV_THREADS";

/// The worker count to use when the caller expresses no preference:
/// `PV_THREADS` if set to a positive integer, otherwise the machine's
/// available parallelism, otherwise 1.
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on `threads` worker threads, preserving input
/// order in the output.
///
/// `f` receives `(index, item)` and its results are reassembled by
/// index, so the returned vector is identical to the serial
/// `items.into_iter().enumerate().map(...)` whenever `f` is a pure
/// function of its arguments. Scheduling is dynamic: workers claim the
/// next unclaimed index from a shared atomic cursor, so load imbalance
/// across items costs at most one item's latency.
///
/// With `threads <= 1`, or fewer than two items, everything runs on the
/// calling thread with no pool at all — the 1-thread path *is* the
/// serial path, not a simulation of it.
///
/// # Panics
/// Panics if a worker panics (the panic is propagated, not swallowed).
pub fn map_indexed<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 2 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let workers = threads.min(n);
    // Hand items out through Options so workers can take them by index
    // without consuming the vector in order. Mutex (not UnsafeCell) for
    // an unambiguously safe claim; each slot is locked exactly once.
    let slots: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);

    let mut buffers: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let slots = &slots;
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("item slot poisoned")
                        .take()
                        .expect("item claimed twice");
                    local.push((i, f(i, item)));
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });

    // Reassemble in input order.
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (i, u) in buffers.drain(..).flatten() {
        debug_assert!(out[i].is_none(), "duplicate result for index {i}");
        out[i] = Some(u);
    }
    out.into_iter().map(|o| o.expect("missing result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..97).collect();
            let out = map_indexed(threads, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..97u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        // A per-item "RNG stream": seed derived from the item alone, so
        // the output must not depend on scheduling.
        let run = |threads: usize| {
            map_indexed(threads, (0u64..40).collect(), |_, seed| {
                let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
                for _ in 0..100 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                }
                x
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(serial, run(threads));
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(map_indexed(4, none, |_, x: u32| x).is_empty());
        assert_eq!(map_indexed(4, vec![7u32], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = map_indexed(32, vec![1u32, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        map_indexed(2, (0..8u32).collect(), |_, x| {
            if x == 5 {
                panic!("worker boom");
            }
            x
        });
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
