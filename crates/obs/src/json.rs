//! A minimal, zero-dependency JSON value model, writer, and
//! recursive-descent parser shared by every line-oriented artifact in
//! the workspace (bench artifacts in `bench::artifact`, the on-disk
//! verdict store in `vpnstudy::store`).
//!
//! The workspace is hermetic (no serde), and two crates on *opposite*
//! sides of the dependency graph need the same machinery — `bench`
//! depends on `vpnstudy`, so the store cannot import the bench writer.
//! It lives here instead: `obs` is the one zero-dep crate both already
//! depend on.
//!
//! Scope is deliberately small: flat-ish documents of objects, arrays,
//! strings, and `f64` numbers. Integers above 2^53 do not survive the
//! `f64` number model — callers that need exact 64-bit values (seeds)
//! encode them as strings.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish; integers above 2^53 lose
    /// precision — encode them as strings).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The items, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The entries in document order, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// First value under `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Escape `s` as a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| "invalid utf8 in number")?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid utf8 in string".into());
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("dangling escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogate pairs don't occur in the names this
                        // workspace writes; map lone surrogates to the
                        // replacement character.
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_value_kinds() {
        let v = Json::parse(
            r#"{ "s": "x", "n": 1.5, "b": true, "nil": null, "a": [1, 2] }"#,
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("nil"), Some(&Json::Null));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\there", "back\\slash", "µs", "line\nbreak"] {
            let parsed = Json::parse(&json_str(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }

    #[test]
    fn f64_display_round_trips_through_parse() {
        // The store writes floats with `{}` (shortest round-trip
        // representation); the parser must read back the same bits.
        for v in [0.0, 0.5, 123.456, 1.0e-9, 98765.4321, f64::MIN_POSITIVE] {
            let parsed = Json::parse(&format!("{v}")).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn unicode_escape_decodes() {
        assert_eq!(Json::parse(r#""µs""#).unwrap().as_str(), Some("µs"));
    }
}
