//! Perfetto / Chrome trace-event export.
//!
//! Serializes a [`Recorder`](crate::Recorder)'s hierarchical profile
//! tree and its sim-clock event stream to the catapult trace-event JSON
//! format, so a study run opens directly in [Perfetto]
//! (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! The profiler stores *aggregates* per tree path (count, cumulative
//! ns, self ns), not individual span instants, so the export lays the
//! tree out as a synthetic timeline: every path becomes one complete
//! (`"X"`) event whose duration is its cumulative time, children packed
//! left-to-right inside their parent starting at the parent's start
//! tick. Durations are real; start offsets are layout. Sim-clock
//! [`Event`](crate::Event)s render as instant (`"i"`) events on their
//! own track at their simulated timestamp.
//!
//! [Perfetto]: https://perfetto.dev

use crate::{Event, ProfileStat, Recorder};
use crate::json::json_str;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Export tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Cap on exported sim-clock instants: a paper-scale audit emits
    /// hundreds of thousands of events, and a multi-hundred-MB trace
    /// helps nobody. When the cap bites, a final instant reports how
    /// many events were dropped.
    pub max_instants: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            max_instants: 20_000,
        }
    }
}

const PID: u32 = 1;
const TID_PROFILE: u32 = 1;
const TID_SIM: u32 = 2;

/// Render the recorder's profile tree and event stream as a trace-event
/// JSON document (default [`TraceOptions`]).
pub fn render_trace(rec: &Recorder) -> String {
    render_trace_with(rec, TraceOptions::default())
}

/// Render with explicit [`TraceOptions`].
pub fn render_trace_with(rec: &Recorder, opts: TraceOptions) -> String {
    let mut events: Vec<String> = Vec::new();
    metadata(&mut events);
    profile_events(&rec.profile(), &mut events);
    rec.with_events(|evs| instant_events(evs, opts.max_instants, &mut events));
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn metadata(out: &mut Vec<String>) {
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID_PROFILE},\"name\":\"process_name\",\"args\":{{\"name\":\"proxy-verifier\"}}}}"
    ));
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID_PROFILE},\"name\":\"thread_name\",\"args\":{{\"name\":\"profile (aggregated)\"}}}}"
    ));
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID_SIM},\"name\":\"thread_name\",\"args\":{{\"name\":\"sim clock\"}}}}"
    ));
}

#[derive(Default)]
struct Node {
    stat: Option<ProfileStat>,
    children: BTreeMap<String, Node>,
}

impl Node {
    /// Duration of this node on the synthetic timeline: its own
    /// cumulative time, or the children's sum for prefix-only paths.
    fn dur_ns(&self) -> u128 {
        match self.stat {
            Some(s) => s.cum_ns,
            None => self.children.values().map(Node::dur_ns).sum(),
        }
    }
}

fn profile_events(entries: &[(String, ProfileStat)], out: &mut Vec<String>) {
    let mut root = Node::default();
    for (path, stat) in entries {
        let mut node = &mut root;
        for seg in path.split('/') {
            node = node.children.entry(seg.to_string()).or_default();
        }
        node.stat = Some(*stat);
    }
    fn ordered(node: &Node) -> Vec<(&String, &Node)> {
        let mut kids: Vec<_> = node.children.iter().collect();
        kids.sort_by(|(an, a), (bn, b)| b.dur_ns().cmp(&a.dur_ns()).then(an.cmp(bn)));
        kids
    }
    fn emit(node: &Node, name: &str, start_ns: u128, out: &mut Vec<String>) {
        let dur = node.dur_ns();
        let (count, self_ns) = match node.stat {
            Some(s) => (s.count, s.self_ns),
            None => (0, 0),
        };
        out.push(format!(
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{TID_PROFILE},\"name\":{},\"ts\":{},\"dur\":{},\"args\":{{\"count\":{count},\"self_us\":{}}}}}",
            json_str(name),
            us(start_ns),
            us(dur),
            us(self_ns),
        ));
        let mut cursor = start_ns;
        for (child_name, child) in ordered(node) {
            emit(child, child_name, cursor, out);
            cursor += child.dur_ns();
        }
    }
    let mut cursor = 0u128;
    for (name, node) in ordered(&root) {
        emit(node, name, cursor, out);
        cursor += node.dur_ns();
    }
}

fn instant_events(events: &[Event], cap: usize, out: &mut Vec<String>) {
    for e in events.iter().take(cap) {
        let mut line = format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{TID_SIM},\"s\":\"t\",\"name\":{},\"ts\":{}",
            json_str(&format!("{}.{}", e.target, e.name)),
            us(u128::from(e.t_ns)),
        );
        if !e.fields.is_empty() {
            line.push_str(",\"args\":{");
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{}:", json_str(k));
                let mut buf = String::new();
                v.write_json(&mut buf);
                line.push_str(&buf);
            }
            line.push('}');
        }
        line.push('}');
        out.push(line);
    }
    if events.len() > cap {
        let dropped = events.len() - cap;
        let last_ts = events.last().map(|e| e.t_ns).unwrap_or(0);
        out.push(format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{TID_SIM},\"s\":\"t\",\"name\":\"trace truncated\",\"ts\":{},\"args\":{{\"dropped_events\":{dropped}}}}}",
            us(u128::from(last_ts)),
        ));
    }
}

/// Nanoseconds → trace-event microseconds, 3 decimal places (stable
/// formatting, no float shortest-round-trip wobble).
fn us(ns: u128) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::{Level, Recorder};

    fn trace_events(doc: &str) -> Vec<Json> {
        let parsed = Json::parse(doc.trim_end()).expect("trace must be valid JSON");
        parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array")
            .to_vec()
    }

    #[test]
    fn trace_is_valid_json_with_metadata() {
        let rec = Recorder::new(Level::Events);
        let doc = render_trace(&rec);
        let events = trace_events(&doc);
        // Empty recorder still carries the three metadata records.
        assert_eq!(events.len(), 3);
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("process_name")));
    }

    #[test]
    fn profile_tree_becomes_nested_complete_events() {
        let rec = Recorder::new(Level::Counters);
        {
            let _a = rec.profile_span("audit.run");
            let _b = rec.profile_span("audit.locate");
        }
        let doc = render_trace(&rec);
        let events = trace_events(&doc);
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        let run = complete
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("audit.run"))
            .unwrap();
        let locate = complete
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("audit.locate"))
            .unwrap();
        let ts = |e: &Json| e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = |e: &Json| e.get("dur").and_then(Json::as_f64).unwrap();
        // Child starts at parent start and fits inside it.
        assert_eq!(ts(run), ts(locate));
        assert!(dur(locate) <= dur(run));
        assert!(
            run.get("args").and_then(|a| a.get("count")).and_then(Json::as_f64) == Some(1.0)
        );
    }

    #[test]
    fn sim_events_become_instants_at_sim_time() {
        let rec = Recorder::new(Level::Events);
        rec.event_at(2_500, "net", "probe", vec![("dst", 7u64.into())]);
        let doc = render_trace(&rec);
        let events = trace_events(&doc);
        let instant = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("one instant");
        assert_eq!(instant.get("name").and_then(Json::as_str), Some("net.probe"));
        assert_eq!(instant.get("ts").and_then(Json::as_f64), Some(2.5));
        assert_eq!(
            instant.get("args").and_then(|a| a.get("dst")).and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn instant_cap_truncates_with_a_marker() {
        let rec = Recorder::new(Level::Events);
        for i in 0..10u64 {
            rec.event_at(i, "net", "probe", vec![]);
        }
        let doc = render_trace_with(&rec, TraceOptions { max_instants: 4 });
        let events = trace_events(&doc);
        let instants: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .collect();
        // 4 kept + 1 truncation marker.
        assert_eq!(instants.len(), 5);
        let marker = instants.last().unwrap();
        assert_eq!(
            marker.get("name").and_then(Json::as_str),
            Some("trace truncated")
        );
        assert_eq!(
            marker
                .get("args")
                .and_then(|a| a.get("dropped_events"))
                .and_then(Json::as_f64),
            Some(6.0)
        );
    }

    #[test]
    fn microsecond_formatting_is_stable() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }
}
