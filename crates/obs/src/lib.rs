#![warn(missing_docs)]

//! # obs — deterministic observability for the audit pipeline
//!
//! Every layer of the system — the packet simulator, the reliability
//! scheduler, the two-phase measurement engine, the geolocation
//! algorithms, and the study driver — explains itself through one
//! [`Recorder`] handle instead of per-subsystem counters bolted onto
//! result structs. The design contract is **determinism**: everything a
//! recorder collects on the deterministic side is a pure function of the
//! computation it observed, never of scheduling, so traces and rendered
//! summaries can be byte-diffed across thread counts in CI.
//!
//! Two strictly separated compartments:
//!
//! * **Deterministic** — structured [`Event`]s timestamped on the
//!   *simulation* clock, monotonic counters, and power-of-two
//!   [`Hist`]ograms. These participate in the JSONL trace export
//!   ([`Recorder::events_jsonl`]) and the rendered observability report,
//!   both of which CI byte-diffs across `PV_THREADS` values.
//! * **Wall-clock** — [`Span`] timings (`std::time::Instant`) and
//!   scheduling-dependent tallies ([`Recorder::wall_count`], e.g. a
//!   shared cache's hit/miss split under racing workers). These are
//!   real performance telemetry, rendered in their own section and
//!   **never** included in determinism diffs.
//!
//! ## Fork/merge rule
//!
//! A recorder handle is a shared sink: cloning it gives another handle
//! on the *same* buffers. Parallel work must not interleave event
//! streams nondeterministically, so a worker takes a detached child via
//! [`Recorder::fork`], records into it worker-locally, and the
//! coordinator folds the children back with [`Recorder::absorb`] **in a
//! scheduling-independent order** (the audit merges per-proxy recorders
//! in proxy order). Counters and histograms are commutative merges;
//! events are concatenated in absorb order — which is why absorb order
//! must be deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much the recorder keeps. Levels are cumulative: `Events` implies
/// `Counters`. Wall-clock spans and wall counters are recorded at any
/// level except `Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Record nothing at all.
    Off,
    /// Counters, histograms, and wall-clock telemetry only.
    Counters,
    /// Everything: structured events plus all of the above (the
    /// default).
    #[default]
    Events,
}

/// One structured field value. Strings are `&'static str` by design:
/// event emission sits on measurement hot paths, and every name the
/// pipeline needs (packet kinds, loss causes, algorithm stages) is known
/// at compile time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (formatted by shortest round-trip, so identical
    /// bits render identically).
    F64(f64),
    /// Static string.
    Str(&'static str),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match *self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                let _ = write!(out, "\"{v}\"");
            }
            Value::Str(s) => {
                let _ = write!(out, "\"{s}\"");
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// One structured event on the simulation clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time of the event, nanoseconds.
    pub t_ns: u64,
    /// Subsystem that emitted it (`"netsim"`, `"reliability"`,
    /// `"twophase"`, `"algo"`, `"audit"`, …).
    pub target: &'static str,
    /// Event name within the target.
    pub name: &'static str,
    /// Ordered structured fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Field `key` as a `u64`, if present and unsigned.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(&Value::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// Field `key` as an `f64`, if present and floating.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key) {
            Some(&Value::F64(v)) => Some(v),
            _ => None,
        }
    }

    /// Field `key` as a static string, if present and a string.
    pub fn field_str(&self, key: &str) -> Option<&'static str> {
        match self.field(key) {
            Some(&Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"ev\":\"{}.{}\"",
            self.t_ns, self.target, self.name
        );
        for (k, v) in &self.fields {
            let _ = write!(out, ",\"{k}\":");
            v.write_json(out);
        }
        out.push_str("}\n");
    }
}

/// A power-of-two histogram of `u64` samples: bucket `i` holds values
/// whose bit width is `i` (bucket 0 is the value zero, bucket 1 is 1,
/// bucket 2 is 2–3, bucket 3 is 4–7, …). Coarse, allocation-light, and
/// merges commutatively — exactly what a deterministic cross-thread
/// aggregate needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sparse bucket table: bit width → sample count.
    pub buckets: BTreeMap<u32, u64>,
}

impl Hist {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(64 - v.leading_zeros()).or_insert(0) += 1;
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }

    /// One-line summary: `count  mean  min..max  [bucket histogram]`.
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "n={} mean={:.2} min={} max={}  |",
            self.count,
            self.mean(),
            self.min,
            self.max
        );
        for (&b, &n) in &self.buckets {
            let lo = if b == 0 { 0u64 } else { 1u64 << (b - 1) };
            let _ = write!(out, " {lo}:{n}");
        }
        out
    }
}

/// Accumulated wall-clock timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallStat {
    /// Completed spans.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u128,
}

impl WallStat {
    /// Mean span duration, milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e6
        }
    }
}

#[derive(Debug, Default)]
struct Buffers {
    now_ns: u64,
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    wall_spans: BTreeMap<&'static str, WallStat>,
    wall_counters: BTreeMap<&'static str, u64>,
}

/// The shared observability sink.
///
/// Cloning a `Recorder` yields another handle on the same buffers;
/// [`fork`](Recorder::fork) yields a detached child for worker-local
/// recording (see the module docs for the fork/merge rule). All methods
/// take `&self`; the recorder is `Send + Sync`.
#[derive(Debug, Clone)]
pub struct Recorder {
    level: Level,
    inner: Arc<Mutex<Buffers>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(Level::default())
    }
}

impl Recorder {
    /// A fresh recorder at `level`.
    pub fn new(level: Level) -> Recorder {
        Recorder {
            level,
            inner: Arc::new(Mutex::new(Buffers::default())),
        }
    }

    /// A recorder that keeps nothing (every emission is a level check
    /// and an immediate return).
    pub fn off() -> Recorder {
        Recorder::new(Level::Off)
    }

    /// The recording level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// True when structured events are kept.
    pub fn events_enabled(&self) -> bool {
        self.level >= Level::Events
    }

    /// True when counters and histograms are kept.
    pub fn counters_enabled(&self) -> bool {
        self.level >= Level::Counters
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Buffers> {
        self.inner.lock().expect("recorder poisoned")
    }

    /// A detached child at the same level, inheriting the current sim
    /// clock. Recorded into worker-locally, then folded back with
    /// [`absorb`](Recorder::absorb).
    pub fn fork(&self) -> Recorder {
        let child = Recorder::new(self.level);
        child.lock().now_ns = self.lock().now_ns;
        child
    }

    /// Fold a forked child's buffers into this recorder: events are
    /// appended in the child's order, counters and histograms merge
    /// additively, wall telemetry sums. Call in a deterministic order
    /// (the caller's item order, never completion order) to keep the
    /// merged event stream scheduling-independent.
    pub fn absorb(&self, child: &Recorder) {
        if self.level == Level::Off {
            return;
        }
        // Take the child's buffers out first so the two locks are never
        // held at once.
        let taken = std::mem::take(&mut *child.lock());
        let mut inner = self.lock();
        inner.events.extend(taken.events);
        for (k, v) in taken.counters {
            *inner.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in taken.hists {
            inner.hists.entry(k).or_default().merge(&h);
        }
        for (k, w) in taken.wall_spans {
            let e = inner.wall_spans.entry(k).or_default();
            e.count += w.count;
            e.total_ns += w.total_ns;
        }
        for (k, v) in taken.wall_counters {
            *inner.wall_counters.entry(k).or_insert(0) += v;
        }
        inner.now_ns = inner.now_ns.max(taken.now_ns);
    }

    // --- deterministic side ------------------------------------------------

    /// Advance the recorder's notion of simulation time. Emitters that
    /// know the clock (the network facade) call this; emitters that
    /// don't (pure algorithms) timestamp with the last known value.
    pub fn set_now_ns(&self, t_ns: u64) {
        if self.level == Level::Off {
            return;
        }
        self.lock().now_ns = t_ns;
    }

    /// The recorder's current simulation time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.lock().now_ns
    }

    /// Emit a structured event timestamped with the last known sim time.
    pub fn event(&self, target: &'static str, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if !self.events_enabled() {
            return;
        }
        let mut inner = self.lock();
        let t_ns = inner.now_ns;
        inner.events.push(Event {
            t_ns,
            target,
            name,
            fields,
        });
    }

    /// Emit a structured event at an explicit sim time, advancing the
    /// recorder's clock to it.
    pub fn event_at(
        &self,
        t_ns: u64,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        if !self.events_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.now_ns = inner.now_ns.max(t_ns);
        inner.events.push(Event {
            t_ns,
            target,
            name,
            fields,
        });
    }

    /// Add `n` to the deterministic counter `name`.
    pub fn count(&self, name: &'static str, n: u64) {
        if !self.counters_enabled() {
            return;
        }
        *self.lock().counters.entry(name).or_insert(0) += n;
    }

    /// Record one sample into the deterministic histogram `name`.
    pub fn record(&self, name: &'static str, v: u64) {
        if !self.counters_enabled() {
            return;
        }
        self.lock().hists.entry(name).or_default().record(v);
    }

    /// The deterministic counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all deterministic counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.lock().counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Snapshot of the deterministic histogram `name`, if recorded.
    pub fn hist(&self, name: &str) -> Option<Hist> {
        self.lock().hists.get(name).cloned()
    }

    /// Snapshot of all deterministic histograms, sorted by name.
    pub fn hists(&self) -> Vec<(&'static str, Hist)> {
        self.lock()
            .hists
            .iter()
            .map(|(&k, h)| (k, h.clone()))
            .collect()
    }

    /// Number of events currently buffered.
    pub fn events_len(&self) -> usize {
        self.lock().events.len()
    }

    /// Run `f` over the buffered event stream without cloning it.
    pub fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> R {
        f(&self.lock().events)
    }

    /// The deterministic trace: one JSON object per event, in recorded
    /// order. Byte-identical across thread counts when the fork/merge
    /// rule is followed.
    pub fn events_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(inner.events.len() * 96);
        for e in &inner.events {
            e.write_jsonl(&mut out);
        }
        out
    }

    /// Render the deterministic side (counters, then histograms) as an
    /// aligned text block. Excludes events (see
    /// [`events_jsonl`](Recorder::events_jsonl)) and all wall-clock
    /// telemetry.
    pub fn render_deterministic(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (k, v) in &inner.counters {
            let _ = writeln!(out, "{k:<34} {v:>10}");
        }
        for (k, h) in &inner.hists {
            let _ = writeln!(out, "{k:<34} {}", h.render_line());
        }
        out
    }

    // --- wall-clock side ---------------------------------------------------

    /// Start timing a wall-clock span; the elapsed time is recorded when
    /// the returned guard drops. Wall spans are performance telemetry:
    /// they never enter the deterministic trace or its diffs.
    pub fn span(&self, name: &'static str) -> Span {
        if self.level == Level::Off {
            return Span { sink: None };
        }
        Span {
            sink: Some((Arc::clone(&self.inner), name, Instant::now())),
        }
    }

    /// Add `n` to the wall-side (scheduling-dependent) counter `name` —
    /// e.g. a shared cache's hit/miss split, which depends on which
    /// worker got to a key first.
    pub fn wall_count(&self, name: &'static str, n: u64) {
        if self.level == Level::Off {
            return;
        }
        *self.lock().wall_counters.entry(name).or_insert(0) += n;
    }

    /// The wall-side counter `name` (0 if never touched).
    pub fn wall_counter(&self, name: &str) -> u64 {
        self.lock().wall_counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all wall-side counters, sorted by name.
    pub fn wall_counters(&self) -> Vec<(&'static str, u64)> {
        self.lock()
            .wall_counters
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Snapshot of all wall-span accumulators, sorted by name.
    pub fn wall_spans(&self) -> Vec<(&'static str, WallStat)> {
        self.lock()
            .wall_spans
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Render the wall-clock side (span timings, then wall counters).
    /// **Scheduling-dependent by design** — keep out of determinism
    /// diffs.
    pub fn render_wall(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (k, w) in &inner.wall_spans {
            let _ = writeln!(
                out,
                "{k:<34} {:>8} x {:>10.3} ms = {:>10.1} ms",
                w.count,
                w.mean_ms(),
                w.total_ns as f64 / 1e6
            );
        }
        for (k, v) in &inner.wall_counters {
            let _ = writeln!(out, "{k:<34} {v:>10}");
        }
        out
    }
}

/// Guard for one wall-clock span (see [`Recorder::span`]).
pub struct Span {
    sink: Option<(Arc<Mutex<Buffers>>, &'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.sink.take() {
            let elapsed = start.elapsed().as_nanos();
            let mut buf = inner.lock().expect("recorder poisoned");
            let e = buf.wall_spans.entry(name).or_default();
            e.count += 1;
            e.total_ns += elapsed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_keeps_nothing() {
        let r = Recorder::off();
        r.event("t", "e", vec![("k", Value::U64(1))]);
        r.count("c", 5);
        r.record("h", 9);
        r.wall_count("w", 2);
        drop(r.span("s"));
        assert_eq!(r.events_len(), 0);
        assert_eq!(r.counter("c"), 0);
        assert!(r.hist("h").is_none());
        assert_eq!(r.wall_counter("w"), 0);
        assert!(r.wall_spans().is_empty());
    }

    #[test]
    fn counters_level_drops_events_keeps_counts() {
        let r = Recorder::new(Level::Counters);
        r.event("t", "e", vec![]);
        r.count("c", 2);
        r.count("c", 3);
        r.record("h", 4);
        assert_eq!(r.events_len(), 0);
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.hist("h").unwrap().count, 1);
    }

    #[test]
    fn events_jsonl_is_stable_and_ordered() {
        let r = Recorder::new(Level::Events);
        r.event_at(1_000, "net", "probe", vec![("dst", 7u64.into()), ("rtt_ms", 1.5.into())]);
        r.event("net", "loss", vec![("cause", "outage".into()), ("ok", false.into())]);
        let jsonl = r.events_jsonl();
        assert_eq!(
            jsonl,
            "{\"t_ns\":1000,\"ev\":\"net.probe\",\"dst\":7,\"rtt_ms\":1.5}\n\
             {\"t_ns\":1000,\"ev\":\"net.loss\",\"cause\":\"outage\",\"ok\":false}\n"
        );
    }

    #[test]
    fn fork_then_absorb_merges_everything_in_order() {
        let root = Recorder::new(Level::Events);
        root.event_at(5, "a", "first", vec![]);
        root.count("c", 1);
        let kid_a = root.fork();
        let kid_b = root.fork();
        kid_b.event_at(9, "a", "third", vec![]);
        kid_b.count("c", 10);
        kid_b.record("h", 100);
        kid_b.wall_count("w", 1);
        kid_a.event_at(7, "a", "second", vec![]);
        kid_a.count("c", 5);
        kid_a.record("h", 2);
        // Absorb in coordinator order (a then b), not completion order.
        root.absorb(&kid_a);
        root.absorb(&kid_b);
        assert_eq!(root.counter("c"), 16);
        assert_eq!(root.wall_counter("w"), 1);
        let h = root.hist("h").unwrap();
        assert_eq!((h.count, h.min, h.max, h.sum), (2, 2, 100, 102));
        root.with_events(|ev| {
            let names: Vec<_> = ev.iter().map(|e| e.name).collect();
            assert_eq!(names, ["first", "second", "third"]);
        });
        // Children are drained by absorb.
        assert_eq!(kid_a.events_len(), 0);
    }

    #[test]
    fn clone_shares_the_sink_fork_does_not() {
        let r = Recorder::new(Level::Events);
        let same = r.clone();
        same.count("c", 3);
        assert_eq!(r.counter("c"), 3);
        let forked = r.fork();
        forked.count("c", 4);
        assert_eq!(r.counter("c"), 3);
    }

    #[test]
    fn hist_buckets_by_bit_width() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023] {
            h.record(v);
        }
        assert_eq!(h.buckets[&0], 1); // 0
        assert_eq!(h.buckets[&1], 1); // 1
        assert_eq!(h.buckets[&2], 2); // 2..3
        assert_eq!(h.buckets[&3], 2); // 4..7
        assert_eq!(h.buckets[&4], 1); // 8..15
        assert_eq!(h.buckets[&10], 1); // 512..1023
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1023);
    }

    #[test]
    fn span_records_wall_time() {
        let r = Recorder::new(Level::Counters);
        {
            let _s = r.span("work");
            std::hint::black_box(0u64);
        }
        {
            let _s = r.span("work");
        }
        let spans = r.wall_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "work");
        assert_eq!(spans[0].1.count, 2);
    }

    #[test]
    fn event_field_accessors() {
        let e = Event {
            t_ns: 0,
            target: "t",
            name: "n",
            fields: vec![
                ("u", Value::U64(4)),
                ("f", Value::F64(2.5)),
                ("s", Value::Str("x")),
            ],
        };
        assert_eq!(e.field_u64("u"), Some(4));
        assert_eq!(e.field_f64("f"), Some(2.5));
        assert_eq!(e.field_str("s"), Some("x"));
        assert_eq!(e.field_u64("missing"), None);
    }

    #[test]
    fn render_blocks_are_sorted_and_stable() {
        let r = Recorder::new(Level::Events);
        r.count("z.last", 1);
        r.count("a.first", 2);
        r.record("m.hist", 3);
        let det = r.render_deterministic();
        let a = det.find("a.first").unwrap();
        let z = det.find("z.last").unwrap();
        assert!(a < z, "counters not sorted:\n{det}");
        assert!(det.contains("m.hist"));
        r.wall_count("w.c", 1);
        assert!(r.render_wall().contains("w.c"));
    }
}
