#![warn(missing_docs)]

//! # obs — deterministic observability for the audit pipeline
//!
//! Every layer of the system — the packet simulator, the reliability
//! scheduler, the two-phase measurement engine, the geolocation
//! algorithms, and the study driver — explains itself through one
//! [`Recorder`] handle instead of per-subsystem counters bolted onto
//! result structs. The design contract is **determinism**: everything a
//! recorder collects on the deterministic side is a pure function of the
//! computation it observed, never of scheduling, so traces and rendered
//! summaries can be byte-diffed across thread counts in CI.
//!
//! Two strictly separated compartments:
//!
//! * **Deterministic** — structured [`Event`]s timestamped on the
//!   *simulation* clock, monotonic counters, and power-of-two
//!   [`Hist`]ograms. These participate in the JSONL trace export
//!   ([`Recorder::events_jsonl`]) and the rendered observability report,
//!   both of which CI byte-diffs across `PV_THREADS` values.
//! * **Wall-clock** — [`Span`] timings (`std::time::Instant`) and
//!   run-machinery tallies ([`Recorder::wall_count`], e.g. the worker
//!   count or a shared cache's hit/miss split). These are performance
//!   telemetry, rendered in their own section; span timings are never
//!   included in determinism diffs (exact tallies may be, at the
//!   consumer's discretion — the fill-once disk cache's counters are).
//!
//! ## Hierarchical profiling
//!
//! The wall compartment also carries a span *tree*:
//! [`Recorder::profile_span`] tracks parent/child relationships through
//! a thread-local stack, so nested spans accumulate under a
//! `/`-separated path (`audit.proxy/audit.locate/subset.intersect`).
//! Each path aggregates call count, cumulative nanoseconds, and *self*
//! nanoseconds (cumulative minus time attributed to child spans), and
//! [`Recorder::render_profile`] renders the whole thing as an indented
//! flamegraph-style text tree. Profile data merges additively across
//! [`fork`](Recorder::fork)/[`absorb`](Recorder::absorb), lives entirely
//! on the wall-clock side, and adds nothing to the deterministic
//! compartment — the cross-thread determinism gate is unaffected.
//!
//! ## Fork/merge rule
//!
//! A recorder handle is a shared sink: cloning it gives another handle
//! on the *same* buffers. Parallel work must not interleave event
//! streams nondeterministically, so a worker takes a detached child via
//! [`Recorder::fork`], records into it worker-locally, and the
//! coordinator folds the children back with [`Recorder::absorb`] **in a
//! scheduling-independent order** (the audit merges per-proxy recorders
//! in proxy order). Counters and histograms are commutative merges;
//! events are concatenated in absorb order — which is why absorb order
//! must be deterministic.

pub mod alert;
pub mod export;
pub mod json;
pub mod perfetto;
pub mod registry;
pub mod snapshot;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much the recorder keeps. Levels are cumulative: `Events` implies
/// `Counters`. Wall-clock spans and wall counters are recorded at any
/// level except `Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Record nothing at all.
    Off,
    /// Counters, histograms, and wall-clock telemetry only.
    Counters,
    /// Everything: structured events plus all of the above (the
    /// default).
    #[default]
    Events,
}

/// One structured field value. Strings are `&'static str` by design:
/// event emission sits on measurement hot paths, and every name the
/// pipeline needs (packet kinds, loss causes, algorithm stages) is known
/// at compile time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (formatted by shortest round-trip, so identical
    /// bits render identically).
    F64(f64),
    /// Static string.
    Str(&'static str),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match *self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                let _ = write!(out, "\"{v}\"");
            }
            Value::Str(s) => {
                let _ = write!(out, "\"{s}\"");
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// One structured event on the simulation clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time of the event, nanoseconds.
    pub t_ns: u64,
    /// Subsystem that emitted it (`"netsim"`, `"reliability"`,
    /// `"twophase"`, `"algo"`, `"audit"`, …).
    pub target: &'static str,
    /// Event name within the target.
    pub name: &'static str,
    /// Ordered structured fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Field `key` as a `u64`, if present and unsigned.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(&Value::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// Field `key` as an `f64`, if present and floating.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key) {
            Some(&Value::F64(v)) => Some(v),
            _ => None,
        }
    }

    /// Field `key` as a static string, if present and a string.
    pub fn field_str(&self, key: &str) -> Option<&'static str> {
        match self.field(key) {
            Some(&Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"ev\":\"{}.{}\"",
            self.t_ns, self.target, self.name
        );
        for (k, v) in &self.fields {
            let _ = write!(out, ",\"{k}\":");
            v.write_json(out);
        }
        out.push_str("}\n");
    }
}

/// A power-of-two histogram of `u64` samples: bucket `i` holds values
/// whose bit width is `i` (bucket 0 is the value zero, bucket 1 is 1,
/// bucket 2 is 2–3, bucket 3 is 4–7, …). Coarse, allocation-light, and
/// merges commutatively — exactly what a deterministic cross-thread
/// aggregate needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating: a histogram fed near-`u64::MAX`
    /// samples pins the sum at `u64::MAX` instead of wrapping).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sparse bucket table: bit width → sample count.
    pub buckets: BTreeMap<u32, u64>,
}

impl Hist {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(64 - v.leading_zeros()).or_insert(0) += 1;
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded
    /// samples from the power-of-two buckets. `None` when empty.
    ///
    /// The estimate is the upper edge of the bucket holding the
    /// rank-⌈q·n⌉ sample, clamped into the observed `[min, max]` range.
    ///
    /// **Error bound**: a bucket spans `[2^(b-1), 2^b)`, so the
    /// estimate is never *below* the true quantile and is strictly less
    /// than **2×** the true quantile for any true value ≥ 1 (and exact
    /// for 0, for values one below a power of two, and whenever the
    /// min/max clamp applies). That factor-of-two ceiling is the price
    /// of a histogram that merges commutatively in O(64) space.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile asks for.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let hi = match b {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }

    /// One-line summary: `count  mean  min..max  [bucket histogram]`.
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "n={} mean={:.2} min={} max={}  |",
            self.count,
            self.mean(),
            self.min,
            self.max
        );
        for (&b, &n) in &self.buckets {
            let lo = if b == 0 { 0u64 } else { 1u64 << (b - 1) };
            let _ = write!(out, " {lo}:{n}");
        }
        out
    }
}

/// Accumulated wall-clock timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WallStat {
    /// Completed spans.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u128,
}

impl WallStat {
    /// Mean span duration, milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e6
        }
    }
}

/// Aggregated wall-clock timing for one profile-tree path (see
/// [`Recorder::profile_span`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStat {
    /// Completed spans at this path.
    pub count: u64,
    /// Cumulative wall time, nanoseconds: the span's whole lifetime,
    /// children included.
    pub cum_ns: u128,
    /// Self wall time, nanoseconds: cumulative minus time spent inside
    /// child profile spans.
    pub self_ns: u128,
}

impl ProfileStat {
    fn merge(&mut self, other: &ProfileStat) {
        self.count += other.count;
        self.cum_ns += other.cum_ns;
        self.self_ns += other.self_ns;
    }
}

#[derive(Debug, Default)]
struct Buffers {
    now_ns: u64,
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    wall_spans: BTreeMap<&'static str, WallStat>,
    wall_counters: BTreeMap<&'static str, u64>,
    profile: BTreeMap<String, ProfileStat>,
}

/// One open profile span on the current thread's stack. The frame keeps
/// its own sink: nested spans may come from *different* recorders (a
/// shared cache's recorder under a worker's forked recorder), and each
/// frame's timing must land in the recorder that opened it.
struct ProfFrame {
    token: u64,
    sink: Arc<Mutex<Buffers>>,
    path: String,
    start: Instant,
    /// Nanoseconds already attributed to completed child spans.
    child_ns: u128,
}

thread_local! {
    static PROF_STACK: RefCell<Vec<ProfFrame>> = const { RefCell::new(Vec::new()) };
}

/// Process-unique tokens so a [`ProfileSpan`] guard can recognise its
/// own frame even after out-of-order drops force-closed it.
static PROF_TOKEN: AtomicU64 = AtomicU64::new(1);

/// The shared observability sink.
///
/// Cloning a `Recorder` yields another handle on the same buffers;
/// [`fork`](Recorder::fork) yields a detached child for worker-local
/// recording (see the module docs for the fork/merge rule). All methods
/// take `&self`; the recorder is `Send + Sync`.
#[derive(Debug, Clone)]
pub struct Recorder {
    level: Level,
    inner: Arc<Mutex<Buffers>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(Level::default())
    }
}

impl Recorder {
    /// A fresh recorder at `level`.
    pub fn new(level: Level) -> Recorder {
        Recorder {
            level,
            inner: Arc::new(Mutex::new(Buffers::default())),
        }
    }

    /// A recorder that keeps nothing (every emission is a level check
    /// and an immediate return).
    pub fn off() -> Recorder {
        Recorder::new(Level::Off)
    }

    /// The recording level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// True when structured events are kept.
    pub fn events_enabled(&self) -> bool {
        self.level >= Level::Events
    }

    /// True when counters and histograms are kept.
    pub fn counters_enabled(&self) -> bool {
        self.level >= Level::Counters
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Buffers> {
        self.inner.lock().expect("recorder poisoned")
    }

    /// A detached child at the same level, inheriting the current sim
    /// clock. Recorded into worker-locally, then folded back with
    /// [`absorb`](Recorder::absorb).
    pub fn fork(&self) -> Recorder {
        let child = Recorder::new(self.level);
        child.lock().now_ns = self.lock().now_ns;
        child
    }

    /// Fold a forked child's buffers into this recorder: events are
    /// appended in the child's order, counters and histograms merge
    /// additively, wall telemetry sums. Call in a deterministic order
    /// (the caller's item order, never completion order) to keep the
    /// merged event stream scheduling-independent.
    pub fn absorb(&self, child: &Recorder) {
        if self.level == Level::Off {
            return;
        }
        // Take the child's buffers out first so the two locks are never
        // held at once.
        let taken = std::mem::take(&mut *child.lock());
        let mut inner = self.lock();
        inner.events.extend(taken.events);
        for (k, v) in taken.counters {
            *inner.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in taken.hists {
            inner.hists.entry(k).or_default().merge(&h);
        }
        for (k, w) in taken.wall_spans {
            let e = inner.wall_spans.entry(k).or_default();
            e.count += w.count;
            e.total_ns += w.total_ns;
        }
        for (k, v) in taken.wall_counters {
            *inner.wall_counters.entry(k).or_insert(0) += v;
        }
        for (k, p) in taken.profile {
            inner.profile.entry(k).or_default().merge(&p);
        }
        inner.now_ns = inner.now_ns.max(taken.now_ns);
    }

    // --- deterministic side ------------------------------------------------

    /// Advance the recorder's notion of simulation time. Emitters that
    /// know the clock (the network facade) call this; emitters that
    /// don't (pure algorithms) timestamp with the last known value.
    pub fn set_now_ns(&self, t_ns: u64) {
        if self.level == Level::Off {
            return;
        }
        self.lock().now_ns = t_ns;
    }

    /// The recorder's current simulation time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.lock().now_ns
    }

    /// Emit a structured event timestamped with the last known sim time.
    pub fn event(&self, target: &'static str, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if !self.events_enabled() {
            return;
        }
        let mut inner = self.lock();
        let t_ns = inner.now_ns;
        inner.events.push(Event {
            t_ns,
            target,
            name,
            fields,
        });
    }

    /// Emit a structured event at an explicit sim time, advancing the
    /// recorder's clock to it.
    pub fn event_at(
        &self,
        t_ns: u64,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        if !self.events_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.now_ns = inner.now_ns.max(t_ns);
        inner.events.push(Event {
            t_ns,
            target,
            name,
            fields,
        });
    }

    /// Add `n` to the deterministic counter `name`.
    pub fn count(&self, name: &'static str, n: u64) {
        if !self.counters_enabled() {
            return;
        }
        *self.lock().counters.entry(name).or_insert(0) += n;
    }

    /// Record one sample into the deterministic histogram `name`.
    pub fn record(&self, name: &'static str, v: u64) {
        if !self.counters_enabled() {
            return;
        }
        self.lock().hists.entry(name).or_default().record(v);
    }

    /// The deterministic counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all deterministic counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.lock().counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Snapshot of the deterministic histogram `name`, if recorded.
    pub fn hist(&self, name: &str) -> Option<Hist> {
        self.lock().hists.get(name).cloned()
    }

    /// Snapshot of all deterministic histograms, sorted by name.
    pub fn hists(&self) -> Vec<(&'static str, Hist)> {
        self.lock()
            .hists
            .iter()
            .map(|(&k, h)| (k, h.clone()))
            .collect()
    }

    /// Number of events currently buffered.
    pub fn events_len(&self) -> usize {
        self.lock().events.len()
    }

    /// Run `f` over the buffered event stream without cloning it.
    pub fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> R {
        f(&self.lock().events)
    }

    /// The deterministic trace: one JSON object per event, in recorded
    /// order. Byte-identical across thread counts when the fork/merge
    /// rule is followed.
    pub fn events_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(inner.events.len() * 96);
        for e in &inner.events {
            e.write_jsonl(&mut out);
        }
        out
    }

    /// Render the deterministic side (counters, then histograms) as an
    /// aligned text block. Excludes events (see
    /// [`events_jsonl`](Recorder::events_jsonl)) and all wall-clock
    /// telemetry.
    pub fn render_deterministic(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (k, v) in &inner.counters {
            let _ = writeln!(out, "{k:<34} {v:>10}");
        }
        for (k, h) in &inner.hists {
            let _ = writeln!(out, "{k:<34} {}", h.render_line());
        }
        out
    }

    // --- wall-clock side ---------------------------------------------------

    /// Start timing a wall-clock span; the elapsed time is recorded when
    /// the returned guard drops. Wall spans are performance telemetry:
    /// they never enter the deterministic trace or its diffs.
    pub fn span(&self, name: &'static str) -> Span {
        if self.level == Level::Off {
            return Span { sink: None };
        }
        Span {
            sink: Some((Arc::clone(&self.inner), name, Instant::now())),
        }
    }

    /// Add `n` to the wall-side counter `name` — telemetry about the
    /// run's machinery (worker count, shared-cache hit/miss split)
    /// rather than the study's findings.
    pub fn wall_count(&self, name: &'static str, n: u64) {
        if self.level == Level::Off {
            return;
        }
        *self.lock().wall_counters.entry(name).or_insert(0) += n;
    }

    /// The wall-side counter `name` (0 if never touched).
    pub fn wall_counter(&self, name: &str) -> u64 {
        self.lock().wall_counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all wall-side counters, sorted by name.
    pub fn wall_counters(&self) -> Vec<(&'static str, u64)> {
        self.lock()
            .wall_counters
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Snapshot of all wall-span accumulators, sorted by name.
    pub fn wall_spans(&self) -> Vec<(&'static str, WallStat)> {
        self.lock()
            .wall_spans
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Start a hierarchical wall-clock profile span named `name`.
    ///
    /// The span's position in the tree is determined by the spans
    /// already open *on this thread*: its path is the enclosing span's
    /// path plus `/name`, or just `name` at the top of the stack. When
    /// the returned guard drops, the elapsed time is added to that
    /// path's [`ProfileStat`] — cumulative in full, self minus whatever
    /// completed child spans already claimed — and the elapsed time is
    /// credited to the parent frame's child tally.
    ///
    /// Guards are expected to drop in reverse open order (ordinary
    /// scoping guarantees this). If an outer guard drops while inner
    /// guards are still open, the inner frames are force-closed and
    /// accounted at that moment; the leftover inner guards then drop as
    /// no-ops. A span opened on one recorder may nest under a span from
    /// a *different* recorder — each frame records into the recorder
    /// that opened it, and the paths knit back together after
    /// [`absorb`](Recorder::absorb).
    ///
    /// No-op (no allocation, no thread-local touch) at [`Level::Off`].
    pub fn profile_span(&self, name: &'static str) -> ProfileSpan {
        self.profile_span_impl(name, false)
    }

    /// Like [`profile_span`](Recorder::profile_span), but the span's
    /// path is always just `name`, even when other spans are open on
    /// this thread — it starts a fresh root in the tree. Use for work
    /// units that should aggregate identically whether they ran inline
    /// on the coordinator (1 thread) or on a worker (the audit's
    /// per-proxy span). Enclosing spans still treat its elapsed time as
    /// child time for their own self/cumulative split.
    pub fn profile_span_root(&self, name: &'static str) -> ProfileSpan {
        self.profile_span_impl(name, true)
    }

    fn profile_span_impl(&self, name: &'static str, root: bool) -> ProfileSpan {
        if self.level == Level::Off {
            return ProfileSpan { token: None };
        }
        let token = PROF_TOKEN.fetch_add(1, Ordering::Relaxed);
        PROF_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(top) if !root => format!("{}/{}", top.path, name),
                _ => name.to_string(),
            };
            stack.push(ProfFrame {
                token,
                sink: Arc::clone(&self.inner),
                path,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        ProfileSpan { token: Some(token) }
    }

    /// Snapshot of the aggregated profile tree, sorted by path.
    pub fn profile(&self) -> Vec<(String, ProfileStat)> {
        self.lock()
            .profile
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// The aggregated [`ProfileStat`] at `path`, if any span completed
    /// there.
    pub fn profile_stat(&self, path: &str) -> Option<ProfileStat> {
        self.lock().profile.get(path).copied()
    }

    /// Render the profile tree as an indented flamegraph-style text
    /// block: one line per path with call count, self time, and
    /// cumulative time. Multiple roots (e.g. the coordinator's
    /// `audit.run` next to absorbed workers' `audit.proxy`) render as a
    /// forest. Siblings are ordered hottest-first (cumulative time
    /// descending, name as the stable tiebreak), so the top of the
    /// report is always the dominant path. **Timings are
    /// scheduling-dependent by design** — keep out of determinism
    /// diffs.
    pub fn render_profile(&self) -> String {
        render_profile_from(&self.profile())
    }

    /// Render the wall-clock side: span timings sorted by total time
    /// descending (name tiebreak), then wall counters by name.
    /// **Scheduling-dependent by design** — keep out of determinism
    /// diffs.
    pub fn render_wall(&self) -> String {
        render_wall_from(&self.wall_spans(), &self.wall_counters())
    }
}

/// Render a profile snapshot (as returned by [`Recorder::profile`]) as
/// the indented forest of [`Recorder::render_profile`]. Siblings sort
/// by cumulative time descending with a stable name tiebreak; a path
/// seen only as a prefix (its own span never completed) sorts by the
/// sum of its children.
pub fn render_profile_from(entries: &[(String, ProfileStat)]) -> String {
    #[derive(Default)]
    struct Node {
        stat: Option<ProfileStat>,
        children: BTreeMap<String, Node>,
    }
    impl Node {
        /// Sort weight: own cumulative time, or the children's sum for
        /// prefix-only paths.
        fn weight(&self) -> u128 {
            match self.stat {
                Some(s) => s.cum_ns,
                None => self.children.values().map(Node::weight).sum(),
            }
        }
    }
    let mut root = Node::default();
    for (path, stat) in entries {
        let mut node = &mut root;
        for seg in path.split('/') {
            node = node.children.entry(seg.to_string()).or_default();
        }
        node.stat = Some(*stat);
    }
    if root.children.is_empty() {
        return String::new();
    }
    fn ordered(node: &Node) -> Vec<(&String, &Node)> {
        let mut kids: Vec<_> = node.children.iter().collect();
        kids.sort_by(|(an, a), (bn, b)| b.weight().cmp(&a.weight()).then(an.cmp(bn)));
        kids
    }
    fn render(node: &Node, name: &str, depth: usize, out: &mut String) {
        let label = format!("{}{}", "  ".repeat(depth), name);
        match node.stat {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "{label:<44} {:>9}  self {:>10}  cum {:>10}",
                    s.count,
                    fmt_prof_ns(s.self_ns),
                    fmt_prof_ns(s.cum_ns)
                );
            }
            None => {
                // A path only seen as a prefix (its own span never
                // completed, e.g. still open at render time).
                let _ = writeln!(out, "{label:<44} {:>9}  self {:>10}  cum {:>10}", "-", "-", "-");
            }
        }
        for (child_name, child) in ordered(node) {
            render(child, child_name, depth + 1, out);
        }
    }
    let mut out = format!(
        "{:<44} {:>9}  {:>15}  {:>14}\n",
        "span path", "count", "self", "cum"
    );
    for (name, node) in ordered(&root) {
        render(node, name, 0, &mut out);
    }
    out
}

/// Render wall-span and wall-counter snapshots as the text block of
/// [`Recorder::render_wall`]: spans sorted by total wall time
/// descending (name tiebreak, so equal-cost spans are still
/// machine-diffable run-to-run), counters by name.
pub fn render_wall_from(spans: &[(&'static str, WallStat)], counters: &[(&'static str, u64)]) -> String {
    let mut spans = spans.to_vec();
    spans.sort_by(|(an, a), (bn, b)| b.total_ns.cmp(&a.total_ns).then(an.cmp(bn)));
    let mut out = String::new();
    for (k, w) in &spans {
        let _ = writeln!(
            out,
            "{k:<34} {:>8} x {:>10.3} ms = {:>10.1} ms",
            w.count,
            w.mean_ms(),
            w.total_ns as f64 / 1e6
        );
    }
    for (k, v) in counters {
        let _ = writeln!(out, "{k:<34} {v:>10}");
    }
    out
}

/// Guard for one wall-clock span (see [`Recorder::span`]).
pub struct Span {
    sink: Option<(Arc<Mutex<Buffers>>, &'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.sink.take() {
            let elapsed = start.elapsed().as_nanos();
            let mut buf = inner.lock().expect("recorder poisoned");
            let e = buf.wall_spans.entry(name).or_default();
            e.count += 1;
            e.total_ns += elapsed;
        }
    }
}

/// Guard for one hierarchical profile span (see
/// [`Recorder::profile_span`]). Dropping it closes the span and every
/// not-yet-closed span opened under it on the same thread.
pub struct ProfileSpan {
    token: Option<u64>,
}

impl Drop for ProfileSpan {
    fn drop(&mut self) {
        let Some(token) = self.token.take() else {
            return;
        };
        PROF_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Already force-closed by an enclosing guard's drop (or
            // opened on another thread, which is a misuse we tolerate).
            if !stack.iter().any(|f| f.token == token) {
                return;
            }
            loop {
                let frame = stack.pop().expect("frame present by the check above");
                let done = frame.token == token;
                let cum = frame.start.elapsed().as_nanos();
                let self_ns = cum.saturating_sub(frame.child_ns);
                {
                    let mut buf = frame.sink.lock().expect("recorder poisoned");
                    let e = buf.profile.entry(frame.path).or_default();
                    e.count += 1;
                    e.cum_ns += cum;
                    e.self_ns += self_ns;
                }
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += cum;
                }
                if done {
                    break;
                }
            }
        });
    }
}

/// Compact human formatting for profile nanoseconds.
fn fmt_prof_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_keeps_nothing() {
        let r = Recorder::off();
        r.event("t", "e", vec![("k", Value::U64(1))]);
        r.count("c", 5);
        r.record("h", 9);
        r.wall_count("w", 2);
        drop(r.span("s"));
        assert_eq!(r.events_len(), 0);
        assert_eq!(r.counter("c"), 0);
        assert!(r.hist("h").is_none());
        assert_eq!(r.wall_counter("w"), 0);
        assert!(r.wall_spans().is_empty());
    }

    #[test]
    fn counters_level_drops_events_keeps_counts() {
        let r = Recorder::new(Level::Counters);
        r.event("t", "e", vec![]);
        r.count("c", 2);
        r.count("c", 3);
        r.record("h", 4);
        assert_eq!(r.events_len(), 0);
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.hist("h").unwrap().count, 1);
    }

    #[test]
    fn events_jsonl_is_stable_and_ordered() {
        let r = Recorder::new(Level::Events);
        r.event_at(1_000, "net", "probe", vec![("dst", 7u64.into()), ("rtt_ms", 1.5.into())]);
        r.event("net", "loss", vec![("cause", "outage".into()), ("ok", false.into())]);
        let jsonl = r.events_jsonl();
        assert_eq!(
            jsonl,
            "{\"t_ns\":1000,\"ev\":\"net.probe\",\"dst\":7,\"rtt_ms\":1.5}\n\
             {\"t_ns\":1000,\"ev\":\"net.loss\",\"cause\":\"outage\",\"ok\":false}\n"
        );
    }

    #[test]
    fn fork_then_absorb_merges_everything_in_order() {
        let root = Recorder::new(Level::Events);
        root.event_at(5, "a", "first", vec![]);
        root.count("c", 1);
        let kid_a = root.fork();
        let kid_b = root.fork();
        kid_b.event_at(9, "a", "third", vec![]);
        kid_b.count("c", 10);
        kid_b.record("h", 100);
        kid_b.wall_count("w", 1);
        kid_a.event_at(7, "a", "second", vec![]);
        kid_a.count("c", 5);
        kid_a.record("h", 2);
        // Absorb in coordinator order (a then b), not completion order.
        root.absorb(&kid_a);
        root.absorb(&kid_b);
        assert_eq!(root.counter("c"), 16);
        assert_eq!(root.wall_counter("w"), 1);
        let h = root.hist("h").unwrap();
        assert_eq!((h.count, h.min, h.max, h.sum), (2, 2, 100, 102));
        root.with_events(|ev| {
            let names: Vec<_> = ev.iter().map(|e| e.name).collect();
            assert_eq!(names, ["first", "second", "third"]);
        });
        // Children are drained by absorb.
        assert_eq!(kid_a.events_len(), 0);
    }

    #[test]
    fn clone_shares_the_sink_fork_does_not() {
        let r = Recorder::new(Level::Events);
        let same = r.clone();
        same.count("c", 3);
        assert_eq!(r.counter("c"), 3);
        let forked = r.fork();
        forked.count("c", 4);
        assert_eq!(r.counter("c"), 3);
    }

    #[test]
    fn hist_buckets_by_bit_width() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023] {
            h.record(v);
        }
        assert_eq!(h.buckets[&0], 1); // 0
        assert_eq!(h.buckets[&1], 1); // 1
        assert_eq!(h.buckets[&2], 2); // 2..3
        assert_eq!(h.buckets[&3], 2); // 4..7
        assert_eq!(h.buckets[&4], 1); // 8..15
        assert_eq!(h.buckets[&10], 1); // 512..1023
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1023);
    }

    #[test]
    fn span_records_wall_time() {
        let r = Recorder::new(Level::Counters);
        {
            let _s = r.span("work");
            std::hint::black_box(0u64);
        }
        {
            let _s = r.span("work");
        }
        let spans = r.wall_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "work");
        assert_eq!(spans[0].1.count, 2);
    }

    #[test]
    fn event_field_accessors() {
        let e = Event {
            t_ns: 0,
            target: "t",
            name: "n",
            fields: vec![
                ("u", Value::U64(4)),
                ("f", Value::F64(2.5)),
                ("s", Value::Str("x")),
            ],
        };
        assert_eq!(e.field_u64("u"), Some(4));
        assert_eq!(e.field_f64("f"), Some(2.5));
        assert_eq!(e.field_str("s"), Some("x"));
        assert_eq!(e.field_u64("missing"), None);
    }

    #[test]
    fn hist_merge_with_disjoint_buckets_keeps_both() {
        let mut a = Hist::default();
        a.record(1);
        a.record(1);
        let mut b = Hist::default();
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 1026);
        assert_eq!((a.min, a.max), (1, 1024));
        assert_eq!(a.buckets[&1], 2);
        assert_eq!(a.buckets[&11], 1);
        // Merging an empty hist is a no-op both ways.
        let before = a.clone();
        a.merge(&Hist::default());
        assert_eq!(a, before);
        let mut empty = Hist::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn hist_empty_mean_and_render() {
        let h = Hist::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.render_line(), "n=0 mean=0.00 min=0 max=0  |");
    }

    #[test]
    fn hist_u64_max_lands_in_top_bucket() {
        let mut h = Hist::default();
        h.record(u64::MAX);
        assert_eq!(h.buckets[&64], 1);
        assert_eq!((h.min, h.max, h.sum), (u64::MAX, u64::MAX, u64::MAX));
        // The rendered bucket floor is 2^63, which must not overflow.
        assert!(h.render_line().contains(&format!("{}:1", 1u64 << 63)));
    }

    #[test]
    fn wallstat_accumulates_across_spans_and_absorb() {
        let r = Recorder::new(Level::Counters);
        drop(r.span("w"));
        drop(r.span("w"));
        let child = r.fork();
        drop(child.span("w"));
        r.absorb(&child);
        let stat = r
            .wall_spans()
            .into_iter()
            .find(|(k, _)| *k == "w")
            .map(|(_, s)| s)
            .unwrap();
        assert_eq!(stat.count, 3);
        let each = WallStat {
            count: 1,
            total_ns: 7,
        };
        let mut acc = WallStat::default();
        assert_eq!(acc.mean_ms(), 0.0);
        for _ in 0..4 {
            acc.count += each.count;
            acc.total_ns += each.total_ns;
        }
        assert_eq!((acc.count, acc.total_ns), (4, 28));
    }

    #[test]
    fn profile_nesting_builds_slash_paths() {
        let r = Recorder::new(Level::Counters);
        {
            let _outer = r.profile_span("outer");
            for _ in 0..3 {
                let _inner = r.profile_span("inner");
            }
        }
        let outer = r.profile_stat("outer").unwrap();
        let inner = r.profile_stat("outer/inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(r.profile_stat("inner").is_none(), "inner must nest");
        // Self + children == cumulative, exactly: outer's child tally is
        // the sum of the inner spans' cumulative times.
        assert_eq!(outer.self_ns + inner.cum_ns, outer.cum_ns);
        assert!(inner.cum_ns <= outer.cum_ns);
    }

    #[test]
    fn profile_out_of_order_drop_force_closes_children() {
        let r = Recorder::new(Level::Counters);
        let outer = r.profile_span("outer");
        let inner = r.profile_span("inner");
        drop(outer); // inner is still open: it gets force-closed here
        assert_eq!(r.profile_stat("outer").unwrap().count, 1);
        assert_eq!(r.profile_stat("outer/inner").unwrap().count, 1);
        drop(inner); // must be a no-op, not a double count
        assert_eq!(r.profile_stat("outer/inner").unwrap().count, 1);
        // The stack is clean: a new span roots at the top level again.
        drop(r.profile_span("fresh"));
        assert!(r.profile_stat("fresh").is_some());
    }

    #[test]
    fn profile_span_root_ignores_the_enclosing_stack() {
        let r = Recorder::new(Level::Counters);
        {
            let _outer = r.profile_span("outer");
            let _rooted = r.profile_span_root("unit");
            let _inner = r.profile_span("inner");
        }
        // `unit` roots its own tree; `inner` nests under it, and the
        // enclosing `outer` still counts `unit` as child time.
        assert!(r.profile_stat("unit").is_some());
        assert!(r.profile_stat("unit/inner").is_some());
        assert!(r.profile_stat("outer/unit").is_none());
        let outer = r.profile_stat("outer").unwrap();
        let unit = r.profile_stat("unit").unwrap();
        assert_eq!(outer.self_ns + unit.cum_ns, outer.cum_ns);
    }

    #[test]
    fn profile_fork_absorb_merges_additively() {
        let root = Recorder::new(Level::Events);
        {
            let _p = root.profile_span("work");
        }
        let child = root.fork();
        for _ in 0..2 {
            let _p = child.profile_span("work");
        }
        root.absorb(&child);
        let stat = root.profile_stat("work").unwrap();
        assert_eq!(stat.count, 3);
        assert_eq!(child.profile().len(), 0, "child drained by absorb");
    }

    #[test]
    fn profile_spans_from_different_recorders_nest_by_thread() {
        // The shared-cache case: a worker's forked recorder opens the
        // enclosing span, the cache's own recorder opens the inner one.
        // Each frame lands in its own recorder, under the thread's path.
        let worker = Recorder::new(Level::Counters);
        let cache = Recorder::new(Level::Counters);
        {
            let _outer = worker.profile_span("audit.proxy");
            let _inner = cache.profile_span("cache.lookup");
        }
        assert_eq!(worker.profile_stat("audit.proxy").unwrap().count, 1);
        assert_eq!(
            cache.profile_stat("audit.proxy/cache.lookup").unwrap().count,
            1
        );
        assert!(worker.profile_stat("audit.proxy/cache.lookup").is_none());
    }

    #[test]
    fn profile_off_recorder_is_invisible_to_the_stack() {
        let on = Recorder::new(Level::Counters);
        let off = Recorder::off();
        {
            let _outer = on.profile_span("outer");
            let _ghost = off.profile_span("ghost");
            let _inner = on.profile_span("inner");
        }
        assert!(off.profile().is_empty());
        // The Off span never joined the stack, so "inner" nests
        // directly under "outer".
        assert!(on.profile_stat("outer/inner").is_some());
        assert!(on.profile_stat("outer/ghost/inner").is_none());
    }

    #[test]
    fn render_profile_is_an_indented_forest() {
        let r = Recorder::new(Level::Counters);
        {
            let _a = r.profile_span("alpha");
            let _b = r.profile_span("beta");
        }
        let txt = r.render_profile();
        let alpha = txt.find("\nalpha").unwrap();
        let beta = txt.find("\n  beta").unwrap();
        assert!(alpha < beta, "beta must nest under alpha:\n{txt}");
        assert!(Recorder::off().render_profile().is_empty());
    }

    #[test]
    fn render_profile_orders_siblings_by_cum_time_then_name() {
        let stat = |count, cum_ns, self_ns| ProfileStat {
            count,
            cum_ns,
            self_ns,
        };
        // `cold` is alphabetically first but cheapest; `hot` dominates.
        // `mid.a`/`mid.b` tie on cum and must fall back to name order.
        let entries = vec![
            ("cold".to_string(), stat(1, 10, 10)),
            ("hot".to_string(), stat(1, 1_000, 400)),
            ("hot/inner_cheap".to_string(), stat(2, 100, 100)),
            ("hot/inner_hot".to_string(), stat(2, 500, 500)),
            ("mid.a".to_string(), stat(1, 50, 50)),
            ("mid.b".to_string(), stat(1, 50, 50)),
        ];
        let txt = render_profile_from(&entries);
        let pos = |needle: &str| txt.find(needle).unwrap_or_else(|| panic!("{needle} missing:\n{txt}"));
        assert!(pos("\nhot") < pos("\n  inner_hot"), "{txt}");
        assert!(pos("\n  inner_hot") < pos("\n  inner_cheap"), "{txt}");
        assert!(pos("\n  inner_cheap") < pos("\nmid.a"), "{txt}");
        assert!(pos("\nmid.a") < pos("\nmid.b"), "tie must break by name:\n{txt}");
        assert!(pos("\nmid.b") < pos("\ncold"), "{txt}");
        // A prefix-only node weighs what its children weigh: `ghost`
        // never completed but its child out-weighs `cold`.
        let entries = vec![
            ("cold".to_string(), stat(1, 10, 10)),
            ("ghost/busy".to_string(), stat(1, 900, 900)),
        ];
        let txt = render_profile_from(&entries);
        assert!(
            txt.find("\nghost").unwrap() < txt.find("\ncold").unwrap(),
            "prefix-only parent must sort by child weight:\n{txt}"
        );
    }

    #[test]
    fn render_wall_orders_spans_by_total_time_then_name() {
        let w = |count, total_ns| WallStat { count, total_ns };
        let spans = vec![
            ("a.cheap", w(9, 100)),
            ("z.hot", w(1, 9_000)),
            ("m.tie", w(1, 100)),
        ];
        let counters = vec![("a.count", 1u64), ("z.count", 2u64)];
        let txt = render_wall_from(&spans, &counters);
        let pos = |needle: &str| txt.find(needle).unwrap_or_else(|| panic!("{needle} missing:\n{txt}"));
        assert!(pos("z.hot") < pos("a.cheap"), "{txt}");
        assert!(pos("a.cheap") < pos("m.tie"), "tie must break by name:\n{txt}");
        assert!(pos("m.tie") < pos("a.count"), "counters render after spans:\n{txt}");
        assert!(pos("a.count") < pos("z.count"), "{txt}");
    }

    #[test]
    fn hist_quantile_empty_is_none() {
        let h = Hist::default();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn hist_quantile_at_bucket_edges() {
        // Values one below a power of two sit exactly on a bucket's
        // upper edge, so the estimate is exact.
        let mut h = Hist::default();
        for v in [0u64, 1, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        // rank ⌈0.2·5⌉ = 1 → bucket of 0.
        assert_eq!(h.quantile(0.2), Some(0));
        // rank ⌈0.5·5⌉ = 3 → bucket of 3 (upper edge 3).
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.8), Some(7));
        assert_eq!(h.quantile(1.0), Some(15));
        // A power of two itself sits at the *bottom* of its bucket: the
        // estimate is the upper edge, within the documented 2x bound.
        let mut h = Hist::default();
        h.record(8);
        let p50 = h.quantile(0.5).unwrap();
        assert_eq!(p50, 8, "single sample clamps to max");
        let mut h = Hist::default();
        h.record(8);
        h.record(9);
        let p25 = h.quantile(0.25).unwrap();
        assert!((8..16).contains(&p25), "within the 2x bound: {p25}");
    }

    #[test]
    fn hist_quantile_clamps_to_observed_range() {
        let mut h = Hist::default();
        h.record(1000); // bucket 10 (512..1023), upper edge 1023
        h.record(1000);
        // Upper edge 1023 clamps down to the observed max 1000.
        assert_eq!(h.quantile(0.5), Some(1000));
        // min-clamp: a single value at the bottom of a wide bucket.
        let mut h = Hist::default();
        h.record(513);
        h.record(2000);
        // p25 → bucket 10, upper edge 1023, min 513 ≤ 1023 ≤ max: stays.
        assert_eq!(h.quantile(0.25), Some(1023));
    }

    #[test]
    fn hist_quantile_u64_max_does_not_overflow() {
        let mut h = Hist::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 7);
        for q in [0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(u64::MAX));
        }
        // rank 1 lands in bucket 64 too; the upper edge u64::MAX is
        // clamped into [min, max] without overflowing.
        assert_eq!(h.quantile(0.0), Some(u64::MAX));
    }

    #[test]
    fn hist_quantile_monotone_in_q() {
        let mut h = Hist::default();
        for v in [1u64, 2, 4, 9, 33, 120, 4096, 70_000] {
            h.record(v);
        }
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!(est >= last, "quantile must be monotone in q");
            last = est;
        }
        assert_eq!(h.quantile(1.0), Some(70_000));
    }

    #[test]
    fn render_blocks_are_sorted_and_stable() {
        let r = Recorder::new(Level::Events);
        r.count("z.last", 1);
        r.count("a.first", 2);
        r.record("m.hist", 3);
        let det = r.render_deterministic();
        let a = det.find("a.first").unwrap();
        let z = det.find("z.last").unwrap();
        assert!(a < z, "counters not sorted:\n{det}");
        assert!(det.contains("m.hist"));
        r.wall_count("w.c", 1);
        assert!(r.render_wall().contains("w.c"));
    }
}
