//! The metric-name registry: the single source of truth mapping every
//! raw [`Recorder`](crate::Recorder) counter, histogram, and wall
//! counter emitted anywhere in the workspace onto a stable, linted
//! OpenMetrics family name with fixed labels.
//!
//! Adding a new `rec.count("sub.thing", …)` call site anywhere in the
//! workspace **requires** registering the name here — the exporter
//! ([`crate::export::recorder_metrics`]) errors on unregistered names,
//! and the registry lint test (plus the cross-crate integration test in
//! `tests/ops_telemetry.rs`) fails the build on a duplicate,
//! ill-formed, or unregistered name. That is the point: metric names
//! are API, and silent drift breaks every dashboard scraping them.
//!
//! Families are split into two compartments. `Deterministic` families
//! derive purely from the simulation (CI byte-diffs their rendered
//! exposition across `PV_THREADS`); `Wall` families carry run-machinery
//! telemetry (timings, thread counts, cache luck) that legitimately
//! varies run to run.

use crate::export::{lint_metric_name, MetricKind};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Which determinism compartment a family belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compartment {
    /// Pure function of the study seed; byte-diffed by CI.
    Deterministic,
    /// Run machinery (wall timings, scheduling); excluded from diffs.
    Wall,
}

/// One registered raw recorder name and its exported identity.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The raw name passed to `Recorder::count`/`record`/`wall_count`.
    pub raw: &'static str,
    /// The exported OpenMetrics family.
    pub family: &'static str,
    /// Fixed labels attached to this raw name's samples.
    pub labels: &'static [(&'static str, &'static str)],
    /// Exposition kind.
    pub kind: MetricKind,
    /// Determinism compartment.
    pub compartment: Compartment,
    /// `# HELP` text.
    pub help: &'static str,
}

/// A family whose label *values* are only known at export time (span
/// paths, shard indexes, provider names). Cardinality stays bounded by
/// construction: span paths by the static span inventory, shards by
/// `PV_SHARDS`, providers by the study's provider table.
#[derive(Debug, Clone, Copy)]
pub struct DynamicDef {
    /// The exported OpenMetrics family.
    pub family: &'static str,
    /// Exposition kind.
    pub kind: MetricKind,
    /// The label keys samples may carry (at most one by lint rule).
    pub label_keys: &'static [&'static str],
    /// Determinism compartment.
    pub compartment: Compartment,
    /// `# HELP` text.
    pub help: &'static str,
}

/// Deterministic counters: every `Recorder::count` name in the
/// workspace.
pub const COUNTERS: &[MetricDef] = &[
    def("net.probe.sent", "pv_probe_total", &[("outcome", "sent")], PROBE_HELP),
    def("net.probe.completed", "pv_probe_total", &[("outcome", "completed")], PROBE_HELP),
    def("net.probe.timeout", "pv_probe_total", &[("outcome", "timeout")], PROBE_HELP),
    def("net.probe.unroutable", "pv_probe_total", &[("outcome", "unroutable")], PROBE_HELP),
    def("net.loss.outage", "pv_probe_loss_total", &[("cause", "outage")], LOSS_HELP),
    def("net.loss.drop", "pv_probe_loss_total", &[("cause", "drop")], LOSS_HELP),
    def("net.loss.link", "pv_probe_loss_total", &[("cause", "link")], LOSS_HELP),
    def("net.loss.rate_limit", "pv_probe_loss_total", &[("cause", "rate_limit")], LOSS_HELP),
    def("net.loss.filtered", "pv_probe_loss_total", &[("cause", "filtered")], LOSS_HELP),
    def(
        "net.adv.collude",
        "pv_adversary_collusion_total",
        &[],
        "Probe answers shaped by colluding adversary nodes.",
    ),
    def("rel.retry", "pv_retry_total", &[], "Probe retries scheduled by the reliability layer."),
    def(
        "rel.corrupt_reading",
        "pv_reading_rejected_total",
        &[("reason", "corrupt")],
        READING_HELP,
    ),
    def(
        "rel.infeasible_reading",
        "pv_reading_rejected_total",
        &[("reason", "infeasible")],
        READING_HELP,
    ),
    def(
        "rel.fallback",
        "pv_scheduler_fallback_total",
        &[],
        "Reliability-layer fallbacks to a degraded probing strategy.",
    ),
    def(
        "rel.dead_landmark",
        "pv_retry_exhaustion_total",
        &[],
        "Landmarks declared dead after exhausting every probe retry.",
    ),
    def(
        "tp.phase1_responsive",
        "pv_phase1_landmarks_total",
        &[("state", "responsive")],
        PHASE1_HELP,
    ),
    def(
        "tp.phase1_total",
        "pv_phase1_landmarks_total",
        &[("state", "probed")],
        PHASE1_HELP,
    ),
    def(
        "tp.observations",
        "pv_observations_total",
        &[],
        "Accepted (landmark, RTT) observations entering geolocation.",
    ),
    def(
        "tp.quorum_degraded",
        "pv_quorum_degraded_total",
        &[],
        "Measurements that proceeded below the landmark quorum.",
    ),
    def("def.runs", "pv_defense_events_total", &[("kind", "run")], DEFENSE_HELP),
    def("def.flagged", "pv_defense_events_total", &[("kind", "flagged")], DEFENSE_HELP),
    def(
        "def.conflict_pairs",
        "pv_defense_events_total",
        &[("kind", "conflict_pair")],
        DEFENSE_HELP,
    ),
    def("def.trimmed", "pv_defense_events_total", &[("kind", "trimmed")], DEFENSE_HELP),
    def(
        "def.quorum_fail",
        "pv_defense_events_total",
        &[("kind", "quorum_fail")],
        DEFENSE_HELP,
    ),
    def(
        "def.suspicious",
        "pv_defense_events_total",
        &[("kind", "suspicious")],
        DEFENSE_HELP,
    ),
    def(
        "alg.empty_region",
        "pv_geo_fallback_total",
        &[("kind", "empty_region")],
        GEO_HELP,
    ),
    def(
        "alg.bestline_dropped",
        "pv_geo_fallback_total",
        &[("kind", "bestline_dropped")],
        GEO_HELP,
    ),
    def(
        "alg.baseline_fallback",
        "pv_geo_fallback_total",
        &[("kind", "baseline_fallback")],
        GEO_HELP,
    ),
    def(
        "audit.measured",
        "pv_audit_proxies_total",
        &[("outcome", "measured")],
        AUDIT_HELP,
    ),
    def(
        "audit.insufficient",
        "pv_audit_proxies_total",
        &[("outcome", "insufficient")],
        AUDIT_HELP,
    ),
    def(
        "audit.unmeasurable",
        "pv_audit_proxies_total",
        &[("outcome", "unmeasurable")],
        AUDIT_HELP,
    ),
];

/// Deterministic histograms: every `Recorder::record` name.
pub const HISTS: &[MetricDef] = &[
    hist_def(
        "net.probe.rtt_us",
        "pv_probe_rtt_microseconds",
        "Completed probe round-trip times, microseconds.",
    ),
    hist_def(
        "rel.backoff_us",
        "pv_retry_backoff_microseconds",
        "Reliability-layer retry backoff delays, microseconds.",
    ),
    hist_def(
        "rel.attempts_per_landmark",
        "pv_landmark_attempts",
        "Measurement attempts spent per landmark, successful or not \
         (the retry-depth distribution).",
    ),
    hist_def(
        "alg.baseline_cells",
        "pv_geo_baseline_cells",
        "Grid cells surviving the CBG++ baseline intersection.",
    ),
    hist_def(
        "alg.region_cells",
        "pv_geo_region_cells",
        "Grid cells in the final feasible region.",
    ),
];

/// Wall-side counters: every `Recorder::wall_count` name.
pub const WALL_COUNTERS: &[MetricDef] = &[
    MetricDef {
        raw: "cache.disk.hits",
        family: "pv_cache_lookup_total",
        labels: &[("result", "hit")],
        kind: MetricKind::Counter,
        compartment: Compartment::Wall,
        help: CACHE_HELP,
    },
    MetricDef {
        raw: "cache.disk.misses",
        family: "pv_cache_lookup_total",
        labels: &[("result", "miss")],
        kind: MetricKind::Counter,
        compartment: Compartment::Wall,
        help: CACHE_HELP,
    },
    MetricDef {
        raw: "cache.disk.entries",
        family: "pv_cache_entries",
        labels: &[],
        kind: MetricKind::Gauge,
        compartment: Compartment::Wall,
        help: "Entries resident in the fill-once disk cache.",
    },
    MetricDef {
        raw: "audit.threads",
        family: "pv_audit_threads",
        labels: &[],
        kind: MetricKind::Gauge,
        compartment: Compartment::Wall,
        help: "Worker threads the audit fanned out over.",
    },
    MetricDef {
        raw: "audit.shards",
        family: "pv_audit_shards",
        labels: &[],
        kind: MetricKind::Gauge,
        compartment: Compartment::Wall,
        help: "Shards the audit master split the proxy list into.",
    },
];

/// Families whose label values are only known at export time.
pub const DYNAMIC: &[DynamicDef] = &[
    dyn_def("pv_wall_span_calls_total", MetricKind::Counter, &["name"], Compartment::Wall,
        "Completed wall-clock spans by name."),
    dyn_def("pv_wall_span_seconds_total", MetricKind::Gauge, &["name"], Compartment::Wall,
        "Summed wall-clock span time by name."),
    dyn_def("pv_span_calls_total", MetricKind::Counter, &["path"], Compartment::Wall,
        "Completed profile spans by tree path."),
    dyn_def("pv_span_seconds_total", MetricKind::Gauge, &["path"], Compartment::Wall,
        "Cumulative profile span time by tree path."),
    dyn_def("pv_span_self_seconds_total", MetricKind::Gauge, &["path"], Compartment::Wall,
        "Self (non-child) profile span time by tree path."),
    dyn_def("pv_shard_progress_ratio", MetricKind::Gauge, &["shard"], Compartment::Wall,
        "Fraction of a shard's proxies already audited."),
    dyn_def("pv_shard_proxies_done", MetricKind::Gauge, &["shard"], Compartment::Wall,
        "Proxies a shard has finished auditing."),
    dyn_def("pv_shard_probes_sent", MetricKind::Gauge, &["shard"], Compartment::Wall,
        "Probes a shard has sent so far."),
    dyn_def("pv_shard_retries", MetricKind::Gauge, &["shard"], Compartment::Wall,
        "Probe retries a shard has scheduled so far."),
    dyn_def("pv_shard_cache_hit_ratio", MetricKind::Gauge, &["shard"], Compartment::Wall,
        "Hit ratio of a shard's disk-cache lookups."),
    dyn_def("pv_progress_proxies_done", MetricKind::Gauge, &[], Compartment::Deterministic,
        "Proxies audited, global deterministic order."),
    dyn_def("pv_progress_proxies_total", MetricKind::Gauge, &[], Compartment::Deterministic,
        "Proxies the study set out to audit."),
    dyn_def("pv_progress_snapshots_total", MetricKind::Counter, &[], Compartment::Deterministic,
        "Progress snapshots emitted by the audit master."),
    dyn_def("pv_probe_loss_rate", MetricKind::Gauge, &[], Compartment::Deterministic,
        "Fraction of sent probes that never completed."),
    dyn_def("pv_suspicious_rate", MetricKind::Gauge, &["provider"], Compartment::Deterministic,
        "Fraction of a provider's audited proxies judged False or Suspicious."),
    dyn_def("pv_stale_urgent_verdicts", MetricKind::Gauge, &[], Compartment::Wall,
        "Urgent-priority verdicts overdue for revalidation in the store."),
    dyn_def("pv_store_epochs", MetricKind::Gauge, &[], Compartment::Wall,
        "Study epochs recorded in the verdict store."),
    dyn_def("pv_audit_elapsed_ms", MetricKind::Gauge, &[], Compartment::Wall,
        "Wall-clock milliseconds the audit run took."),
    dyn_def("pv_eta_ms", MetricKind::Gauge, &[], Compartment::Wall,
        "Estimated wall-clock milliseconds of audit work remaining."),
];

const PROBE_HELP: &str = "Probes by terminal outcome.";
const LOSS_HELP: &str = "Probe losses by injected cause.";
const READING_HELP: &str = "RTT readings rejected before geolocation, by reason.";
const PHASE1_HELP: &str = "Phase-1 landmark probing tallies by state.";
const DEFENSE_HELP: &str = "Byzantine-defense pipeline events by kind.";
const GEO_HELP: &str = "Geolocation algorithm fallbacks by kind.";
const AUDIT_HELP: &str = "Audited proxies by measurement outcome.";
const CACHE_HELP: &str = "Fill-once disk cache lookups by result.";

const fn def(
    raw: &'static str,
    family: &'static str,
    labels: &'static [(&'static str, &'static str)],
    help: &'static str,
) -> MetricDef {
    MetricDef {
        raw,
        family,
        labels,
        kind: MetricKind::Counter,
        compartment: Compartment::Deterministic,
        help,
    }
}

const fn hist_def(raw: &'static str, family: &'static str, help: &'static str) -> MetricDef {
    MetricDef {
        raw,
        family,
        labels: &[],
        kind: MetricKind::Histogram,
        compartment: Compartment::Deterministic,
        help,
    }
}

const fn dyn_def(
    family: &'static str,
    kind: MetricKind,
    label_keys: &'static [&'static str],
    compartment: Compartment,
    help: &'static str,
) -> DynamicDef {
    DynamicDef {
        family,
        kind,
        label_keys,
        compartment,
        help,
    }
}

/// The registered identity of the deterministic counter `raw`, if any.
pub fn counter(raw: &str) -> Option<&'static MetricDef> {
    COUNTERS.iter().find(|d| d.raw == raw)
}

/// The registered identity of the deterministic histogram `raw`, if any.
pub fn hist(raw: &str) -> Option<&'static MetricDef> {
    HISTS.iter().find(|d| d.raw == raw)
}

/// The registered identity of the wall counter `raw`, if any.
pub fn wall_counter(raw: &str) -> Option<&'static MetricDef> {
    WALL_COUNTERS.iter().find(|d| d.raw == raw)
}

/// Aggregated, family-level view of the registry.
#[derive(Debug, Clone)]
pub struct FamilyInfo {
    /// Exposition kind.
    pub kind: MetricKind,
    /// Label keys samples of this family may carry.
    pub label_keys: Vec<&'static str>,
    /// Determinism compartment.
    pub compartment: Compartment,
    /// `# HELP` text.
    pub help: &'static str,
}

fn family_map() -> &'static BTreeMap<&'static str, FamilyInfo> {
    static MAP: OnceLock<BTreeMap<&'static str, FamilyInfo>> = OnceLock::new();
    MAP.get_or_init(|| {
        let mut map: BTreeMap<&'static str, FamilyInfo> = BTreeMap::new();
        for d in COUNTERS.iter().chain(HISTS).chain(WALL_COUNTERS) {
            let info = map.entry(d.family).or_insert_with(|| FamilyInfo {
                kind: d.kind,
                label_keys: Vec::new(),
                compartment: d.compartment,
                help: d.help,
            });
            for (k, _) in d.labels {
                if !info.label_keys.contains(k) {
                    info.label_keys.push(k);
                }
            }
        }
        for d in DYNAMIC {
            map.entry(d.family).or_insert_with(|| FamilyInfo {
                kind: d.kind,
                label_keys: d.label_keys.to_vec(),
                compartment: d.compartment,
                help: d.help,
            });
        }
        map
    })
}

/// The family-level registry entry for `name`, if registered.
pub fn family(name: &str) -> Option<&'static FamilyInfo> {
    family_map().get(name)
}

/// All registered family names, sorted.
pub fn family_names() -> Vec<&'static str> {
    family_map().keys().copied().collect()
}

/// Lint the whole registry. Returns every violation (empty = clean);
/// the unit test below turns any violation into a build failure.
///
/// Rules enforced:
/// 1. every family name is `pv_`-prefixed lowercase snake_case;
/// 2. raw recorder names are globally unique across the counter,
///    histogram, and wall tables;
/// 3. no two static defs collide on `(family, labels)`;
/// 4. a family never mixes kinds, compartments, or label-key sets;
/// 5. label cardinality stays sane: at most one label key per family
///    and at most 16 statically registered values for it;
/// 6. every entry has help text.
pub fn lint() -> Vec<String> {
    let mut problems = Vec::new();
    let statics: Vec<&MetricDef> = COUNTERS.iter().chain(HISTS).chain(WALL_COUNTERS).collect();

    let mut raws = BTreeMap::new();
    for d in &statics {
        if let Some(prev) = raws.insert(d.raw, d.family) {
            problems.push(format!(
                "raw name {:?} registered twice ({} and {})",
                d.raw, prev, d.family
            ));
        }
    }

    let mut series = BTreeMap::new();
    for d in &statics {
        let key = (d.family, d.labels);
        if series.insert(key, d.raw).is_some() {
            problems.push(format!(
                "duplicate series {}{:?} (second raw: {:?})",
                d.family, d.labels, d.raw
            ));
        }
    }

    #[derive(PartialEq)]
    struct Shape {
        kind: MetricKind,
        compartment: Compartment,
        keys: Vec<&'static str>,
    }
    let mut shapes: BTreeMap<&str, Shape> = BTreeMap::new();
    let mut value_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &statics {
        let keys: Vec<&'static str> = d.labels.iter().map(|(k, _)| *k).collect();
        let shape = Shape {
            kind: d.kind,
            compartment: d.compartment,
            keys,
        };
        match shapes.get(d.family) {
            None => {
                shapes.insert(d.family, shape);
            }
            Some(prev) if *prev != shape => {
                problems.push(format!(
                    "family {:?} mixes kinds, compartments, or label keys",
                    d.family
                ));
            }
            Some(_) => {}
        }
        *value_counts.entry(d.family).or_insert(0) += 1;
        if d.labels.len() > 1 {
            problems.push(format!(
                "family {:?}: more than one label key invites cardinality explosions",
                d.family
            ));
        }
        if d.help.is_empty() {
            problems.push(format!("raw {:?} has no help text", d.raw));
        }
    }
    for (family, n) in value_counts {
        if n > 16 {
            problems.push(format!(
                "family {family:?} registers {n} series — cardinality explosion"
            ));
        }
    }

    let mut dynamic_names = BTreeMap::new();
    for d in DYNAMIC {
        if dynamic_names.insert(d.family, ()).is_some() {
            problems.push(format!("dynamic family {:?} registered twice", d.family));
        }
        if shapes.contains_key(d.family) {
            problems.push(format!(
                "family {:?} is both static and dynamic",
                d.family
            ));
        }
        if d.label_keys.len() > 1 {
            problems.push(format!(
                "dynamic family {:?}: more than one label key invites cardinality explosions",
                d.family
            ));
        }
        if d.help.is_empty() {
            problems.push(format!("dynamic family {:?} has no help text", d.family));
        }
    }

    for name in family_names() {
        if let Err(e) = lint_metric_name(name) {
            problems.push(e);
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The build-breaking registry lint: any duplicate, ill-formed, or
    /// cardinality-exploding registration fails here.
    #[test]
    fn registry_is_lint_clean() {
        let problems = lint();
        assert!(problems.is_empty(), "registry lint failures:\n{}", problems.join("\n"));
    }

    #[test]
    fn every_known_raw_name_resolves() {
        for d in COUNTERS {
            assert!(counter(d.raw).is_some(), "{}", d.raw);
            assert!(hist(d.raw).is_none(), "{} is not a histogram", d.raw);
        }
        for d in HISTS {
            assert!(hist(d.raw).is_some(), "{}", d.raw);
        }
        for d in WALL_COUNTERS {
            assert!(wall_counter(d.raw).is_some(), "{}", d.raw);
        }
        assert!(counter("no.such.counter").is_none());
    }

    #[test]
    fn family_view_aggregates_label_keys() {
        let probe = family("pv_probe_total").unwrap();
        assert_eq!(probe.kind, MetricKind::Counter);
        assert_eq!(probe.label_keys, ["outcome"]);
        assert_eq!(probe.compartment, Compartment::Deterministic);
        let cache = family("pv_cache_lookup_total").unwrap();
        assert_eq!(cache.compartment, Compartment::Wall);
        let spans = family("pv_span_seconds_total").unwrap();
        assert_eq!(spans.label_keys, ["path"]);
        assert!(family("pv_never_registered").is_none());
    }
}
