//! The SLO alert engine: declarative health rules evaluated over
//! exported metrics ([`MetricSet`]), optionally against a prior epoch.
//!
//! ## Rule grammar
//!
//! One rule per line:
//!
//! ```text
//! rule     := name ':' expr
//! expr     := selector op number                  (threshold rule)
//!           | selector 'spikes' 'x' number 'vs prior'   (spike rule)
//! selector := family [ '{' matcher (',' matcher)* '}' ]
//! matcher  := key '=' '"' value '"'   — exact label match
//!           | key                     — wildcard: fan out over values
//! op       := '>' | '>=' | '<' | '<='
//! ```
//!
//! Examples (the default ruleset in `vpnstudy::ops`):
//!
//! ```text
//! probe_loss: pv_probe_loss_rate > 0.3
//! retry_exhaustion: pv_retry_exhaustion_total > 25
//! suspicious_spike: pv_suspicious_rate{provider} spikes x2 vs prior
//! stale_urgent: pv_stale_urgent_verdicts > 0
//! ```
//!
//! A threshold rule fires one [`Alert`] per matching sample whose value
//! satisfies the comparison. A spike rule compares each matching sample
//! to the same-labelled sample of the prior epoch: it fires when
//! `current ≥ factor × prior` (or when the prior epoch lacks the sample
//! and the current value is positive). With no prior epoch at all,
//! spike rules are skipped. Rules over metrics absent from the set
//! do not fire — the `vpnstudy::ops` exporter zero-seeds every
//! registered family precisely so "metric missing" can never mask
//! "SLO breached".

use crate::export::MetricSet;
use std::fmt::Write as _;

/// Comparison operator of a threshold rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl Cmp {
    fn eval(self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// A label matcher inside a selector.
#[derive(Debug, Clone, PartialEq)]
pub enum Matcher {
    /// `key="value"` — exact match.
    Exact(String, String),
    /// `key` — the sample must carry the key; fan out over its values.
    Wildcard(String),
}

/// A metric selector: family name plus label matchers.
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    /// Family name.
    pub family: String,
    /// Label matchers (empty = every sample of the family).
    pub matchers: Vec<Matcher>,
}

impl Selector {
    /// All scalar samples of `set` this selector matches, as
    /// `(labels, value)`.
    fn select<'a>(&self, set: &'a MetricSet) -> Vec<(&'a [(String, String)], f64)> {
        set.samples(&self.family)
            .into_iter()
            .filter(|(labels, _)| {
                self.matchers.iter().all(|m| match m {
                    Matcher::Exact(k, v) => {
                        labels.iter().any(|(lk, lv)| lk == k && lv == v)
                    }
                    Matcher::Wildcard(k) => labels.iter().any(|(lk, _)| lk == k),
                })
            })
            .collect()
    }

    fn render(&self, labels: &[(String, String)]) -> String {
        let mut out = self.family.clone();
        if !labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{v}\"");
            }
            out.push('}');
        }
        out
    }
}

/// The body of a rule.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleExpr {
    /// `selector op number`.
    Threshold {
        /// What to measure.
        selector: Selector,
        /// How to compare.
        cmp: Cmp,
        /// Against what.
        value: f64,
    },
    /// `selector spikes xN vs prior`.
    Spike {
        /// What to measure.
        selector: Selector,
        /// Fire at `current ≥ factor × prior`.
        factor: f64,
    },
}

/// One named SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (appears on every alert it raises).
    pub name: String,
    /// The rule body.
    pub expr: RuleExpr,
}

impl Rule {
    /// Parse one rule line (see the module docs for the grammar).
    pub fn parse(line: &str) -> Result<Rule, String> {
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| format!("rule {line:?}: missing ':' after the rule name"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("rule {line:?}: empty rule name"));
        }
        let rest = rest.trim();
        let (selector, rest) = parse_selector(rest)?;
        let rest = rest.trim_start();
        if let Some(spec) = rest.strip_prefix("spikes") {
            let spec = spec.trim();
            let spec = spec
                .strip_prefix('x')
                .ok_or_else(|| format!("rule {name}: expected xN after 'spikes', got {spec:?}"))?;
            let (num, tail) = spec.split_once(' ').unwrap_or((spec, ""));
            let factor: f64 = num
                .parse()
                .map_err(|_| format!("rule {name}: bad spike factor {num:?}"))?;
            if tail.trim() != "vs prior" {
                return Err(format!("rule {name}: spike rules must end with 'vs prior'"));
            }
            if factor.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("rule {name}: spike factor must exceed 1"));
            }
            return Ok(Rule {
                name: name.to_string(),
                expr: RuleExpr::Spike { selector, factor },
            });
        }
        let (cmp, rest) = if let Some(r) = rest.strip_prefix(">=") {
            (Cmp::Ge, r)
        } else if let Some(r) = rest.strip_prefix("<=") {
            (Cmp::Le, r)
        } else if let Some(r) = rest.strip_prefix('>') {
            (Cmp::Gt, r)
        } else if let Some(r) = rest.strip_prefix('<') {
            (Cmp::Lt, r)
        } else {
            return Err(format!(
                "rule {name}: expected an operator (>, >=, <, <=) or 'spikes', got {rest:?}"
            ));
        };
        let num = rest.trim();
        let value: f64 = num
            .parse()
            .map_err(|_| format!("rule {name}: bad threshold {num:?}"))?;
        Ok(Rule {
            name: name.to_string(),
            expr: RuleExpr::Threshold {
                selector,
                cmp,
                value,
            },
        })
    }
}

fn parse_selector(s: &str) -> Result<(Selector, &str), String> {
    let name_end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(s.len());
    if name_end == 0 {
        return Err(format!("expected a metric name, got {s:?}"));
    }
    let family = s[..name_end].to_string();
    let mut rest = &s[name_end..];
    let mut matchers = Vec::new();
    if let Some(inner) = rest.strip_prefix('{') {
        let close = inner
            .find('}')
            .ok_or_else(|| format!("selector {family}: unterminated '{{'"))?;
        for part in inner[..close].split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(format!("selector {family}: empty label matcher"));
            }
            match part.split_once('=') {
                None => matchers.push(Matcher::Wildcard(part.to_string())),
                Some((k, v)) => {
                    let v = v.trim();
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| {
                            format!("selector {family}: label value must be double-quoted, got {v:?}")
                        })?;
                    matchers.push(Matcher::Exact(k.trim().to_string(), v.to_string()));
                }
            }
        }
        rest = &inner[close + 1..];
    }
    Ok((Selector { family, matchers }, rest))
}

/// Parse a ruleset: one rule per line, blank lines and `#` comments
/// skipped.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(Rule::parse)
        .collect()
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The rule that fired.
    pub rule: String,
    /// The fully-labelled metric that breached.
    pub metric: String,
    /// The observed value.
    pub observed: f64,
    /// The threshold (or `factor × prior` for spike rules).
    pub threshold: f64,
    /// Human-readable one-liner.
    pub detail: String,
}

impl Alert {
    /// Render as one report line.
    pub fn render_line(&self) -> String {
        format!("ALERT {:<24} {}", self.rule, self.detail)
    }
}

/// Evaluate `rules` over `current`, with `prior` as the previous epoch
/// for spike rules. With no prior epoch, spike rules are skipped — a
/// first run has no baseline to regress against; a prior epoch that
/// lacks a particular sample treats that baseline as zero. Alerts are
/// returned in rule order, then sample order — fully deterministic for
/// a deterministic `MetricSet`.
pub fn evaluate(rules: &[Rule], current: &MetricSet, prior: Option<&MetricSet>) -> Vec<Alert> {
    let mut alerts = Vec::new();
    for rule in rules {
        match &rule.expr {
            RuleExpr::Threshold {
                selector,
                cmp,
                value,
            } => {
                for (labels, observed) in selector.select(current) {
                    if cmp.eval(observed, *value) {
                        let metric = selector.render(labels);
                        alerts.push(Alert {
                            rule: rule.name.clone(),
                            metric: metric.clone(),
                            observed,
                            threshold: *value,
                            detail: format!("{metric} = {observed} {} {value}", cmp.as_str()),
                        });
                    }
                }
            }
            RuleExpr::Spike { selector, factor } => {
                // No prior epoch at all: there is no baseline to spike
                // against, so the rule stays silent (a first run is not
                // a regression). A prior epoch that merely lacks the
                // sample is different — see `prior_value` below.
                let Some(prior) = prior else { continue };
                for (labels, observed) in selector.select(current) {
                    let label_refs: Vec<(&str, &str)> = labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .collect();
                    // Sample absent from the prior epoch (e.g. a newly
                    // appeared provider): treat the baseline as zero,
                    // so any positive current value fires.
                    let prior_value = prior
                        .value(&selector.family, &label_refs)
                        .unwrap_or(0.0);
                    let fires = if prior_value <= 0.0 {
                        observed > 0.0
                    } else {
                        observed >= factor * prior_value
                    };
                    if fires {
                        let metric = selector.render(labels);
                        alerts.push(Alert {
                            rule: rule.name.clone(),
                            metric: metric.clone(),
                            observed,
                            threshold: factor * prior_value,
                            detail: format!(
                                "{metric} = {observed} spiked x{factor} vs prior {prior_value}"
                            ),
                        });
                    }
                }
            }
        }
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn set(samples: &[(&str, &[(&str, &str)], f64)]) -> MetricSet {
        let mut s = MetricSet::new();
        for (name, labels, v) in samples {
            s.set_gauge(name, "", labels, *v);
        }
        s
    }

    #[test]
    fn parses_threshold_rules() {
        let r = Rule::parse("probe_loss: pv_probe_loss_rate > 0.3").unwrap();
        assert_eq!(r.name, "probe_loss");
        assert_eq!(
            r.expr,
            RuleExpr::Threshold {
                selector: Selector {
                    family: "pv_probe_loss_rate".into(),
                    matchers: vec![],
                },
                cmp: Cmp::Gt,
                value: 0.3,
            }
        );
        let r = Rule::parse("x: pv_thing{outcome=\"timeout\"} >= 10").unwrap();
        match r.expr {
            RuleExpr::Threshold { selector, cmp, value } => {
                assert_eq!(
                    selector.matchers,
                    vec![Matcher::Exact("outcome".into(), "timeout".into())]
                );
                assert_eq!(cmp, Cmp::Ge);
                assert_eq!(value, 10.0);
            }
            other => panic!("wrong expr: {other:?}"),
        }
    }

    #[test]
    fn parses_spike_rules_with_wildcards() {
        let r = Rule::parse("suspicious_spike: pv_suspicious_rate{provider} spikes x2 vs prior")
            .unwrap();
        assert_eq!(
            r.expr,
            RuleExpr::Spike {
                selector: Selector {
                    family: "pv_suspicious_rate".into(),
                    matchers: vec![Matcher::Wildcard("provider".into())],
                },
                factor: 2.0,
            }
        );
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "no_colon pv_x > 1",
            ": pv_x > 1",
            "r: pv_x ~ 1",
            "r: pv_x > one",
            "r: pv_x{k=unquoted} > 1",
            "r: pv_x{unclosed > 1",
            "r: pv_x spikes 2 vs prior",
            "r: pv_x spikes x2",
            "r: pv_x spikes x0.5 vs prior",
        ] {
            assert!(Rule::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn ruleset_skips_comments_and_blanks() {
        let rules = parse_rules("# health rules\n\nalpha: pv_a > 1\nbeta: pv_b < 0.5\n").unwrap();
        assert_eq!(rules.len(), 2);
        assert!(parse_rules("broken line\n").is_err());
    }

    #[test]
    fn threshold_rules_fire_per_matching_sample() {
        let current = set(&[
            ("pv_probe_loss_rate", &[], 0.4),
            ("pv_suspicious_rate", &[("provider", "alpha")], 0.1),
            ("pv_suspicious_rate", &[("provider", "beta")], 0.9),
        ]);
        let rules = parse_rules(
            "loss: pv_probe_loss_rate > 0.3\nsus: pv_suspicious_rate{provider} > 0.5\nquiet: pv_probe_loss_rate > 0.99\n",
        )
        .unwrap();
        let alerts = evaluate(&rules, &current, None);
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert_eq!(alerts[0].rule, "loss");
        assert_eq!(alerts[1].rule, "sus");
        assert_eq!(alerts[1].metric, "pv_suspicious_rate{provider=\"beta\"}");
        assert!(alerts[1].render_line().contains("ALERT"));
    }

    #[test]
    fn exact_matchers_filter_samples() {
        let current = set(&[
            ("pv_probe_total", &[("outcome", "timeout")], 50.0),
            ("pv_probe_total", &[("outcome", "sent")], 100.0),
        ]);
        let rules = parse_rules("t: pv_probe_total{outcome=\"timeout\"} > 10\n").unwrap();
        let alerts = evaluate(&rules, &current, None);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].observed, 50.0);
    }

    #[test]
    fn spike_rules_compare_against_prior_epoch() {
        let prior = set(&[
            ("pv_suspicious_rate", &[("provider", "alpha")], 0.2),
            ("pv_suspicious_rate", &[("provider", "beta")], 0.0),
        ]);
        let current = set(&[
            ("pv_suspicious_rate", &[("provider", "alpha")], 0.5),
            ("pv_suspicious_rate", &[("provider", "beta")], 0.1),
            ("pv_suspicious_rate", &[("provider", "gamma")], 0.0),
        ]);
        let rules =
            parse_rules("spike: pv_suspicious_rate{provider} spikes x2 vs prior\n").unwrap();
        let alerts = evaluate(&rules, &current, Some(&prior));
        // alpha: 0.5 ≥ 2×0.2 → fires. beta: prior 0, current 0.1 → fires.
        // gamma: current 0 → quiet.
        assert_eq!(alerts.len(), 2, "{alerts:?}");
        assert_eq!(alerts[0].metric, "pv_suspicious_rate{provider=\"alpha\"}");
        assert_eq!(alerts[1].metric, "pv_suspicious_rate{provider=\"beta\"}");
        // Without a prior epoch there is no baseline: spike rules stay
        // silent rather than flagging every first run.
        assert!(evaluate(&rules, &current, None).is_empty());
        // Below the factor: quiet.
        let calm = set(&[("pv_suspicious_rate", &[("provider", "alpha")], 0.3)]);
        assert!(evaluate(&rules, &calm, Some(&prior)).is_empty());
    }

    #[test]
    fn missing_metric_is_quiet() {
        let rules = parse_rules("ghost: pv_never_exported > 0\n").unwrap();
        assert!(evaluate(&rules, &MetricSet::new(), None).is_empty());
    }
}
