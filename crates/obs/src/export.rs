//! OpenMetrics-flavoured text exposition: a zero-dependency writer and
//! parser for the Prometheus/OpenMetrics line format.
//!
//! The writer ([`MetricSet`]) renders counters, gauges, and power-of-two
//! [`Hist`]ograms under stable, linted metric names with labels, ending
//! with the OpenMetrics `# EOF` terminator so scrapers can detect
//! truncation. The parser ([`parse_exposition`]) is the syntax oracle
//! used by tests and CI: everything the writer emits must round-trip
//! through it byte-for-byte ([`Exposition::render`]).
//!
//! Determinism contract: a `MetricSet` renders its families and samples
//! in sorted order, so two sets built from the same deterministic
//! counters are byte-identical regardless of insertion order. CI
//! byte-diffs the deterministic subset (see
//! [`MetricSet::render_filtered`]) across `PV_THREADS` values.

use crate::json;
use crate::registry;
use crate::Hist;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The exposition type of one metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// The keyword used on `# TYPE` lines.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// A scalar sample value: u64 counters keep full precision, gauges are
/// `f64` (rendered by shortest round-trip, so identical bits render
/// identically).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Scalar {
    U(u64),
    F(f64),
}

impl Scalar {
    fn write(self, out: &mut String) {
        match self {
            Scalar::U(v) => {
                let _ = write!(out, "{v}");
            }
            Scalar::F(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Scalar::F(v) if v.is_nan() => out.push_str("NaN"),
            Scalar::F(v) if v > 0.0 => out.push_str("+Inf"),
            Scalar::F(_) => out.push_str("-Inf"),
        }
    }

    fn as_f64(self) -> f64 {
        match self {
            Scalar::U(v) => v as f64,
            Scalar::F(v) => v,
        }
    }
}

type Labels = Vec<(String, String)>;

#[derive(Debug, Default)]
struct Family {
    kind: Option<MetricKind>,
    help: String,
    scalars: BTreeMap<Labels, Scalar>,
    hists: BTreeMap<Labels, Hist>,
}

/// An in-memory set of metric families, rendered to the text exposition
/// format with [`render`](MetricSet::render).
#[derive(Debug, Default)]
pub struct MetricSet {
    families: BTreeMap<String, Family>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    fn family(&mut self, name: &str, kind: MetricKind, help: &str) -> &mut Family {
        let f = self.families.entry(name.to_string()).or_default();
        match f.kind {
            None => f.kind = Some(kind),
            Some(k) => assert_eq!(
                k, kind,
                "metric family {name:?} registered as {} and {}",
                k.as_str(),
                kind.as_str()
            ),
        }
        if f.help.is_empty() {
            f.help = help.to_string();
        }
        f
    }

    /// Add `value` to the counter sample `name{labels}` (creating it at
    /// zero first).
    pub fn add_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let key = owned_labels(labels);
        let f = self.family(name, MetricKind::Counter, help);
        let e = f.scalars.entry(key).or_insert(Scalar::U(0));
        match e {
            Scalar::U(v) => *v += value,
            Scalar::F(v) => *v += value as f64,
        }
    }

    /// Set the gauge sample `name{labels}`.
    pub fn set_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let key = owned_labels(labels);
        self.family(name, MetricKind::Gauge, help)
            .scalars
            .insert(key, Scalar::F(value));
    }

    /// Set the gauge sample `name{labels}` to an exact integer.
    pub fn set_gauge_u64(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let key = owned_labels(labels);
        self.family(name, MetricKind::Gauge, help)
            .scalars
            .insert(key, Scalar::U(value));
    }

    /// Merge `hist` into the histogram sample `name{labels}`.
    pub fn add_hist(&mut self, name: &str, help: &str, labels: &[(&str, &str)], hist: &Hist) {
        let key = owned_labels(labels);
        self.family(name, MetricKind::Histogram, help)
            .hists
            .entry(key)
            .or_default()
            .merge(hist);
    }

    /// The scalar sample `name{labels}` (counters and gauges), if set.
    /// Labels match regardless of order.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = owned_labels(labels);
        self.families
            .get(name)?
            .scalars
            .get(&key)
            .map(|s| s.as_f64())
    }

    /// The histogram sample `name{labels}`, if set.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Hist> {
        let key = owned_labels(labels);
        self.families.get(name)?.hists.get(&key)
    }

    /// Every scalar sample of family `name` as `(labels, value)` pairs,
    /// sorted by labels. Empty when the family is absent or histogram.
    pub fn samples(&self, name: &str) -> Vec<(&[(String, String)], f64)> {
        match self.families.get(name) {
            None => Vec::new(),
            Some(f) => f
                .scalars
                .iter()
                .map(|(k, v)| (k.as_slice(), v.as_f64()))
                .collect(),
        }
    }

    /// The family names present, sorted.
    pub fn family_names(&self) -> Vec<&str> {
        self.families.keys().map(String::as_str).collect()
    }

    /// The kind of family `name`, if present.
    pub fn kind(&self, name: &str) -> Option<MetricKind> {
        self.families.get(name).and_then(|f| f.kind)
    }

    /// Render the full exposition, `# EOF`-terminated.
    pub fn render(&self) -> String {
        self.render_filtered(|_| true)
    }

    /// Render only the families `keep` accepts (still `# EOF`
    /// terminated). CI uses this to byte-diff the deterministic subset
    /// across thread counts while the wall-clock families float free.
    pub fn render_filtered(&self, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        for (name, f) in &self.families {
            if !keep(name) {
                continue;
            }
            let kind = f.kind.expect("family always has a kind once created");
            let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
            if !f.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&f.help));
            }
            for (labels, v) in &f.scalars {
                out.push_str(name);
                write_labels(&mut out, labels, &[]);
                out.push(' ');
                v.write(&mut out);
                out.push('\n');
            }
            for (labels, h) in &f.hists {
                let mut cum = 0u64;
                for (&b, &n) in &h.buckets {
                    cum += n;
                    let le = match b {
                        0 => 0u64,
                        64.. => u64::MAX,
                        _ => (1u64 << b) - 1,
                    };
                    let _ = write!(out, "{name}_bucket");
                    write_labels(&mut out, labels, &[("le", &le.to_string())]);
                    let _ = writeln!(out, " {cum}");
                }
                let _ = write!(out, "{name}_bucket");
                write_labels(&mut out, labels, &[("le", "+Inf")]);
                let _ = writeln!(out, " {}", h.count);
                let _ = write!(out, "{name}_sum");
                write_labels(&mut out, labels, &[]);
                let _ = writeln!(out, " {}", h.sum);
                let _ = write!(out, "{name}_count");
                write_labels(&mut out, labels, &[]);
                let _ = writeln!(out, " {}", h.count);
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Check every family against the [`registry`]: the name must be
    /// registered, lint-clean, and carry only its registered label
    /// keys. Returns the list of violations (empty = clean).
    pub fn lint_against_registry(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (name, f) in &self.families {
            if let Err(e) = lint_metric_name(name) {
                problems.push(e);
            }
            let Some(def) = registry::family(name) else {
                problems.push(format!(
                    "family {name:?} is not registered in obs::registry"
                ));
                continue;
            };
            if let Some(kind) = f.kind {
                if kind != def.kind {
                    problems.push(format!(
                        "family {name:?} exported as {} but registered as {}",
                        kind.as_str(),
                        def.kind.as_str()
                    ));
                }
            }
            for labels in f.scalars.keys().chain(f.hists.keys()) {
                for (k, _) in labels {
                    if !def.label_keys.contains(&k.as_str()) {
                        problems.push(format!(
                            "family {name:?} carries unregistered label key {k:?}"
                        ));
                    }
                }
            }
        }
        problems
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: &[(&str, &str)]) {
    if labels.is_empty() && extra.is_empty() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push('=');
        out.push_str(&escape_label(v));
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn escape_help(h: &str) -> String {
    h.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Lint one metric family name: lowercase snake_case, `pv_`-prefixed,
/// no leading/trailing/double underscores.
pub fn lint_metric_name(name: &str) -> Result<(), String> {
    if !name.starts_with("pv_") {
        return Err(format!("metric {name:?} must carry the pv_ crate prefix"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return Err(format!("metric {name:?} must be lowercase snake_case"));
    }
    if name.contains("__") || name.ends_with('_') {
        return Err(format!(
            "metric {name:?} has empty snake_case segments"
        ));
    }
    Ok(())
}

// --- parser ----------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name as written (`pv_x`, `pv_x_bucket`, …).
    pub name: String,
    /// Labels in document order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
    /// The value's exact source text (integers above 2^53 do not
    /// survive the `f64` model, so re-rendering uses this).
    pub raw_value: String,
}

/// One parsed metric family.
#[derive(Debug, Clone)]
pub struct ParsedFamily {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// Declared kind.
    pub kind: MetricKind,
    /// `# HELP` text, if present.
    pub help: Option<String>,
    /// The family's samples, in document order.
    pub samples: Vec<ParsedSample>,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Families in document order.
    pub families: Vec<ParsedFamily>,
}

impl Exposition {
    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&ParsedFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The value of sample `name{labels}` (label order-insensitive).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        for f in &self.families {
            for s in &f.samples {
                if s.name == name {
                    let mut have = s.labels.clone();
                    have.sort();
                    if have == want {
                        return Some(s.value);
                    }
                }
            }
        }
        None
    }

    /// Total sample lines across all families.
    pub fn sample_count(&self) -> usize {
        self.families.iter().map(|f| f.samples.len()).sum()
    }

    /// Re-render the parsed document. For everything the in-repo writer
    /// emits, `render(parse(text)) == text` — the round-trip CI checks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            if let Some(h) = &f.help {
                let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(h));
            }
            for s in &f.samples {
                out.push_str(&s.name);
                write_labels(&mut out, &s.labels, &[]);
                out.push(' ');
                out.push_str(&s.raw_value);
                out.push('\n');
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Parse a text exposition. Validates the grammar, that every sample
/// belongs to a `# TYPE`-declared family (histogram families own their
/// `_bucket`/`_sum`/`_count` series), and that the document ends with
/// `# EOF`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut doc = Exposition::default();
    let mut saw_eof = false;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if saw_eof {
            return Err(format!("line {ln}: content after # EOF"));
        }
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {ln}: malformed # TYPE"))?;
            let kind = MetricKind::parse(kind.trim())
                .ok_or_else(|| format!("line {ln}: unknown metric kind {kind:?}"))?;
            if doc.family(name).is_some() {
                return Err(format!("line {ln}: duplicate # TYPE for {name:?}"));
            }
            doc.families.push(ParsedFamily {
                name: name.to_string(),
                kind,
                help: None,
                samples: Vec::new(),
            });
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {ln}: malformed # HELP"))?;
            let fam = doc
                .families
                .iter_mut()
                .find(|f| f.name == name)
                .ok_or_else(|| format!("line {ln}: # HELP for undeclared family {name:?}"))?;
            fam.help = Some(help.to_string());
            continue;
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let sample = parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        let owner = doc
            .families
            .iter_mut()
            .find(|f| sample_belongs(&f.name, f.kind, &sample.name))
            .ok_or_else(|| {
                format!("line {ln}: sample {:?} has no declared family", sample.name)
            })?;
        owner.samples.push(sample);
    }
    if !saw_eof {
        return Err("missing # EOF terminator".into());
    }
    Ok(doc)
}

fn sample_belongs(family: &str, kind: MetricKind, sample: &str) -> bool {
    match kind {
        MetricKind::Counter | MetricKind::Gauge => sample == family,
        MetricKind::Histogram => {
            sample
                .strip_prefix(family)
                .is_some_and(|rest| matches!(rest, "_bucket" | "_sum" | "_count"))
        }
    }
}

fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    while pos < bytes.len()
        && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_' || bytes[pos] == b':')
    {
        pos += 1;
    }
    if pos == 0 {
        return Err(format!("expected sample name in {line:?}"));
    }
    let name = line[..pos].to_string();
    let mut labels = Vec::new();
    if bytes.get(pos) == Some(&b'{') {
        pos += 1;
        loop {
            if bytes.get(pos) == Some(&b'}') {
                pos += 1;
                break;
            }
            let key_start = pos;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            if pos == key_start {
                return Err(format!("expected label key at byte {pos}"));
            }
            let key = line[key_start..pos].to_string();
            if bytes.get(pos) != Some(&b'=') {
                return Err(format!("expected '=' at byte {pos}"));
            }
            pos += 1;
            if bytes.get(pos) != Some(&b'"') {
                return Err(format!("expected '\"' at byte {pos}"));
            }
            pos += 1;
            let mut value = String::new();
            loop {
                match bytes.get(pos) {
                    None => return Err("unterminated label value".into()),
                    Some(b'"') => {
                        pos += 1;
                        break;
                    }
                    Some(b'\\') => {
                        pos += 1;
                        match bytes.get(pos) {
                            Some(b'"') => value.push('"'),
                            Some(b'\\') => value.push('\\'),
                            Some(b'n') => value.push('\n'),
                            other => {
                                return Err(format!("bad label escape {other:?}"));
                            }
                        }
                        pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar, not one byte.
                        let c = line[pos..].chars().next().expect("in-bounds char");
                        value.push(c);
                        pos += c.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {}
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    let rest = line[pos..].trim();
    let value = match rest {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        n => n
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {n:?}"))?,
    };
    Ok(ParsedSample {
        name,
        labels,
        value,
        raw_value: rest.to_string(),
    })
}

// --- recorder bridge -------------------------------------------------------

/// Build a [`MetricSet`] from everything a [`Recorder`](crate::Recorder)
/// holds, mapped through the [`registry`]:
///
/// * deterministic counters and histograms (pre-seeded at zero for every
///   registered series, so the exported schema is run-independent),
/// * wall counters,
/// * wall-span and profile-tree stats under the dynamic
///   `pv_span_*`/`pv_wall_span_*` families (`path`/`name` labels).
///
/// Errors on a counter or histogram name that is not in the registry —
/// the build-breaking teeth behind the "register your metric" rule.
pub fn recorder_metrics(rec: &crate::Recorder) -> Result<MetricSet, String> {
    let mut set = MetricSet::new();
    for def in registry::COUNTERS {
        set.add_counter(def.family, def.help, def.labels, 0);
    }
    for def in registry::WALL_COUNTERS {
        match def.kind {
            MetricKind::Counter => set.add_counter(def.family, def.help, def.labels, 0),
            MetricKind::Gauge => set.set_gauge_u64(def.family, def.help, def.labels, 0),
            MetricKind::Histogram => unreachable!("wall counters are scalar"),
        }
    }
    for (raw, v) in rec.counters() {
        let def = registry::counter(raw)
            .ok_or_else(|| format!("unregistered counter {raw:?}: add it to obs::registry"))?;
        set.add_counter(def.family, def.help, def.labels, v);
    }
    for (raw, h) in rec.hists() {
        let def = registry::hist(raw)
            .ok_or_else(|| format!("unregistered histogram {raw:?}: add it to obs::registry"))?;
        set.add_hist(def.family, def.help, def.labels, &h);
    }
    for (raw, v) in rec.wall_counters() {
        let def = registry::wall_counter(raw)
            .ok_or_else(|| format!("unregistered wall counter {raw:?}: add it to obs::registry"))?;
        match def.kind {
            MetricKind::Counter => set.add_counter(def.family, def.help, def.labels, v),
            MetricKind::Gauge => set.set_gauge_u64(def.family, def.help, def.labels, v),
            MetricKind::Histogram => unreachable!("wall counters are scalar"),
        }
    }
    for (name, w) in rec.wall_spans() {
        set.add_counter(
            "pv_wall_span_calls_total",
            "Completed wall-clock spans by name.",
            &[("name", name)],
            w.count,
        );
        set.set_gauge(
            "pv_wall_span_seconds_total",
            "Summed wall-clock span time by name.",
            &[("name", name)],
            w.total_ns as f64 / 1e9,
        );
    }
    for (path, p) in rec.profile() {
        let path = path.as_str();
        set.add_counter(
            "pv_span_calls_total",
            "Completed profile spans by tree path.",
            &[("path", path)],
            p.count,
        );
        set.set_gauge(
            "pv_span_seconds_total",
            "Cumulative profile span time by tree path.",
            &[("path", path)],
            p.cum_ns as f64 / 1e9,
        );
        set.set_gauge(
            "pv_span_self_seconds_total",
            "Self (non-child) profile span time by tree path.",
            &[("path", path)],
            p.self_ns as f64 / 1e9,
        );
    }
    Ok(set)
}

/// True for families registered as deterministic — the subset CI
/// byte-diffs across thread counts.
pub fn deterministic_family(name: &str) -> bool {
    registry::family(name)
        .is_some_and(|def| def.compartment == registry::Compartment::Deterministic)
}

/// Serialize a `MetricSet` summary of each histogram family as JSON
/// quantile estimates (p50/p90/p99 plus count/sum), for human reports.
pub fn hist_summary_json(name: &str, h: &Hist) -> String {
    let q = |p: f64| h.quantile(p).unwrap_or(0);
    format!(
        "{{\"name\":{},\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        json::json_str(name),
        h.count,
        h.sum,
        q(0.50),
        q(0.90),
        q(0.99)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Recorder};

    fn sample_set() -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter(
            "pv_probe_total",
            "Probes by outcome.",
            &[("outcome", "sent")],
            41,
        );
        set.add_counter(
            "pv_probe_total",
            "Probes by outcome.",
            &[("outcome", "timeout")],
            1,
        );
        set.set_gauge("pv_progress_ratio", "Done fraction.", &[], 0.75);
        let mut h = Hist::default();
        for v in [0u64, 1, 5, 900, u64::MAX] {
            h.record(v);
        }
        set.add_hist("pv_probe_rtt_microseconds", "Probe RTTs.", &[], &h);
        set
    }

    #[test]
    fn render_is_sorted_and_eof_terminated() {
        let txt = sample_set().render();
        assert!(txt.ends_with("# EOF\n"), "{txt}");
        let probe = txt.find("# TYPE pv_probe_total counter").unwrap();
        let rtt = txt.find("# TYPE pv_probe_rtt_microseconds histogram").unwrap();
        let ratio = txt.find("# TYPE pv_progress_ratio gauge").unwrap();
        assert!(rtt < probe && probe < ratio, "families must sort:\n{txt}");
        assert!(txt.contains("pv_probe_total{outcome=\"sent\"} 41"));
        assert!(txt.contains("pv_progress_ratio 0.75"));
        // Histogram: cumulative buckets, +Inf, sum, count.
        assert!(txt.contains("pv_probe_rtt_microseconds_bucket{le=\"0\"} 1"));
        assert!(txt.contains("pv_probe_rtt_microseconds_bucket{le=\"+Inf\"} 5"));
        assert!(txt.contains("pv_probe_rtt_microseconds_count 5"));
    }

    #[test]
    fn exposition_round_trips_byte_for_byte() {
        let txt = sample_set().render();
        let parsed = parse_exposition(&txt).expect("writer output must parse");
        assert_eq!(parsed.render(), txt, "parse→render must be the identity");
        assert_eq!(
            parsed.value("pv_probe_total", &[("outcome", "sent")]),
            Some(41.0)
        );
        assert_eq!(parsed.value("pv_progress_ratio", &[]), Some(0.75));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for (doc, why) in [
            ("pv_x 1\n# EOF\n", "sample without TYPE"),
            ("# TYPE pv_x counter\npv_x 1\n", "missing EOF"),
            ("# TYPE pv_x counter\n# TYPE pv_x counter\n# EOF\n", "dup TYPE"),
            ("# TYPE pv_x wibble\n# EOF\n", "bad kind"),
            ("# TYPE pv_x counter\npv_x{o=\"a} 1\n# EOF\n", "unterminated label"),
            ("# TYPE pv_x counter\npv_x one\n# EOF\n", "bad value"),
            ("# EOF\nleftover\n", "content after EOF"),
            ("# TYPE pv_x gauge\npv_x_bucket{le=\"1\"} 1\n# EOF\n", "bucket under gauge"),
        ] {
            assert!(parse_exposition(doc).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn label_escapes_round_trip() {
        let mut set = MetricSet::new();
        set.set_gauge(
            "pv_test_gauge",
            "",
            &[("name", "we\"ird\\path\nend")],
            1.0,
        );
        let txt = set.render();
        let parsed = parse_exposition(&txt).unwrap();
        assert_eq!(
            parsed.value("pv_test_gauge", &[("name", "we\"ird\\path\nend")]),
            Some(1.0)
        );
        assert_eq!(parsed.render(), txt);
    }

    #[test]
    fn labels_are_order_insensitive_and_sorted_on_render() {
        let mut set = MetricSet::new();
        set.add_counter("pv_x_total", "", &[("b", "2"), ("a", "1")], 3);
        set.add_counter("pv_x_total", "", &[("a", "1"), ("b", "2")], 4);
        assert_eq!(set.value("pv_x_total", &[("b", "2"), ("a", "1")]), Some(7.0));
        assert!(set.render().contains("pv_x_total{a=\"1\",b=\"2\"} 7"));
    }

    #[test]
    fn name_lint_accepts_registry_style_names() {
        assert!(lint_metric_name("pv_probe_total").is_ok());
        assert!(lint_metric_name("pv_probe_rtt_microseconds").is_ok());
        for bad in [
            "probe_total",      // no prefix
            "pv_Probe_total",   // uppercase
            "pv_probe-total",   // dash
            "pv__probe",        // empty segment
            "pv_probe_",        // trailing underscore
        ] {
            assert!(lint_metric_name(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn recorder_metrics_maps_registered_names_and_rejects_strays() {
        let rec = Recorder::new(Level::Counters);
        rec.count("net.probe.sent", 7);
        rec.count("net.probe.timeout", 2);
        rec.record("net.probe.rtt_us", 1500);
        rec.wall_count("cache.disk.hits", 3);
        let set = recorder_metrics(&rec).expect("all names registered");
        assert_eq!(set.value("pv_probe_total", &[("outcome", "sent")]), Some(7.0));
        assert_eq!(
            set.value("pv_probe_total", &[("outcome", "timeout")]),
            Some(2.0)
        );
        // Pre-seeded zero for a registered-but-unseen series.
        assert_eq!(
            set.value("pv_probe_total", &[("outcome", "completed")]),
            Some(0.0)
        );
        assert_eq!(
            set.value("pv_cache_lookup_total", &[("result", "hit")]),
            Some(3.0)
        );
        assert!(set.hist("pv_probe_rtt_microseconds", &[]).is_some());
        assert!(set.lint_against_registry().is_empty());

        let stray = Recorder::new(Level::Counters);
        stray.count("nobody.registered.this", 1);
        let err = recorder_metrics(&stray).unwrap_err();
        assert!(err.contains("nobody.registered.this"), "{err}");
    }

    #[test]
    fn deterministic_subset_excludes_wall_families() {
        let rec = Recorder::new(Level::Counters);
        rec.count("net.probe.sent", 1);
        rec.wall_count("cache.disk.hits", 1);
        drop(rec.span("w"));
        let set = recorder_metrics(&rec).unwrap();
        let det = set.render_filtered(deterministic_family);
        assert!(det.contains("pv_probe_total"));
        assert!(!det.contains("pv_cache_lookup_total"), "wall family leaked:\n{det}");
        assert!(!det.contains("pv_wall_span"), "span family leaked:\n{det}");
        assert!(parse_exposition(&det).is_ok(), "subset must still parse");
    }

    #[test]
    fn hist_summary_json_is_valid_json() {
        let mut h = Hist::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let js = hist_summary_json("net.probe.rtt_us", &h);
        let parsed = crate::json::Json::parse(&js).expect("valid json");
        assert_eq!(parsed.get("count").and_then(|j| j.as_f64()), Some(4.0));
    }
}
