//! Live progress snapshots for long-running audits.
//!
//! The sharded audit master drives a set of [`ProgressSink`]s at
//! deterministic intervals — every `k` proxies in **global proxy
//! order** — handing each a [`ProgressSnapshot`]. Snapshots carry two
//! compartments, mirroring the [`Recorder`](crate::Recorder) split:
//!
//! * the **deterministic** fields (proxies done, probes sent, retries,
//!   timeouts, per-outcome tallies, the sim-clock stamp) are a pure
//!   function of `(seed, k)`. Per-proxy stat deltas are captured in
//!   each shard's absorb loop (already proxy-ordered), carried through
//!   the merge, and folded in shard-range order — so the snapshot
//!   stream is byte-identical across any `PV_SHARDS × PV_THREADS`
//!   combination, and CI diffs the JSONL rendering
//!   ([`ProgressSnapshot::deterministic_jsonl`]) exactly like the event
//!   trace;
//! * the **wall** fields ([`WallProgress`]: elapsed, ETA, cache hit
//!   ratio) are genuine operational telemetry and never appear in the
//!   deterministic rendering.
//!
//! Two sinks ship in-tree: [`JsonlSink`] (line-per-snapshot, the thing
//! `figures ops` writes to disk) and [`RingSink`] (bounded in-memory
//! ring, the thing a live status endpoint would poll).

use std::collections::VecDeque;
use std::fmt::Write as _;

/// How one audited proxy resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyOutcome {
    /// Enough observations to geolocate.
    Measured,
    /// Responsive but below the observation floor.
    Insufficient,
    /// Never produced a usable measurement.
    Unmeasurable,
}

/// The deterministic per-proxy delta captured by a shard's absorb loop
/// just before the proxy's trace folds into the shard recorder.
#[derive(Debug, Clone, Copy)]
pub struct ProxyStat {
    /// The proxy's node id.
    pub node: u32,
    /// Sim clock after the proxy finished, nanoseconds.
    pub sim_now_ns: u64,
    /// Probes this proxy's measurement sent.
    pub probes_sent: u64,
    /// Probes that timed out.
    pub probes_timeout: u64,
    /// Retries the reliability layer scheduled.
    pub retries: u64,
    /// How the audit classified the proxy.
    pub outcome: ProxyOutcome,
}

/// One progress snapshot. All cumulative fields count from the start of
/// the study, not the previous snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgressSnapshot {
    /// Snapshot index, 0-based.
    pub seq: u64,
    /// Proxies audited so far (global deterministic order).
    pub proxies_done: u64,
    /// Total proxies in the study.
    pub proxies_total: u64,
    /// Sim clock of the most recently folded proxy, nanoseconds.
    pub sim_now_ns: u64,
    /// Probes sent so far.
    pub probes_sent: u64,
    /// Probe timeouts so far.
    pub probes_timeout: u64,
    /// Retries scheduled so far.
    pub retries: u64,
    /// Proxies measured so far.
    pub measured: u64,
    /// Proxies with insufficient data so far.
    pub insufficient: u64,
    /// Proxies unmeasurable so far.
    pub unmeasurable: u64,
    /// Wall-clock compartment — excluded from the deterministic
    /// rendering and from every determinism diff.
    pub wall: WallProgress,
}

/// The wall-clock compartment of a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WallProgress {
    /// Wall milliseconds since the run started.
    pub elapsed_ms: u64,
    /// Estimated wall milliseconds remaining (`elapsed/done × left`).
    pub eta_ms: u64,
    /// Disk-cache hit ratio so far (0 when no lookups yet).
    pub cache_hit_ratio: f64,
}

impl ProgressSnapshot {
    /// The fraction of proxies done, 0..=1.
    pub fn ratio(&self) -> f64 {
        if self.proxies_total == 0 {
            1.0
        } else {
            self.proxies_done as f64 / self.proxies_total as f64
        }
    }

    /// Render the deterministic compartment as one JSONL line
    /// (newline-terminated). Byte-identical across shard and thread
    /// counts; CI diffs it.
    pub fn deterministic_jsonl(&self) -> String {
        format!(
            "{{\"seq\":{},\"done\":{},\"total\":{},\"sim_ns\":{},\"probes\":{},\"timeouts\":{},\"retries\":{},\"measured\":{},\"insufficient\":{},\"unmeasurable\":{}}}\n",
            self.seq,
            self.proxies_done,
            self.proxies_total,
            self.sim_now_ns,
            self.probes_sent,
            self.probes_timeout,
            self.retries,
            self.measured,
            self.insufficient,
            self.unmeasurable,
        )
    }

    /// Render both compartments as one JSONL line (the wall fields
    /// under a `"wall"` key, so a determinism-minded consumer can strip
    /// them mechanically).
    pub fn full_jsonl(&self) -> String {
        let mut line = self.deterministic_jsonl();
        // Pop outside the assert: debug_assert! drops its arguments in
        // release builds, and the pops must happen in every build.
        let tail = (line.pop(), line.pop());
        debug_assert_eq!(tail, (Some('\n'), Some('}')));
        let _ = writeln!(
            line,
            ",\"wall\":{{\"elapsed_ms\":{},\"eta_ms\":{},\"cache_hit_ratio\":{}}}}}",
            self.wall.elapsed_ms, self.wall.eta_ms, self.wall.cache_hit_ratio
        );
        line
    }
}

/// A consumer of progress snapshots. The audit master calls
/// [`emit`](ProgressSink::emit) once per snapshot, in `seq` order.
pub trait ProgressSink: Send {
    /// Accept one snapshot.
    fn emit(&mut self, snapshot: &ProgressSnapshot);
}

/// A shared handle counts as a sink: register
/// `Box::new(Arc::new(Mutex::new(sink)))` and keep a clone, so the
/// snapshots a run emits are readable after the run consumed the box.
impl<S: ProgressSink> ProgressSink for std::sync::Arc<std::sync::Mutex<S>> {
    fn emit(&mut self, snapshot: &ProgressSnapshot) {
        self.lock().expect("progress sink poisoned").emit(snapshot);
    }
}

/// Accumulates snapshots as JSONL text in memory.
#[derive(Debug, Default)]
pub struct JsonlSink {
    /// Include the wall compartment in each line.
    pub include_wall: bool,
    text: String,
}

impl JsonlSink {
    /// A sink rendering only the deterministic compartment.
    pub fn deterministic() -> JsonlSink {
        JsonlSink::default()
    }

    /// A sink rendering both compartments.
    pub fn full() -> JsonlSink {
        JsonlSink {
            include_wall: true,
            text: String::new(),
        }
    }

    /// The accumulated JSONL document.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Consume the sink, returning the accumulated JSONL document.
    pub fn into_text(self) -> String {
        self.text
    }
}

impl ProgressSink for JsonlSink {
    fn emit(&mut self, snapshot: &ProgressSnapshot) {
        self.text.push_str(&if self.include_wall {
            snapshot.full_jsonl()
        } else {
            snapshot.deterministic_jsonl()
        });
    }
}

/// A bounded in-memory ring of the most recent snapshots.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    ring: VecDeque<ProgressSnapshot>,
}

impl RingSink {
    /// A ring keeping at most `cap` snapshots (`cap` ≥ 1).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            ring: VecDeque::new(),
        }
    }

    /// The newest snapshot, if any.
    pub fn latest(&self) -> Option<&ProgressSnapshot> {
        self.ring.back()
    }

    /// Snapshots currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ProgressSnapshot> {
        self.ring.iter()
    }

    /// Number of snapshots currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl ProgressSink for RingSink {
    fn emit(&mut self, snapshot: &ProgressSnapshot) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(snapshot.clone());
    }
}

/// Folds per-proxy stats into cumulative snapshots every `every`
/// proxies (plus a final snapshot at the end of the stream). Feed it
/// [`ProxyStat`]s in global proxy order; it returns a snapshot whenever
/// one is due.
#[derive(Debug)]
pub struct SnapshotBuilder {
    every: u64,
    total: u64,
    seq: u64,
    acc: ProgressSnapshot,
}

impl SnapshotBuilder {
    /// A builder for a study of `total` proxies, snapshotting every
    /// `every` proxies (`every` ≥ 1).
    pub fn new(total: u64, every: u64) -> SnapshotBuilder {
        SnapshotBuilder {
            every: every.max(1),
            total,
            seq: 0,
            acc: ProgressSnapshot {
                proxies_total: total,
                ..ProgressSnapshot::default()
            },
        }
    }

    /// Fold one proxy in. Returns the snapshot due at this point, if
    /// any: one every `every` proxies, and always one when the last
    /// proxy lands (never two for the same proxy).
    pub fn push(&mut self, stat: &ProxyStat) -> Option<ProgressSnapshot> {
        self.acc.proxies_done += 1;
        self.acc.sim_now_ns = self.acc.sim_now_ns.max(stat.sim_now_ns);
        self.acc.probes_sent += stat.probes_sent;
        self.acc.probes_timeout += stat.probes_timeout;
        self.acc.retries += stat.retries;
        match stat.outcome {
            ProxyOutcome::Measured => self.acc.measured += 1,
            ProxyOutcome::Insufficient => self.acc.insufficient += 1,
            ProxyOutcome::Unmeasurable => self.acc.unmeasurable += 1,
        }
        let due =
            self.acc.proxies_done.is_multiple_of(self.every) || self.acc.proxies_done == self.total;
        if !due {
            return None;
        }
        let mut snap = self.acc.clone();
        snap.seq = self.seq;
        self.seq += 1;
        Some(snap)
    }

    /// Snapshots emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn stat(node: u32, probes: u64, outcome: ProxyOutcome) -> ProxyStat {
        ProxyStat {
            node,
            sim_now_ns: u64::from(node) * 1_000,
            probes_sent: probes,
            probes_timeout: probes / 10,
            retries: probes / 5,
            outcome,
        }
    }

    #[test]
    fn builder_emits_every_k_and_at_the_end() {
        let mut b = SnapshotBuilder::new(5, 2);
        let mut snaps = Vec::new();
        for node in 0..5u32 {
            if let Some(s) = b.push(&stat(node, 10, ProxyOutcome::Measured)) {
                snaps.push(s);
            }
        }
        // 5 proxies, k=2 → snapshots at done=2, 4, and the final 5.
        let dones: Vec<u64> = snaps.iter().map(|s| s.proxies_done).collect();
        assert_eq!(dones, [2, 4, 5]);
        let seqs: Vec<u64> = snaps.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        assert_eq!(snaps[2].probes_sent, 50);
        assert_eq!(snaps[2].measured, 5);
        assert_eq!(snaps[2].sim_now_ns, 4_000);
        assert_eq!(b.emitted(), 3);
    }

    #[test]
    fn final_proxy_on_a_k_boundary_emits_once() {
        let mut b = SnapshotBuilder::new(4, 2);
        let mut count = 0;
        for node in 0..4u32 {
            if b.push(&stat(node, 1, ProxyOutcome::Unmeasurable)).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 2, "done=2 and done=4, not a duplicate final");
    }

    #[test]
    fn jsonl_renders_valid_json_and_wall_split() {
        let mut b = SnapshotBuilder::new(1, 1);
        let mut s = b.push(&stat(3, 10, ProxyOutcome::Insufficient)).unwrap();
        s.wall = WallProgress {
            elapsed_ms: 120,
            eta_ms: 0,
            cache_hit_ratio: 0.5,
        };
        let det = s.deterministic_jsonl();
        let full = s.full_jsonl();
        for line in [&det, &full] {
            assert!(line.ends_with('\n'));
            Json::parse(line.trim_end()).expect("snapshot line must be valid JSON");
        }
        assert!(!det.contains("wall"), "wall fields leaked: {det}");
        let parsed = Json::parse(full.trim_end()).unwrap();
        assert_eq!(
            parsed.get("wall").and_then(|w| w.get("elapsed_ms")).and_then(Json::as_f64),
            Some(120.0)
        );
        assert_eq!(parsed.get("insufficient").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn sinks_accumulate_in_order() {
        let mut jsonl = JsonlSink::deterministic();
        let mut ring = RingSink::new(2);
        let mut b = SnapshotBuilder::new(6, 1);
        for node in 0..6u32 {
            let s = b.push(&stat(node, 2, ProxyOutcome::Measured)).unwrap();
            jsonl.emit(&s);
            ring.emit(&s);
        }
        assert_eq!(jsonl.text().lines().count(), 6);
        // The ring keeps only the two newest.
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.latest().unwrap().proxies_done, 6);
        let dones: Vec<u64> = ring.iter().map(|s| s.proxies_done).collect();
        assert_eq!(dones, [5, 6]);
        assert!(!ring.is_empty());
    }

    #[test]
    fn ratio_handles_empty_studies() {
        let s = ProgressSnapshot::default();
        assert_eq!(s.ratio(), 1.0);
        let s = ProgressSnapshot {
            proxies_done: 1,
            proxies_total: 4,
            ..ProgressSnapshot::default()
        };
        assert_eq!(s.ratio(), 0.25);
    }
}
