#![warn(missing_docs)]

//! # worldmap — the coarse world atlas substrate
//!
//! The paper grounds its claim-checking in the 2012 Natural Earth map of
//! the world: country outlines, a land/ocean mask, and the polar exclusions
//! of Eriksson et al. ("on land, and not in Antarctica", §3). It also uses
//! the University of Wisconsin Internet Atlas data-center list (§6,
//! Fig. 15) and a VPN.com market survey of which countries 157 providers
//! claim (Fig. 14).
//!
//! This crate is our from-scratch substitute for all three data sources:
//!
//! * [`data`] — a hand-authored table of ~200 countries and territories,
//!   each described as a union of spherical caps and lat/lon boxes around
//!   its true centroid, with its continent (following the paper's
//!   Appendix A conventions: Turkey and Russia with Europe, the Middle
//!   East with Africa, Mexico and the Caribbean with Central America,
//!   Malaysia and New Zealand with Oceania, Australia its own continent),
//!   a hosting-ease score, and population/hosting hub cities.
//! * [`WorldAtlas`] — the queryable atlas: a painted cell→country map on a
//!   shared [`geokit::GeoGrid`], the land mask, the geolocation
//!   plausibility mask (land, south of 85° N, north of 60° S), country
//!   rasterizations, and distance-to-country queries.
//! * [`datacenters`] — a registry of data-center locations derived from
//!   hub cities of hosting-friendly countries (the Fig. 15/16
//!   disambiguation source).
//! * [`market`] — the synthetic VPN-market claim survey behind Fig. 14.
//!
//! Country outlines are deliberately coarse (country-membership is decided
//! at grid-cell resolution); the study only ever evaluates *country-level*
//! claims, as the paper does (§6: "we only evaluate country-level claims").

pub mod atlas;
pub mod continent;
pub mod country;
pub mod data;
pub mod datacenters;
pub mod market;

pub use atlas::WorldAtlas;
pub use continent::Continent;
pub use country::{Country, CountryId};
pub use datacenters::{DataCenter, DataCenterRegistry};

/// Latitude above which no host can plausibly be (paper §3: "exclude all
/// terrain north of 85° N").
pub const MAX_PLAUSIBLE_LAT: f64 = 85.0;

/// Latitude below which no host can plausibly be (paper §3: "south of
/// 60° S" — Antarctica).
pub const MIN_PLAUSIBLE_LAT: f64 = -60.0;
