//! Continents, following the paper's Appendix A conventions.
//!
//! "The lines separating continents are somewhat arbitrary. For this
//! analysis, we chose to include Mexico with Central America, Turkey and
//! Russia with Europe, all of the Middle East with Africa, and all of
//! Malaysia and New Zealand with Oceania." Australia stands alone, and the
//! Caribbean goes with Central America (Fig. 23 groups it there).

/// One of the paper's eight continent groups (Fig. 22 rows/columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    /// Europe, including Turkey, Russia, and the Caucasus-adjacent
    /// European microstates.
    Europe,
    /// Africa plus the entire Middle East (per Appendix A).
    Africa,
    /// Asia: South, East, Southeast (except Malaysia/Indonesia-side
    /// Oceania assignments), and Central Asia.
    Asia,
    /// Oceania: Pacific islands, Indonesia, Malaysia, the Philippines,
    /// and New Zealand.
    Oceania,
    /// Northern North America: USA, Canada, Greenland, St. Pierre.
    NorthAmerica,
    /// Mexico, Central America proper, and the Caribbean.
    CentralAmerica,
    /// South America.
    SouthAmerica,
    /// Australia (plus its remote dependencies like Norfolk Island are
    /// grouped with Oceania in Fig. 23; mainland Australia stands alone).
    Australia,
}

impl Continent {
    /// All eight continents in the paper's Fig. 22 ordering.
    pub const ALL: [Continent; 8] = [
        Continent::Europe,
        Continent::Africa,
        Continent::Asia,
        Continent::Oceania,
        Continent::NorthAmerica,
        Continent::CentralAmerica,
        Continent::SouthAmerica,
        Continent::Australia,
    ];

    /// Stable index in `[0, 8)` for matrix rows/columns.
    pub fn index(self) -> usize {
        Continent::ALL
            .iter()
            .position(|&c| c == self)
            .expect("continent present in ALL")
    }

    /// Human-readable name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Continent::Europe => "Europe",
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Oceania => "Oceania",
            Continent::NorthAmerica => "North America",
            Continent::CentralAmerica => "Central America",
            Continent::SouthAmerica => "South America",
            Continent::Australia => "Australia",
        }
    }

    /// A representative interior point of the continent, used by the
    /// two-phase measurement to pick "three anchors per continent" and to
    /// sanity-check continent inference.
    pub fn representative_point(self) -> geokit::GeoPoint {
        let (lat, lon) = match self {
            Continent::Europe => (50.0, 15.0),
            Continent::Africa => (5.0, 20.0),
            Continent::Asia => (30.0, 100.0),
            Continent::Oceania => (-5.0, 130.0),
            Continent::NorthAmerica => (45.0, -100.0),
            Continent::CentralAmerica => (17.0, -90.0),
            Continent::SouthAmerica => (-15.0, -60.0),
            Continent::Australia => (-25.0, 134.0),
        };
        geokit::GeoPoint::new(lat, lon)
    }
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_eight_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in Continent::ALL {
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn index_round_trips() {
        for (i, c) in Continent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for c in Continent::ALL {
            assert!(names.insert(c.name()));
        }
    }
}
