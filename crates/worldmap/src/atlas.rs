//! The queryable world atlas: a painted cell→country map on a shared grid,
//! the land mask, and the geolocation plausibility mask.
//!
//! Construction paints country outlines onto the grid in descending area
//! order, so smaller territories override larger ones wherever coarse
//! outlines overlap (enclaves, shared borders). That painted map is the
//! *canonical* country assignment everywhere in the project: both country
//! membership of a prediction region and "which country is this host in"
//! are answered from it, so the study is self-consistent at grid
//! resolution.

use crate::continent::Continent;
use crate::country::{Country, CountryId};
use crate::data::all_countries;
use crate::{MAX_PLAUSIBLE_LAT, MIN_PLAUSIBLE_LAT};
use geokit::grid::CellId;
use geokit::{GeoGrid, GeoPoint, Region};
use simrng::{Rng, RngExt};
use std::sync::Arc;

/// Sentinel in the painted map for "ocean / no country".
const NO_COUNTRY: u16 = u16::MAX;

/// The world atlas on a specific grid.
pub struct WorldAtlas {
    grid: Arc<GeoGrid>,
    countries: Vec<Country>,
    /// Painted map: cell → country index (or `NO_COUNTRY`).
    cell_country: Vec<u16>,
    /// All painted land cells.
    land: Region,
    /// Land ∧ plausible latitudes (< 85° N, > 60° S): the mask applied to
    /// every prediction region (paper §3).
    plausible: Region,
}

impl WorldAtlas {
    /// Build the atlas on the given grid. Cost is proportional to the
    /// number of land cells (≈ 30 % of the grid); at the default 0.25°
    /// resolution this is well under a second.
    pub fn new(grid: Arc<GeoGrid>) -> WorldAtlas {
        let countries: Vec<Country> = all_countries()
            .iter()
            .map(|def| Country::from_def(def))
            .collect();
        assert!(
            countries.len() < NO_COUNTRY as usize,
            "too many countries for u16 painted map"
        );

        // Paint in descending area order: small countries override big
        // ones, so enclaves and coarse-border overlaps resolve to the
        // smaller territory.
        let mut order: Vec<usize> = (0..countries.len()).collect();
        order.sort_by(|&a, &b| {
            countries[b]
                .approx_area_km2()
                .partial_cmp(&countries[a].approx_area_km2())
                .expect("country areas are finite")
        });

        let mut cell_country = vec![NO_COUNTRY; grid.num_cells() as usize];
        for &idx in &order {
            for shape in countries[idx].shapes() {
                paint_shape(&grid, shape, |cell| {
                    cell_country[cell as usize] = idx as u16;
                });
            }
        }

        // Microstates smaller than a grid cell (Vatican, Monaco, Pitcairn…)
        // may own no cell centre at coarse resolutions. Every country must
        // exist on the map — the paper explicitly keeps even the smallest
        // islands (§3) — so paint the capital's cell for any country that
        // ended up empty. (Two sub-cell territories sharing a cell, e.g.
        // Saint-Martin / Sint Maarten at coarse grids, resolve to whichever
        // is processed last; the loser keeps its shape geometry for
        // distance queries.)
        let mut owned = vec![false; countries.len()];
        for &c in &cell_country {
            if c != NO_COUNTRY {
                owned[c as usize] = true;
            }
        }
        for (idx, country) in countries.iter().enumerate() {
            if !owned[idx] {
                let cell = grid.cell_of(&country.capital());
                cell_country[cell as usize] = idx as u16;
            }
        }

        let mut land = Region::empty(Arc::clone(&grid));
        for (cell, &c) in cell_country.iter().enumerate() {
            if c != NO_COUNTRY {
                land.insert(cell as CellId);
            }
        }

        let lat_band = Region::from_predicate(&grid, |p| {
            p.lat() <= MAX_PLAUSIBLE_LAT && p.lat() >= MIN_PLAUSIBLE_LAT
        });
        let plausible = land.intersection(&lat_band);

        WorldAtlas {
            grid,
            countries,
            cell_country,
            land,
            plausible,
        }
    }

    /// The grid this atlas is painted on.
    pub fn grid(&self) -> &Arc<GeoGrid> {
        &self.grid
    }

    /// All countries, indexed by [`CountryId`].
    pub fn countries(&self) -> &[Country] {
        &self.countries
    }

    /// Number of countries.
    pub fn num_countries(&self) -> usize {
        self.countries.len()
    }

    /// Look up a country by ISO code.
    pub fn country_by_iso2(&self, iso2: &str) -> Option<CountryId> {
        self.countries.iter().position(|c| c.iso2() == iso2)
    }

    /// The country record for an id.
    pub fn country(&self, id: CountryId) -> &Country {
        &self.countries[id]
    }

    /// Country owning a cell, if any.
    pub fn country_of_cell(&self, cell: CellId) -> Option<CountryId> {
        match self.cell_country[cell as usize] {
            NO_COUNTRY => None,
            c => Some(c as usize),
        }
    }

    /// Country containing a point (at grid resolution), if any.
    pub fn country_of_point(&self, p: &GeoPoint) -> Option<CountryId> {
        self.country_of_cell(self.grid.cell_of(p))
    }

    /// All land cells.
    pub fn land(&self) -> &Region {
        &self.land
    }

    /// The plausibility mask: land, below 85° N, above 60° S. Every final
    /// prediction region is intersected with this (paper §3).
    pub fn plausibility_mask(&self) -> &Region {
        &self.plausible
    }

    /// Rasterize one country as a region (built on demand from the painted
    /// map — O(country bounding cells)).
    pub fn country_region(&self, id: CountryId) -> Region {
        let mut r = Region::empty(Arc::clone(&self.grid));
        for shape in self.countries[id].shapes() {
            paint_shape(&self.grid, shape, |cell| {
                if self.cell_country[cell as usize] == id as u16 {
                    r.insert(cell);
                }
            });
        }
        // Sub-cell territories own only their force-painted capital cell,
        // which shape rasterization may not visit.
        let capital_cell = self.grid.cell_of(&self.countries[id].capital());
        if self.cell_country[capital_cell as usize] == id as u16 {
            r.insert(capital_cell);
        }
        r
    }

    /// The set of countries a region touches, with the touched area in km²
    /// per country, sorted by descending area. Cells outside any country
    /// are ignored.
    pub fn countries_touched(&self, region: &Region) -> Vec<(CountryId, f64)> {
        let mut areas: Vec<f64> = vec![0.0; self.countries.len()];
        for cell in region.cells() {
            if let Some(c) = self.country_of_cell(cell) {
                areas[c] += self.grid.cell_area_km2(cell);
            }
        }
        let mut out: Vec<(CountryId, f64)> = areas
            .into_iter()
            .enumerate()
            .filter(|&(_, a)| a > 0.0)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("areas are finite"));
        out
    }

    /// The set of continents a region touches (via touched countries).
    pub fn continents_touched(&self, region: &Region) -> Vec<Continent> {
        let mut seen = [false; 8];
        for (c, _) in self.countries_touched(region) {
            seen[self.countries[c].continent().index()] = true;
        }
        Continent::ALL
            .iter()
            .copied()
            .filter(|c| seen[c.index()])
            .collect()
    }

    /// Minimum distance from a point to a country's outline (0 inside).
    /// Used by the ICLab speed-limit checker.
    pub fn distance_to_country_km(&self, p: &GeoPoint, id: CountryId) -> f64 {
        self.countries[id].distance_from_km(p)
    }

    /// Sample a location inside a country: a hub city (weight-proportional)
    /// plus up to `jitter_km` of uniform displacement, re-drawn until the
    /// point lands in the country's painted cells (give up after 32 tries
    /// and return the hub itself, which for a well-formed table is always
    /// in-country at grid resolution).
    pub fn sample_point_in_country<R: Rng + ?Sized>(
        &self,
        id: CountryId,
        jitter_km: f64,
        rng: &mut R,
    ) -> GeoPoint {
        let country = &self.countries[id];
        let weights: Vec<f64> = country.hubs().iter().map(|h| h.weight).collect();
        let hub = &country.hubs()[geokit::sampling::weighted_index(rng, &weights)];
        let hub_point = GeoPoint::new(hub.lat, hub.lon);
        for _ in 0..32 {
            let bearing = rng.random_range(0.0..360.0);
            let dist = jitter_km * rng.random_range(0.0f64..1.0).sqrt();
            let p = hub_point.destination(bearing, dist);
            if self.country_of_point(&p) == Some(id) {
                return p;
            }
        }
        hub_point
    }
}

/// Invoke `f` on every grid cell whose centre is inside the shape.
fn paint_shape<F: FnMut(CellId)>(grid: &Arc<GeoGrid>, shape: &geokit::Shape, mut f: F) {
    match shape {
        geokit::Shape::Cap(cap) => grid.for_each_cell_in_cap(cap, f),
        geokit::Shape::Box(b) => {
            // Walk the box's row/col ranges directly.
            let res = grid.resolution_deg();
            let row_lo = ((b.south() + 90.0) / res).floor().max(0.0) as u32;
            let row_hi = (((b.north() + 90.0) / res).ceil() as u32).min(grid.rows());
            let col_count = (b.lon_span() / res).ceil() as i64 + 1;
            let col_start = ((b.west() + 180.0) / res).floor() as i64;
            let n = i64::from(grid.cols());
            for row in row_lo..row_hi {
                for k in 0..col_count {
                    let col = (col_start + k).rem_euclid(n) as u32;
                    let cell = row * grid.cols() + col;
                    if b.contains(&grid.center(cell)) {
                        f(cell);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::rngs::StdRng;
    use simrng::SeedableRng;
    use std::sync::OnceLock;

    /// Shared atlas: building at 0.5° is fast but not free, so tests share.
    fn atlas() -> &'static WorldAtlas {
        static ATLAS: OnceLock<WorldAtlas> = OnceLock::new();
        ATLAS.get_or_init(|| WorldAtlas::new(GeoGrid::new(0.5)))
    }

    #[test]
    fn known_city_lookups() {
        let a = atlas();
        let cases = [
            (50.11, 8.68, "de"),   // Frankfurt
            (38.0, -97.0, "us"),   // Kansas
            (51.51, -0.13, "gb"),  // London
            (35.68, 139.69, "jp"), // Tokyo
            (-33.87, 151.21, "au"),// Sydney
            (55.76, 37.62, "ru"),  // Moscow
            (1.35, 103.82, "sg"),  // Singapore
            (-23.55, -46.63, "br"),// São Paulo
        ];
        for (lat, lon, iso) in cases {
            let got = a
                .country_of_point(&GeoPoint::new(lat, lon))
                .map(|id| a.country(id).iso2());
            assert_eq!(got, Some(iso), "({lat}, {lon})");
        }
    }

    #[test]
    fn oceans_are_not_countries() {
        let a = atlas();
        for (lat, lon) in [
            (0.0, -30.0),   // mid-Atlantic
            (-30.0, -110.0),// South Pacific
            (10.0, 65.0),   // Indian Ocean
            (55.0, -35.0),  // North Atlantic
        ] {
            assert_eq!(
                a.country_of_point(&GeoPoint::new(lat, lon)),
                None,
                "({lat}, {lon}) should be ocean"
            );
        }
    }

    #[test]
    fn enclaves_beat_their_surroundings() {
        let a = atlas();
        // Vatican inside Italy; Hong Kong inside China's coarse box.
        let vatican = a.country_of_point(&GeoPoint::new(41.90, 12.45)).unwrap();
        assert_eq!(a.country(vatican).iso2(), "va");
        let hk = a.country_of_point(&GeoPoint::new(22.32, 114.17)).unwrap();
        assert_eq!(a.country(hk).iso2(), "hk");
    }

    #[test]
    fn plausibility_mask_cuts_poles_and_ocean() {
        let a = atlas();
        let g = a.grid();
        // Northern Greenland (> 85° N would be cut; 81° N is land & kept).
        assert!(a.land().contains_point(&GeoPoint::new(81.0, -40.0)));
        // No cells above 85° N at all.
        for cell in a.plausibility_mask().cells() {
            let p = g.center(cell);
            assert!(p.lat() <= MAX_PLAUSIBLE_LAT && p.lat() >= MIN_PLAUSIBLE_LAT);
        }
        // Ocean cells are excluded.
        assert!(!a.plausibility_mask().contains_point(&GeoPoint::new(0.0, -30.0)));
    }

    #[test]
    fn land_area_is_roughly_earths() {
        // Coarse outlines over- and under-shoot, but total land should be
        // within 40 % of the true ~1.49 × 10⁸ km².
        let a = atlas();
        let area = a.land().area_km2();
        assert!(
            (0.6..=1.4).contains(&(area / geokit::EARTH_LAND_AREA_KM2)),
            "land area {area:.3e} km² vs true {:.3e}",
            geokit::EARTH_LAND_AREA_KM2
        );
    }

    #[test]
    fn country_region_round_trip() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        let region = a.country_region(de);
        assert!(!region.is_empty());
        // Every cell of the region maps back to Germany.
        for cell in region.cells() {
            assert_eq!(a.country_of_cell(cell), Some(de));
        }
        // Frankfurt is in it.
        assert!(region.contains_point(&GeoPoint::new(50.11, 8.68)));
    }

    #[test]
    fn countries_touched_by_benelux_disk() {
        let a = atlas();
        let cap = geokit::SphericalCap::new(GeoPoint::new(50.8, 4.4), 250.0);
        let region = Region::from_cap(a.grid(), &cap).intersection(a.land());
        let touched: Vec<&str> = a
            .countries_touched(&region)
            .into_iter()
            .map(|(c, _)| a.country(c).iso2())
            .collect();
        for iso in ["be", "nl", "de", "fr"] {
            assert!(touched.contains(&iso), "{iso} missing from {touched:?}");
        }
    }

    #[test]
    fn continents_touched() {
        let a = atlas();
        let cap = geokit::SphericalCap::new(GeoPoint::new(36.0, -5.5), 600.0);
        let region = Region::from_cap(a.grid(), &cap).intersection(a.land());
        let conts = a.continents_touched(&region);
        assert!(conts.contains(&Continent::Europe)); // Spain
        assert!(conts.contains(&Continent::Africa)); // Morocco
    }

    #[test]
    fn sample_point_in_country_lands_inside() {
        let a = atlas();
        let mut rng = StdRng::seed_from_u64(42);
        for iso in ["de", "us", "sg", "pn", "br"] {
            let id = a.country_by_iso2(iso).unwrap();
            for _ in 0..20 {
                let p = a.sample_point_in_country(id, 100.0, &mut rng);
                assert_eq!(
                    a.country_of_point(&p),
                    Some(id),
                    "{iso}: sampled {p} outside"
                );
            }
        }
    }

    #[test]
    fn distance_to_country() {
        let a = atlas();
        let de = a.country_by_iso2("de").unwrap();
        assert_eq!(
            a.distance_to_country_km(&GeoPoint::new(50.11, 8.68), de),
            0.0
        );
        let d = a.distance_to_country_km(&GeoPoint::new(48.86, 2.35), de); // Paris
        assert!((100.0..600.0).contains(&d), "Paris→DE = {d}");
    }
}
