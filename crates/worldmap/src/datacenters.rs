//! Data-center registry — the substitute for the University of Wisconsin
//! Internet Atlas list the paper uses to disambiguate uncertain prediction
//! regions (§6, Fig. 15: "the only data centers within the region are in
//! Chile, so we can conclude that this server is in Chile").
//!
//! Data centers exist at the hub cities of countries whose hosting score
//! clears a threshold: commercial colocation follows exactly the
//! cheap-and-reliable-hosting geography the paper describes, so deriving
//! the registry from hosting scores keeps the two substrates consistent.

use crate::atlas::WorldAtlas;
use crate::country::CountryId;
use geokit::{GeoPoint, Region};

/// One data center (a colocation site at a hub city).
#[derive(Debug, Clone)]
pub struct DataCenter {
    /// Host city name.
    pub city: &'static str,
    /// Country owning the data center.
    pub country: CountryId,
    /// Site location.
    pub location: GeoPoint,
}

/// The registry of all known data centers.
#[derive(Debug, Clone)]
pub struct DataCenterRegistry {
    centers: Vec<DataCenter>,
}

/// Minimum hosting score for a country's hubs to have colocation sites.
pub const HOSTING_THRESHOLD: f64 = 0.25;

impl DataCenterRegistry {
    /// Build the registry from the atlas: one data center per hub city of
    /// every country with hosting ≥ [`HOSTING_THRESHOLD`], plus satellite
    /// colocation sites spread across the country in proportion to its
    /// hosting score. The real UW Internet Atlas lists thousands of
    /// facilities; density matters because the Fig. 15 disambiguation
    /// ("only one country has data centers inside the region") is only
    /// sound when well-hosted countries are thickly covered.
    pub fn from_atlas(atlas: &WorldAtlas) -> DataCenterRegistry {
        use simrng::rngs::StdRng;
        use simrng::{RngExt, SeedableRng};
        // Fixed internal seed: the registry is a world fact, not a
        // per-study random variable.
        let mut rng = StdRng::seed_from_u64(0xdc_5172);
        let mut centers = Vec::new();
        for (id, country) in atlas.countries().iter().enumerate() {
            if country.hosting() < HOSTING_THRESHOLD {
                continue;
            }
            for hub in country.hubs() {
                centers.push(DataCenter {
                    city: hub.name,
                    country: id,
                    location: GeoPoint::new(hub.lat, hub.lon),
                });
                // Satellite sites around each hub, kept inside the
                // country's painted cells.
                let satellites = (country.hosting() * 5.0).round() as usize;
                for _ in 0..satellites {
                    let hub_point = GeoPoint::new(hub.lat, hub.lon);
                    for _ in 0..16 {
                        let bearing = rng.random_range(0.0..360.0);
                        let dist = rng.random_range(30.0..280.0);
                        let p = hub_point.destination(bearing, dist);
                        if atlas.country_of_point(&p) == Some(id) {
                            centers.push(DataCenter {
                                city: hub.name,
                                country: id,
                                location: p,
                            });
                            break;
                        }
                    }
                }
            }
        }
        DataCenterRegistry { centers }
    }

    /// All data centers.
    pub fn centers(&self) -> &[DataCenter] {
        &self.centers
    }

    /// Data centers whose location falls inside a region.
    pub fn in_region<'a>(&'a self, region: &'a Region) -> impl Iterator<Item = &'a DataCenter> {
        self.centers
            .iter()
            .filter(move |dc| region.contains_point(&dc.location))
    }

    /// The set of distinct countries having a data center inside the
    /// region. This is the paper's Fig. 15 disambiguation primitive: if a
    /// prediction region covers several countries but only one has data
    /// centers in the covered part, the proxy is (almost certainly) there.
    pub fn countries_in_region(&self, region: &Region) -> Vec<CountryId> {
        let mut out: Vec<CountryId> = self.in_region(region).map(|dc| dc.country).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::{GeoGrid, SphericalCap};
    use std::sync::OnceLock;

    fn setup() -> &'static (WorldAtlas, DataCenterRegistry) {
        static S: OnceLock<(WorldAtlas, DataCenterRegistry)> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = WorldAtlas::new(GeoGrid::new(0.5));
            let reg = DataCenterRegistry::from_atlas(&atlas);
            (atlas, reg)
        })
    }

    #[test]
    fn hosting_friendly_countries_have_dcs() {
        let (atlas, reg) = setup();
        for iso in ["us", "de", "nl", "gb", "sg", "jp"] {
            let id = atlas.country_by_iso2(iso).unwrap();
            assert!(
                reg.centers().iter().any(|dc| dc.country == id),
                "{iso} should have data centers"
            );
        }
    }

    #[test]
    fn hostile_countries_have_none() {
        let (atlas, reg) = setup();
        for iso in ["kp", "pn", "va", "eh"] {
            let id = atlas.country_by_iso2(iso).unwrap();
            assert!(
                !reg.centers().iter().any(|dc| dc.country == id),
                "{iso} should have no data centers"
            );
        }
    }

    #[test]
    fn chile_argentina_disambiguation_case() {
        // The paper's Fig. 15 case: a region straddling the Chile/Argentina
        // border near Santiago contains only Chilean data centers (no
        // Argentine hub is within ~600 km of Santiago).
        let (atlas, reg) = setup();
        let region = Region::from_cap(
            atlas.grid(),
            &SphericalCap::new(GeoPoint::new(-33.5, -69.5), 450.0),
        )
        .intersection(atlas.land());
        let touched: Vec<&str> = atlas
            .countries_touched(&region)
            .iter()
            .map(|&(c, _)| atlas.country(c).iso2())
            .collect();
        assert!(touched.contains(&"cl") && touched.contains(&"ar"), "{touched:?}");
        let dc_countries: Vec<&str> = reg
            .countries_in_region(&region)
            .iter()
            .map(|&c| atlas.country(c).iso2())
            .collect();
        assert_eq!(dc_countries, vec!["cl"], "only Chile has DCs here");
    }

    #[test]
    fn dc_locations_are_in_their_country() {
        let (atlas, reg) = setup();
        let bad: Vec<String> = reg
            .centers()
            .iter()
            .filter(|dc| atlas.country_of_point(&dc.location) != Some(dc.country))
            .map(|dc| {
                format!(
                    "{} ({}) painted as {:?}",
                    dc.city,
                    atlas.country(dc.country).iso2(),
                    atlas
                        .country_of_point(&dc.location)
                        .map(|id| atlas.country(id).iso2())
                )
            })
            .collect();
        assert!(bad.is_empty(), "misplaced data centers: {bad:#?}");
    }
}
