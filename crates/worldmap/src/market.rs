//! The synthetic VPN-market claim survey behind Fig. 14.
//!
//! The paper plots, for 157 commercial VPN providers (data from VPN.com),
//! which countries each claims to have proxies in, ordered so that
//! providers claiming only a few locations "tend to claim more or less the
//! same locations" — the countries where leasing data-center space is easy.
//! We reproduce that structure generatively:
//!
//! * countries get a *claim popularity* driven by hosting ease (with a
//!   small bonus for large, well-connected markets), so the same ten
//!   countries top every modest provider's list;
//! * provider claim counts follow a heavy-tailed decreasing curve: the
//!   broadest claimer advertises nearly every country on Earth
//!   ("all but seven of the world's sovereign states", §1), the median
//!   provider a dozen;
//! * each provider claims a prefix of the popularity order plus a few
//!   idiosyncratic swaps.

use crate::atlas::WorldAtlas;
use crate::country::CountryId;
use simrng::rngs::StdRng;
use simrng::{Rng, RngExt, SeedableRng};

/// One provider row of the market survey.
#[derive(Debug, Clone)]
pub struct MarketProvider {
    /// Rank by number of claimed countries (0 = broadest claimer).
    pub rank: usize,
    /// Countries this provider claims, most popular first.
    pub claimed: Vec<CountryId>,
}

/// The full market survey (Fig. 14's data).
#[derive(Debug, Clone)]
pub struct MarketSurvey {
    providers: Vec<MarketProvider>,
    popularity: Vec<CountryId>,
}

/// Number of providers in the paper's survey.
pub const SURVEY_SIZE: usize = 157;

impl MarketSurvey {
    /// Generate the survey deterministically from a seed.
    pub fn generate(atlas: &WorldAtlas, seed: u64) -> MarketSurvey {
        let mut rng = StdRng::seed_from_u64(seed);
        let popularity = claim_popularity_order(atlas);
        let n_countries = popularity.len();

        let mut providers = Vec::with_capacity(SURVEY_SIZE);
        for rank in 0..SURVEY_SIZE {
            let count = claim_count_for_rank(rank, n_countries, &mut rng);
            // Claim the `count` most popular countries, then perturb: swap
            // a handful of mid-list entries for long-tail ones so provider
            // fingerprints differ.
            let mut claimed: Vec<CountryId> = popularity[..count].to_vec();
            let swaps = (count / 10).min(n_countries - count);
            for s in 0..swaps {
                let victim = rng.random_range(count / 2..count);
                let replacement = count + ((s * 31 + rng.random_range(0..7usize)) % (n_countries - count));
                claimed[victim] = popularity[replacement];
            }
            claimed.sort_unstable();
            claimed.dedup();
            providers.push(MarketProvider { rank, claimed });
        }
        MarketSurvey {
            providers,
            popularity,
        }
    }

    /// Provider rows, rank order (broadest first).
    pub fn providers(&self) -> &[MarketProvider] {
        &self.providers
    }

    /// Countries in descending claim popularity.
    pub fn popularity_order(&self) -> &[CountryId] {
        &self.popularity
    }

    /// How many of the surveyed providers claim the given country.
    pub fn claim_frequency(&self, country: CountryId) -> usize {
        self.providers
            .iter()
            .filter(|p| p.claimed.binary_search(&country).is_ok())
            .count()
    }
}

/// Countries ordered by how commonly VPN providers claim them: hosting
/// ease dominates, with a market-size bonus for a fixed set of
/// high-demand locations (the countries the paper's Fig. 18 columns show:
/// US, UK, NL, DE, CA, FR, SE, SG, CH, HK, ES, JP, IT, RU, RO, BR, IN,
/// PL, IE, AU, …).
pub fn claim_popularity_order(atlas: &WorldAtlas) -> Vec<CountryId> {
    const DEMAND_BONUS: &[(&str, f64)] = &[
        ("us", 0.60), ("gb", 0.50), ("nl", 0.42), ("de", 0.40), ("ca", 0.38),
        ("fr", 0.34), ("au", 0.34), ("se", 0.30), ("sg", 0.30), ("ch", 0.26),
        ("hk", 0.26), ("jp", 0.24), ("es", 0.22), ("it", 0.22), ("ru", 0.30),
        ("ro", 0.26), ("br", 0.22), ("in", 0.24), ("pl", 0.18), ("ie", 0.16),
        ("cz", 0.14), ("no", 0.12), ("dk", 0.12), ("fi", 0.10), ("at", 0.10),
        ("be", 0.10), ("mx", 0.10), ("za", 0.10), ("kr", 0.10), ("tr", 0.10),
    ];
    let mut scored: Vec<(CountryId, f64)> = atlas
        .countries()
        .iter()
        .enumerate()
        .map(|(id, c)| {
            let bonus = DEMAND_BONUS
                .iter()
                .find(|(iso, _)| *iso == c.iso2())
                .map_or(0.0, |(_, b)| *b);
            // Deterministic sub-epsilon tiebreak on the ISO code so the
            // order is total and stable.
            let tiebreak = f64::from(c.iso2().as_bytes()[0]) * 1e-9
                + f64::from(c.iso2().as_bytes()[1]) * 1e-11;
            (id, c.hosting() + bonus + tiebreak)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores finite"));
    scored.into_iter().map(|(id, _)| id).collect()
}

/// Claim count for a provider at `rank` (0-based, 0 = broadest):
/// a heavy-tailed decay from nearly-everything down to a couple of
/// countries, with small multiplicative noise.
fn claim_count_for_rank<R: Rng + ?Sized>(
    rank: usize,
    n_countries: usize,
    rng: &mut R,
) -> usize {
    let frac = match rank {
        0 => 0.97,
        _ => {
            // Exponential decay: rank 5 ≈ 0.45, rank 20 ≈ 0.24, rank 60 ≈ 0.08.
            let base = 0.62 * (-(rank as f64) / 22.0).exp() + 0.015;
            base * rng.random_range(0.85..1.15)
        }
    };
    ((n_countries as f64 * frac) as usize).clamp(2, n_countries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::GeoGrid;
    use std::sync::OnceLock;

    fn setup() -> &'static (WorldAtlas, MarketSurvey) {
        static S: OnceLock<(WorldAtlas, MarketSurvey)> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = WorldAtlas::new(GeoGrid::new(1.0));
            let survey = MarketSurvey::generate(&atlas, 1807);
            (atlas, survey)
        })
    }

    #[test]
    fn survey_has_157_providers() {
        let (_, survey) = setup();
        assert_eq!(survey.providers().len(), SURVEY_SIZE);
    }

    #[test]
    fn counts_decrease_with_rank() {
        let (_, survey) = setup();
        let counts: Vec<usize> = survey.providers().iter().map(|p| p.claimed.len()).collect();
        // Broadest claimer covers nearly every country.
        assert!(counts[0] > 180, "top provider claims {}", counts[0]);
        // Rank 20 is far below the top; the median is modest.
        assert!(counts[20] < counts[0] / 2);
        let median = counts[SURVEY_SIZE / 2];
        assert!((3..=40).contains(&median), "median claim count {median}");
        // Weak monotonicity: averaged over windows, counts decline.
        let head: usize = counts[..20].iter().sum();
        let tail: usize = counts[SURVEY_SIZE - 20..].iter().sum();
        assert!(head > tail * 3);
    }

    #[test]
    fn popular_countries_top_the_order() {
        let (atlas, survey) = setup();
        let top10: Vec<&str> = survey.popularity_order()[..10]
            .iter()
            .map(|&id| atlas.country(id).iso2())
            .collect();
        // The paper's most commonly claimed countries (Fig. 18): the exact
        // order varies but the US must lead and these must all be top-10.
        assert_eq!(top10[0], "us");
        for iso in ["gb", "de", "nl"] {
            assert!(top10.contains(&iso), "{iso} not in top-10 {top10:?}");
        }
    }

    #[test]
    fn modest_providers_claim_common_countries() {
        let (atlas, survey) = setup();
        let us = atlas.country_by_iso2("us").unwrap();
        // Almost every provider claims the US.
        let freq = survey.claim_frequency(us);
        assert!(freq > SURVEY_SIZE * 8 / 10, "US claimed by only {freq}");
        // North Korea is claimed only by the very broadest.
        let kp = atlas.country_by_iso2("kp").unwrap();
        assert!(survey.claim_frequency(kp) <= 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let (atlas, survey) = setup();
        let again = MarketSurvey::generate(atlas, 1807);
        for (a, b) in survey.providers().iter().zip(again.providers()) {
            assert_eq!(a.claimed, b.claimed);
        }
    }
}
