//! Country records: the static definition format used by the [`crate::data`]
//! tables and the runtime [`Country`] wrapper with computed geometry.

use crate::continent::Continent;
use geokit::{GeoPoint, Shape};

/// Index of a country within [`crate::data::all_countries`] (and within
/// every [`crate::WorldAtlas`] built from it).
pub type CountryId = usize;

/// A shape in the static data tables (kept `const`-constructible; converted
/// to [`geokit::Shape`] at atlas build time).
#[derive(Debug, Clone, Copy)]
pub enum ShapeDef {
    /// Spherical cap: centre latitude, centre longitude, radius in km.
    Cap(f64, f64, f64),
    /// Latitude/longitude box: south, north, west, east (eastward span,
    /// may wrap the antimeridian).
    Rect(f64, f64, f64, f64),
}

impl ShapeDef {
    /// Convert to a runtime [`Shape`].
    pub fn to_shape(self) -> Shape {
        match self {
            ShapeDef::Cap(lat, lon, r) => Shape::cap(lat, lon, r),
            ShapeDef::Rect(s, n, w, e) => Shape::rect(s, n, w, e),
        }
    }
}

/// Shorthand constructor for a cap [`ShapeDef`] (used by the data tables).
pub const fn cap(lat: f64, lon: f64, radius_km: f64) -> ShapeDef {
    ShapeDef::Cap(lat, lon, radius_km)
}

/// Shorthand constructor for a box [`ShapeDef`] (used by the data tables).
pub const fn rect(south: f64, north: f64, west: f64, east: f64) -> ShapeDef {
    ShapeDef::Rect(south, north, west, east)
}

/// A hub city: a place within the country where people, data centers, and
/// network infrastructure concentrate. Hosts and landmarks are placed at
/// hubs (with jitter); data centers are drawn from hubs of
/// hosting-friendly countries.
#[derive(Debug, Clone, Copy)]
pub struct HubDef {
    /// City name.
    pub name: &'static str,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Relative weight when sampling a hub within the country.
    pub weight: f64,
}

/// A country/territory entry in the static data tables.
#[derive(Debug, Clone, Copy)]
pub struct CountryDef {
    /// ISO 3166-1 alpha-2 code (lower case, as the paper prints them).
    pub iso2: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Continent group per the paper's Appendix A.
    pub continent: Continent,
    /// Ease of leasing servers here, in `[0, 1]`. Drives where VPN
    /// providers actually place hardware ("countries where server hosting
    /// is cheap and reliable", §1) and where data centers exist.
    pub hosting: f64,
    /// Outline as a union of coarse shapes.
    pub shapes: &'static [ShapeDef],
    /// Hub cities. Must be non-empty; the first hub is the "capital".
    pub hubs: &'static [HubDef],
}

/// A country with computed runtime geometry.
#[derive(Debug, Clone)]
pub struct Country {
    def: &'static CountryDef,
    shapes: Vec<Shape>,
    /// Sum of shape areas (double-counts overlaps; used only for painting
    /// priority, where relative order is what matters).
    approx_area_km2: f64,
}

impl Country {
    /// Wrap a static definition.
    pub fn from_def(def: &'static CountryDef) -> Country {
        assert!(
            !def.hubs.is_empty(),
            "country {} has no hub cities",
            def.iso2
        );
        assert!(
            !def.shapes.is_empty(),
            "country {} has no shapes",
            def.iso2
        );
        let shapes: Vec<Shape> = def.shapes.iter().map(|s| s.to_shape()).collect();
        let approx_area_km2 = shapes.iter().map(Shape::area_km2).sum();
        Country {
            def,
            shapes,
            approx_area_km2,
        }
    }

    /// ISO 3166-1 alpha-2 code.
    pub fn iso2(&self) -> &'static str {
        self.def.iso2
    }

    /// English short name.
    pub fn name(&self) -> &'static str {
        self.def.name
    }

    /// Continent group.
    pub fn continent(&self) -> Continent {
        self.def.continent
    }

    /// Hosting-ease score in `[0, 1]`.
    pub fn hosting(&self) -> f64 {
        self.def.hosting
    }

    /// Hub cities.
    pub fn hubs(&self) -> &'static [HubDef] {
        self.def.hubs
    }

    /// Outline shapes.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Approximate area (sum of shape areas; overlaps double-counted).
    pub fn approx_area_km2(&self) -> f64 {
        self.approx_area_km2
    }

    /// True if the point is inside any outline shape.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.shapes.iter().any(|s| s.contains(p))
    }

    /// Minimum distance from `p` to the country's outline, 0 if inside.
    pub fn distance_from_km(&self, p: &GeoPoint) -> f64 {
        self.shapes
            .iter()
            .map(|s| s.distance_from_km(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// The capital-ish anchor point (first hub).
    pub fn capital(&self) -> GeoPoint {
        let h = &self.def.hubs[0];
        GeoPoint::new(h.lat, h.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_DEF: CountryDef = CountryDef {
        iso2: "xx",
        name: "Testland",
        continent: Continent::Europe,
        hosting: 0.5,
        shapes: &[
            ShapeDef::Cap(50.0, 10.0, 300.0),
            ShapeDef::Rect(48.0, 52.0, 5.0, 8.0),
        ],
        hubs: &[HubDef {
            name: "Test City",
            lat: 50.0,
            lon: 10.0,
            weight: 1.0,
        }],
    };

    #[test]
    fn country_geometry() {
        let c = Country::from_def(&TEST_DEF);
        assert_eq!(c.iso2(), "xx");
        assert!(c.contains(&GeoPoint::new(50.0, 10.0)));
        assert!(c.contains(&GeoPoint::new(50.0, 6.0))); // in the rect
        assert!(!c.contains(&GeoPoint::new(30.0, 10.0)));
        assert!(c.approx_area_km2() > 0.0);
        assert_eq!(c.distance_from_km(&GeoPoint::new(50.0, 10.0)), 0.0);
        assert!(c.distance_from_km(&GeoPoint::new(40.0, 10.0)) > 500.0);
        assert_eq!(c.capital().lat(), 50.0);
    }

    #[test]
    fn distance_uses_nearest_shape() {
        let c = Country::from_def(&TEST_DEF);
        // A point just west of the rect should measure distance to the
        // rect, not to the (farther) cap.
        let p = GeoPoint::new(50.0, 4.0);
        let d = c.distance_from_km(&p);
        assert!(d < 100.0, "got {d}");
    }
}
