//! The static world data tables: ~200 countries and territories.
//!
//! This is our substitute for the 2012 Natural Earth map the paper uses.
//! Each entry gives a coarse outline (union of spherical caps and lat/lon
//! boxes around the true geography), the paper's Appendix A continent
//! assignment, a hosting-ease score, and hub cities where infrastructure
//! concentrates.
//!
//! Outline fidelity is deliberately coarse: the study evaluates
//! *country-level* claims on a ≤ 0.5° grid, so a box that covers the
//! country's core and respects its neighbours is all that is needed.
//! Where two outlines overlap (enclaves like Vatican/Italy, Hong
//! Kong/China, and coarse shared borders), the painted cell map in
//! [`crate::WorldAtlas`] resolves ownership in favour of the smaller
//! territory.
//!
//! The country list mirrors the paper's Fig. 23 confusion-matrix axis,
//! including oddities that matter to the study: Pitcairn (claimed by a
//! provider!), Vatican, North Korea, Siachen Glacier, Northern Cyprus,
//! Somaliland, and the long tail of small island territories.

/// Compact constructor for one table entry. Usage:
///
/// ```ignore
/// country!("de", "Germany", Europe, 1.0,
///     shapes: [rect(47.5, 54.5, 6.5, 14.5)],
///     hubs: [("Frankfurt", 50.11, 8.68, 1.0), ("Berlin", 52.52, 13.40, 0.5)])
/// ```
macro_rules! country {
    ($iso:literal, $name:literal, $cont:ident, $host:literal,
     shapes: [$($shape:expr),+ $(,)?],
     hubs: [$(($hname:literal, $hlat:expr, $hlon:expr, $hw:expr)),+ $(,)?]) => {
        crate::country::CountryDef {
            iso2: $iso,
            name: $name,
            continent: crate::continent::Continent::$cont,
            hosting: $host,
            shapes: &[$($shape),+],
            hubs: &[$(crate::country::HubDef {
                name: $hname, lat: $hlat, lon: $hlon, weight: $hw,
            }),+],
        }
    };
}
mod africa;
mod americas;
mod asia;
mod europe;
mod oceania;

use crate::country::CountryDef;
use std::sync::OnceLock;

/// All country definitions (see [`all_countries`]), in a stable order:
/// Europe, Africa (incl. Middle East), Asia, Oceania, Americas.
///
/// The index of a country in this slice is its [`crate::CountryId`]
/// everywhere in the project.
pub fn all_countries() -> &'static [&'static CountryDef] {
    static ALL: OnceLock<Vec<&'static CountryDef>> = OnceLock::new();
    ALL.get_or_init(|| {
        let mut v: Vec<&'static CountryDef> = Vec::new();
        v.extend(europe::COUNTRIES.iter());
        v.extend(africa::COUNTRIES.iter());
        v.extend(asia::COUNTRIES.iter());
        v.extend(oceania::COUNTRIES.iter());
        v.extend(americas::COUNTRIES.iter());
        // Sanity: ISO codes must be unique, or country lookup by code
        // would silently alias two territories.
        let mut codes: Vec<&str> = v.iter().map(|c| c.iso2).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(before, codes.len(), "duplicate ISO code in country tables");
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continent::Continent;

    #[test]
    fn roughly_two_hundred_countries() {
        let n = all_countries().len();
        assert!(
            (190..=230).contains(&n),
            "expected ~200 countries, got {n}"
        );
    }

    #[test]
    fn every_continent_is_represented() {
        for cont in Continent::ALL {
            assert!(
                all_countries().iter().any(|c| c.continent == cont),
                "no countries in {cont}"
            );
        }
    }

    #[test]
    fn all_entries_have_hubs_and_shapes() {
        for c in all_countries() {
            assert!(!c.hubs.is_empty(), "{} has no hubs", c.iso2);
            assert!(!c.shapes.is_empty(), "{} has no shapes", c.iso2);
            assert!(
                (0.0..=1.0).contains(&c.hosting),
                "{} hosting score out of range",
                c.iso2
            );
        }
    }

    #[test]
    fn hubs_are_inside_their_country() {
        use crate::country::Country;
        for def in all_countries() {
            let c = Country::from_def(def);
            for h in def.hubs {
                let p = geokit::GeoPoint::new(h.lat, h.lon);
                assert!(
                    c.distance_from_km(&p) < 150.0,
                    "{}: hub {} is {:.0} km outside its outline",
                    def.iso2,
                    h.name,
                    c.distance_from_km(&p)
                );
            }
        }
    }

    #[test]
    fn key_countries_present() {
        let codes: Vec<&str> = all_countries().iter().map(|c| c.iso2).collect();
        for key in [
            "us", "gb", "de", "nl", "cz", "fr", "ca", "au", "jp", "sg", "hk", "br",
            "ru", "cn", "kp", "va", "pn", "za", "in", "se", "ch", "es", "it",
        ] {
            assert!(codes.contains(&key), "missing {key}");
        }
    }

    #[test]
    fn paper_continent_conventions() {
        let find = |code: &str| {
            all_countries()
                .iter()
                .find(|c| c.iso2 == code)
                .unwrap_or_else(|| panic!("missing {code}"))
        };
        // Appendix A: Turkey and Russia with Europe.
        assert_eq!(find("tr").continent, Continent::Europe);
        assert_eq!(find("ru").continent, Continent::Europe);
        // Middle East with Africa.
        assert_eq!(find("sa").continent, Continent::Africa);
        assert_eq!(find("il").continent, Continent::Africa);
        assert_eq!(find("ae").continent, Continent::Africa);
        // Mexico with Central America.
        assert_eq!(find("mx").continent, Continent::CentralAmerica);
        // Malaysia and New Zealand with Oceania.
        assert_eq!(find("my").continent, Continent::Oceania);
        assert_eq!(find("nz").continent, Continent::Oceania);
        // Australia alone.
        assert_eq!(find("au").continent, Continent::Australia);
    }
}
