//! The landmark server: the coordination piece of §4.1.
//!
//! The paper runs "a server that retrieves the list of anchors and probes
//! from RIPE's database every day, selects the probes to be used as
//! landmarks, and updates a delay–distance model for each landmark". The
//! measurement tools ask it which landmarks to use in each phase:
//!
//! * **phase 1** — three anchors per continent; the continent whose
//!   anchors answer fastest is taken as the target's continent;
//! * **phase 2** — 25 landmarks drawn at random from the anchors *and*
//!   stable probes of that continent ("random selection … spreads out
//!   the load", §4.1).

use crate::calibration::CalibrationDb;
use crate::constellation::{Constellation, LandmarkId};
use simrng::Rng;
use worldmap::{Continent, WorldAtlas};

/// Number of anchors per continent used in phase 1.
pub const PHASE1_ANCHORS_PER_CONTINENT: usize = 3;

/// Number of landmarks used in phase 2.
pub const PHASE2_LANDMARKS: usize = 25;

/// The landmark coordination server.
///
/// Construction precomputes everything that is a pure function of the
/// constellation — the continent index, the phase-1 anchor set, each
/// landmark's continent, and each probe's calibration anchor — so the
/// audit can stand the server up **once** and share it read-only across
/// every worker instead of rebuilding it per proxy.
pub struct LandmarkServer<'a> {
    constellation: &'a Constellation,
    calibration: &'a CalibrationDb,
    atlas: &'a WorldAtlas,
    /// continent index → landmark ids on that continent.
    by_continent: Vec<Vec<LandmarkId>>,
    /// The fixed phase-1 anchor set (up to three per continent).
    phase1: Vec<LandmarkId>,
    /// landmark id → its continent.
    continents: Vec<Continent>,
    /// landmark id → the anchor whose calibration it uses (itself for
    /// anchors, the nearest calibrated anchor for probes).
    calibration_anchor: Vec<LandmarkId>,
}

impl<'a> LandmarkServer<'a> {
    /// Stand up the server over a constellation and its calibration.
    pub fn new(
        constellation: &'a Constellation,
        calibration: &'a CalibrationDb,
        atlas: &'a WorldAtlas,
    ) -> LandmarkServer<'a> {
        let by_continent: Vec<Vec<LandmarkId>> = Continent::ALL
            .iter()
            .map(|&c| constellation.on_continent(atlas, c))
            .collect();
        let landmarks = constellation.landmarks();
        let continents = landmarks
            .iter()
            .map(|lm| atlas.country(lm.country).continent())
            .collect();
        let calibration_anchor = landmarks
            .iter()
            .enumerate()
            .map(|(id, lm)| {
                if lm.is_anchor {
                    return id;
                }
                // Nearest anchor by great-circle distance — the paper's
                // server assigns probes "the most recent mesh data of
                // nearby anchors".
                constellation
                    .anchors()
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da = a.location.distance_km(&lm.location);
                        let db = b.location.distance_km(&lm.location);
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .expect("constellation has anchors")
            })
            .collect();
        let phase1 = phase1_selection(constellation, &by_continent);
        LandmarkServer {
            constellation,
            calibration,
            atlas,
            by_continent,
            phase1,
            continents,
            calibration_anchor,
        }
    }

    /// The constellation being served.
    pub fn constellation(&self) -> &Constellation {
        self.constellation
    }

    /// The calibration database.
    pub fn calibration(&self) -> &CalibrationDb {
        self.calibration
    }

    /// The world atlas in use.
    pub fn atlas(&self) -> &WorldAtlas {
        self.atlas
    }

    /// Phase-1 landmark set: up to three anchors per continent (fewer on
    /// continents that simply have fewer anchors), chosen to be spread
    /// out (first, middle, last of the continent's anchor list).
    /// Precomputed at construction — every proxy probes the same set.
    pub fn phase1_landmarks(&self) -> &[LandmarkId] {
        &self.phase1
    }

    /// The continent a landmark sits on (precomputed at construction).
    pub fn continent_of(&self, landmark: LandmarkId) -> Continent {
        self.continents[landmark]
    }

    /// Phase-2 landmark set: `PHASE2_LANDMARKS` drawn uniformly without
    /// replacement from all landmarks (anchors + stable probes) on the
    /// given continent. Returns fewer if the continent is small.
    pub fn phase2_landmarks<R: Rng + ?Sized>(
        &self,
        continent: Continent,
        rng: &mut R,
    ) -> Vec<LandmarkId> {
        let pool = &self.by_continent[continent.index()];
        sample_without_replacement(pool, PHASE2_LANDMARKS, rng)
    }

    /// All landmarks on a continent (used by the iterative-refinement
    /// extension and the landmark-effectiveness analysis).
    pub fn continent_landmarks(&self, continent: Continent) -> &[LandmarkId] {
        &self.by_continent[continent.index()]
    }

    /// Calibration set for a landmark, if it is a calibrated anchor.
    /// Probes are uncalibrated: the paper's server assigns them a model
    /// from the most recent mesh data of nearby anchors — we implement
    /// that as "nearest calibrated anchor's model", resolved once at
    /// construction so the per-observation path is a table lookup.
    pub fn calibration_for(&self, landmark: LandmarkId) -> &crate::CalibrationSet {
        self.calibration.for_anchor(self.calibration_anchor[landmark])
    }
}

/// The fixed phase-1 selection: first, middle, and last anchor of each
/// continent's anchor list (all of them when a continent has three or
/// fewer).
fn phase1_selection(
    constellation: &Constellation,
    by_continent: &[Vec<LandmarkId>],
) -> Vec<LandmarkId> {
    let mut out = Vec::new();
    for ids in by_continent {
        let anchors: Vec<LandmarkId> = ids
            .iter()
            .copied()
            .filter(|&id| constellation.landmarks()[id].is_anchor)
            .collect();
        match anchors.len() {
            0 => {}
            n if n <= PHASE1_ANCHORS_PER_CONTINENT => out.extend(anchors),
            n => {
                out.push(anchors[0]);
                out.push(anchors[n / 2]);
                out.push(anchors[n - 1]);
            }
        }
    }
    out
}

/// Uniform sample of `k` distinct elements (Fisher–Yates prefix).
fn sample_without_replacement<R: Rng + ?Sized>(
    pool: &[LandmarkId],
    k: usize,
    rng: &mut R,
) -> Vec<LandmarkId> {
    use simrng::RngExt;
    let mut v: Vec<LandmarkId> = pool.to_vec();
    let k = k.min(v.len());
    for i in 0..k {
        let j = rng.random_range(i..v.len());
        v.swap(i, j);
    }
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::ConstellationConfig;
    use geokit::GeoGrid;
    use netsim::{WorldNet, WorldNetConfig};
    use simrng::rngs::StdRng;
    use simrng::SeedableRng;
    use std::sync::{Arc, OnceLock};

    struct Fixture {
        world: WorldNet,
        constellation: Constellation,
        calibration: CalibrationDb,
    }

    fn fixture() -> &'static Fixture {
        static S: OnceLock<Fixture> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = Arc::new(worldmap::WorldAtlas::new(GeoGrid::new(1.0)));
            let mut world = WorldNet::build(atlas, WorldNetConfig::default());
            let constellation =
                Constellation::place(&mut world, &ConstellationConfig::small(11));
            let calibration = CalibrationDb::collect(world.network_mut(), &constellation, 8);
            Fixture {
                world,
                constellation,
                calibration,
            }
        })
    }

    #[test]
    fn phase1_covers_every_continent_with_anchors() {
        let f = fixture();
        let server = LandmarkServer::new(&f.constellation, &f.calibration, f.world.atlas());
        let p1 = server.phase1_landmarks();
        // Our small config gives every continent ≥1 anchor, so 8
        // continents × up to 3.
        assert!(p1.len() >= 8, "phase1 too small: {}", p1.len());
        assert!(p1.len() <= 24);
        for &id in p1 {
            assert!(f.constellation.landmarks()[id].is_anchor);
        }
        // No duplicates.
        let mut sorted = p1.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), p1.len());
    }

    #[test]
    fn continent_table_matches_atlas() {
        let f = fixture();
        let server = LandmarkServer::new(&f.constellation, &f.calibration, f.world.atlas());
        for (id, lm) in f.constellation.landmarks().iter().enumerate() {
            assert_eq!(
                server.continent_of(id),
                f.world.atlas().country(lm.country).continent()
            );
        }
    }

    #[test]
    fn phase2_draws_from_right_continent() {
        let f = fixture();
        let server = LandmarkServer::new(&f.constellation, &f.calibration, f.world.atlas());
        let mut rng = StdRng::seed_from_u64(3);
        let p2 = server.phase2_landmarks(Continent::Europe, &mut rng);
        assert_eq!(p2.len(), PHASE2_LANDMARKS);
        for &id in &p2 {
            let lm = &f.constellation.landmarks()[id];
            assert_eq!(
                f.world.atlas().country(lm.country).continent(),
                Continent::Europe
            );
        }
        let mut sorted = p2.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), p2.len(), "duplicates in phase-2 draw");
    }

    #[test]
    fn phase2_varies_by_draw() {
        let f = fixture();
        let server = LandmarkServer::new(&f.constellation, &f.calibration, f.world.atlas());
        let mut rng = StdRng::seed_from_u64(4);
        let a = server.phase2_landmarks(Continent::Europe, &mut rng);
        let b = server.phase2_landmarks(Continent::Europe, &mut rng);
        assert_ne!(a, b, "random landmark selection should vary");
    }

    #[test]
    fn small_continent_returns_what_it_has() {
        let f = fixture();
        let server = LandmarkServer::new(&f.constellation, &f.calibration, f.world.atlas());
        let mut rng = StdRng::seed_from_u64(5);
        let p2 = server.phase2_landmarks(Continent::Australia, &mut rng);
        assert!(!p2.is_empty());
        assert!(p2.len() <= PHASE2_LANDMARKS);
    }

    #[test]
    fn probe_calibration_falls_back_to_nearest_anchor() {
        let f = fixture();
        let server = LandmarkServer::new(&f.constellation, &f.calibration, f.world.atlas());
        let probe_id = f.constellation.num_anchors(); // first probe
        let set = server.calibration_for(probe_id);
        assert!(!set.is_empty());
    }
}
