#![warn(missing_docs)]

//! # atlas — the landmark constellation and measurement tools
//!
//! The paper's landmarks are the RIPE Atlas "anchors" (≈ 250 dedicated,
//! reliably-located measurement hosts that continuously ping each other
//! and publish the results) plus stable "probes" used to thicken coverage
//! in the second measurement phase (§4). This crate is the substitute:
//!
//! * [`Constellation`] — anchors and probes placed with the paper's
//!   geographic skew (majority in Europe, then North America, sparse in
//!   Africa and South America — Fig. 3), attached as hosts to the
//!   simulated network;
//! * [`CalibrationDb`] — the rolling "most recent two weeks of ping
//!   measurements": per-anchor delay–distance scatter from the
//!   anchor↔anchor mesh, which the delay models calibrate on;
//! * [`LandmarkServer`] — the paper's coordination server: refreshes the
//!   landmark list, serves the two-phase landmark selections (3 anchors
//!   per continent for the continent guess; 25 random same-continent
//!   landmarks for the refinement, §4.1);
//! * [`tools`] — the two measurement tools of §4.2/§4.3: the CLI tool
//!   (TCP `connect()` to port 80, exactly one round trip) and the Web
//!   tool (HTTPS-to-port-80 trick: one round trip if the landmark
//!   refuses, two if it accepts and the TLS ClientHello must bounce),
//!   with the per-OS/browser noise the paper measures in Figs. 4–6.

pub mod calibration;
pub mod constellation;
pub mod server;
pub mod tools;

pub use calibration::{CalibrationDb, CalibrationSet};
pub use constellation::{Constellation, ConstellationConfig, Landmark, LandmarkId};
pub use server::LandmarkServer;
pub use tools::{Browser, CliTool, MeasurementOs, RttSample, WebTool};
