//! Placement of the landmark constellation.
//!
//! The paper's Fig. 3 shows the RIPE Atlas geography: anchors are mostly
//! European, North America is well represented, Asia and South America
//! thinner, Africa sparse. That geometry matters — "the most difficult
//! case for active geolocation is when all of the landmarks are far away
//! from the target, in the same direction" — so the constellation
//! reproduces it with per-continent quotas.

use geokit::GeoPoint;
use netsim::{FilterPolicy, NodeId, WorldNet};
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use worldmap::{Continent, CountryId};

/// Index of a landmark within its [`Constellation`].
pub type LandmarkId = usize;

/// One landmark host.
#[derive(Debug, Clone)]
pub struct Landmark {
    /// The attached network node.
    pub node: NodeId,
    /// Where the landmark physically is (documented location — for
    /// anchors the paper trusts these, and so do we).
    pub location: GeoPoint,
    /// Country the landmark sits in.
    pub country: CountryId,
    /// Anchor (dedicated, meshed, calibrated) vs stable probe.
    pub is_anchor: bool,
    /// Whether the node software listens on TCP port 80 — varies by
    /// version and is *not known in advance* to the Web tool (§4.2).
    pub port_80_open: bool,
}

/// Constellation size and placement parameters.
#[derive(Debug, Clone)]
pub struct ConstellationConfig {
    /// Seed for placement and port-80 coin flips.
    pub seed: u64,
    /// Anchor quota per continent, in [`Continent::ALL`] order
    /// (Europe, Africa, Asia, Oceania, NA, CA, SA, Australia).
    pub anchors_per_continent: [usize; 8],
    /// Probe quota per continent, same order.
    pub probes_per_continent: [usize; 8],
    /// Fraction of landmarks listening on port 80.
    pub port_80_fraction: f64,
}

impl Default for ConstellationConfig {
    /// The paper-scale constellation: 250 anchors, ~600 stable probes,
    /// majority in Europe and North America (Fig. 3).
    fn default() -> Self {
        ConstellationConfig {
            seed: 0xA7145,
            //                      EU  AF  AS  OC  NA  CA  SA  AU
            anchors_per_continent: [140, 8, 25, 6, 55, 2, 12, 2],
            probes_per_continent: [300, 20, 70, 15, 150, 10, 30, 5],
            port_80_fraction: 0.6,
        }
    }
}

impl ConstellationConfig {
    /// A small constellation for fast tests: same shape, ~1/5 the size.
    pub fn small(seed: u64) -> ConstellationConfig {
        ConstellationConfig {
            seed,
            anchors_per_continent: [28, 2, 5, 2, 11, 1, 3, 1],
            probes_per_continent: [60, 4, 14, 3, 30, 2, 6, 1],
            port_80_fraction: 0.6,
        }
    }
}

/// The placed constellation.
#[derive(Debug)]
pub struct Constellation {
    landmarks: Vec<Landmark>,
    n_anchors: usize,
}

impl Constellation {
    /// Place landmarks into the world and attach them to the network.
    /// Anchors come first in the landmark list.
    pub fn place(world: &mut WorldNet, config: &ConstellationConfig) -> Constellation {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut landmarks = Vec::new();

        for (is_anchor, quotas) in [
            (true, &config.anchors_per_continent),
            (false, &config.probes_per_continent),
        ] {
            for (ci, &quota) in quotas.iter().enumerate() {
                let continent = Continent::ALL[ci];
                // Countries of this continent, weighted by hosting ease
                // (infrastructure density) with a floor so poor regions
                // still get some landmarks.
                let candidates: Vec<(CountryId, f64)> = world
                    .atlas()
                    .countries()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.continent() == continent)
                    .map(|(id, c)| (id, c.hosting() + 0.03))
                    .collect();
                assert!(
                    !candidates.is_empty(),
                    "no countries on continent {continent}"
                );
                let weights: Vec<f64> = candidates.iter().map(|&(_, w)| w).collect();
                for _ in 0..quota {
                    let pick = geokit::sampling::weighted_index(&mut rng, &weights);
                    let country = candidates[pick].0;
                    // Anchors are dedicated hosts in data centers near the
                    // metro hubs; probes are scattered residential-ish
                    // hosts with longer last miles.
                    let jitter_km = if is_anchor { 45.0 } else { 150.0 };
                    let location = world
                        .atlas()
                        .sample_point_in_country(country, jitter_km, &mut rng);
                    let port_80_open =
                        geokit::sampling::coin(&mut rng, config.port_80_fraction);
                    let node =
                        world.attach_host(location, FilterPolicy::landmark(port_80_open));
                    landmarks.push(Landmark {
                        node,
                        location,
                        country,
                        is_anchor,
                        port_80_open,
                    });
                }
            }
        }
        let n_anchors: usize = config.anchors_per_continent.iter().sum();
        Constellation {
            landmarks,
            n_anchors,
        }
    }

    /// All landmarks (anchors first).
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// Anchor slice.
    pub fn anchors(&self) -> &[Landmark] {
        &self.landmarks[..self.n_anchors]
    }

    /// Probe slice.
    pub fn probes(&self) -> &[Landmark] {
        &self.landmarks[self.n_anchors..]
    }

    /// Number of anchors.
    pub fn num_anchors(&self) -> usize {
        self.n_anchors
    }

    /// Landmark ids on a given continent (anchors and probes).
    pub fn on_continent(
        &self,
        atlas: &worldmap::WorldAtlas,
        continent: Continent,
    ) -> Vec<LandmarkId> {
        self.landmarks
            .iter()
            .enumerate()
            .filter(|(_, lm)| atlas.country(lm.country).continent() == continent)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::GeoGrid;
    use netsim::WorldNetConfig;
    use std::sync::{Arc, OnceLock};
    use worldmap::WorldAtlas;

    fn setup() -> &'static (WorldNet, Constellation) {
        static S: OnceLock<(WorldNet, Constellation)> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
            let mut world = WorldNet::build(atlas, WorldNetConfig::default());
            let c = Constellation::place(&mut world, &ConstellationConfig::small(99));
            (world, c)
        })
    }

    #[test]
    fn quotas_are_respected() {
        let (_, c) = setup();
        let cfg = ConstellationConfig::small(99);
        assert_eq!(c.num_anchors(), cfg.anchors_per_continent.iter().sum());
        assert_eq!(
            c.landmarks().len() - c.num_anchors(),
            cfg.probes_per_continent.iter().sum()
        );
    }

    #[test]
    fn europe_dominates() {
        let (world, c) = setup();
        let eu = c.on_continent(world.atlas(), Continent::Europe).len();
        let af = c.on_continent(world.atlas(), Continent::Africa).len();
        assert!(eu > 5 * af, "EU {eu} vs AF {af}");
    }

    #[test]
    fn anchors_are_reachable_hosts() {
        let (world, c) = setup();
        let net = world.network();
        let first = c.anchors()[0].node;
        for lm in c.anchors().iter().skip(1).take(10) {
            assert!(net.floor_rtt_ms(first, lm.node).is_some());
        }
    }

    #[test]
    fn landmark_country_matches_location() {
        // At coarse grids, sub-cell microstates can shadow each other
        // (Guernsey and Jersey share a 1° cell), so allow a mismatch only
        // when the painted owner's capital is a near neighbour of the
        // labelled country's capital.
        let (world, c) = setup();
        let atlas = world.atlas();
        for lm in c.landmarks().iter().take(50) {
            let painted = atlas.country_of_point(&lm.location);
            if painted == Some(lm.country) {
                continue;
            }
            let painted = painted.unwrap_or_else(|| {
                panic!("landmark at {} painted as ocean", lm.location)
            });
            let gap = atlas
                .country(painted)
                .capital()
                .distance_km(&atlas.country(lm.country).capital());
            assert!(
                gap < 150.0,
                "landmark at {} labeled {} but painted {} ({} km apart)",
                lm.location,
                atlas.country(lm.country).iso2(),
                atlas.country(painted).iso2(),
                gap
            );
        }
    }

    #[test]
    fn port_80_mix() {
        let (_, c) = setup();
        let open = c.landmarks().iter().filter(|l| l.port_80_open).count();
        let frac = open as f64 / c.landmarks().len() as f64;
        assert!((0.4..0.8).contains(&frac), "port-80 fraction {frac}");
    }

    #[test]
    fn placement_is_deterministic() {
        let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
        let build = || {
            let mut world = WorldNet::build(Arc::clone(&atlas), WorldNetConfig::default());
            Constellation::place(&mut world, &ConstellationConfig::small(7))
                .landmarks()
                .iter()
                .map(|l| (l.node, l.country, l.port_80_open))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
