//! The anchor-mesh calibration database.
//!
//! RIPE Atlas anchors "continuously ping each other and upload the
//! round-trip times to a publicly accessible database"; the paper's
//! landmark server recalibrates every landmark's delay–distance model
//! from "the most recent two weeks of ping measurements" (§4.1). Here,
//! two weeks of mesh pings are summarized the way every algorithm in the
//! paper consumes them: per anchor pair, the *minimum* observed RTT
//! (halved to one-way), paired with the pair's great-circle distance.

use crate::constellation::Constellation;
use netsim::Network;

/// Delay–distance calibration data for one landmark: `(distance_km,
/// one_way_ms)` per peer anchor.
#[derive(Debug, Clone, Default)]
pub struct CalibrationSet {
    points: Vec<(f64, f64)>,
}

impl CalibrationSet {
    /// Build from raw points (used by tests and synthetic scenarios).
    pub fn from_points(points: Vec<(f64, f64)>) -> CalibrationSet {
        assert!(
            points
                .iter()
                .all(|&(d, t)| d.is_finite() && t.is_finite() && d >= 0.0 && t >= 0.0),
            "calibration points must be finite and non-negative"
        );
        CalibrationSet { points }
    }

    /// The `(distance_km, one_way_ms)` scatter.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of calibration points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no calibration data is available.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The calibration database: one [`CalibrationSet`] per anchor, built
/// from the anchor↔anchor mesh.
#[derive(Debug)]
pub struct CalibrationDb {
    /// Indexed by anchor position within the constellation's anchor list.
    sets: Vec<CalibrationSet>,
}

impl CalibrationDb {
    /// Collect the mesh: for every ordered anchor pair, the minimum of
    /// `pings_per_pair` RTT draws (the "two weeks of pings" summary),
    /// halved to a one-way time.
    ///
    /// Cost is `O(anchors² · pings_per_pair)` draws; with the default
    /// 250-anchor constellation and 40 draws this is a few seconds in a
    /// release build, so bulk callers cache the result.
    pub fn collect(
        network: &mut Network,
        constellation: &Constellation,
        pings_per_pair: usize,
    ) -> CalibrationDb {
        let anchors = constellation.anchors();
        let mut sets = Vec::with_capacity(anchors.len());
        for a in anchors {
            let mut points = Vec::with_capacity(anchors.len().saturating_sub(1));
            for b in anchors {
                if a.node == b.node {
                    continue;
                }
                let Some(min_rtt) = network.min_of_n_rtt_ms(a.node, b.node, pings_per_pair)
                else {
                    continue;
                };
                let dist = a.location.distance_km(&b.location);
                points.push((dist, min_rtt / 2.0));
            }
            sets.push(CalibrationSet::from_points(points));
        }
        CalibrationDb { sets }
    }

    /// Calibration set of the anchor at `anchor_idx` (its position within
    /// `constellation.anchors()`).
    pub fn for_anchor(&self, anchor_idx: usize) -> &CalibrationSet {
        &self.sets[anchor_idx]
    }

    /// Number of anchors with calibration data.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::{Constellation, ConstellationConfig};
    use geokit::GeoGrid;
    use netsim::{WorldNet, WorldNetConfig};
    use std::sync::{Arc, Mutex, OnceLock};
    use worldmap::WorldAtlas;

    fn setup() -> &'static Mutex<(WorldNet, Constellation, CalibrationDb)> {
        static S: OnceLock<Mutex<(WorldNet, Constellation, CalibrationDb)>> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
            let mut world = WorldNet::build(atlas, WorldNetConfig::default());
            let c = Constellation::place(&mut world, &ConstellationConfig::small(5));
            let db = CalibrationDb::collect(world.network_mut(), &c, 12);
            Mutex::new((world, c, db))
        })
    }

    #[test]
    fn one_set_per_anchor() {
        let s = setup().lock().unwrap();
        let (_, c, db) = &*s;
        assert_eq!(db.len(), c.num_anchors());
        for i in 0..db.len() {
            assert_eq!(db.for_anchor(i).len(), c.num_anchors() - 1);
        }
    }

    #[test]
    fn no_point_beats_fiber_speed() {
        let s = setup().lock().unwrap();
        let (_, _, db) = &*s;
        for i in 0..db.len() {
            for &(d, t) in db.for_anchor(i).points() {
                // one-way time must respect distance / 200 km/ms.
                assert!(
                    t + 1e-9 >= d / geokit::FIBER_SPEED_KM_PER_MS,
                    "superluminal calibration point ({d} km, {t} ms)"
                );
            }
        }
    }

    #[test]
    fn effective_speed_is_realistic() {
        // The bulk of calibration points should imply an effective speed
        // well below the fibre limit (circuitous paths), clustering near
        // the ~60–150 km/ms band the paper's Fig. 2 shows.
        let s = setup().lock().unwrap();
        let (_, _, db) = &*s;
        let mut speeds = Vec::new();
        for i in 0..db.len() {
            for &(d, t) in db.for_anchor(i).points() {
                if d > 2000.0 {
                    speeds.push(d / t);
                }
            }
        }
        let med = geokit::stats::median(&speeds).unwrap();
        assert!(
            (55.0..165.0).contains(&med),
            "median effective speed {med} km/ms"
        );
    }

    #[test]
    fn from_points_validates() {
        let set = CalibrationSet::from_points(vec![(100.0, 2.0)]);
        assert_eq!(set.points(), &[(100.0, 2.0)]);
        assert!(!set.is_empty());
        assert!(CalibrationSet::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_distance() {
        CalibrationSet::from_points(vec![(-1.0, 2.0)]);
    }
}
