//! The two measurement tools and their noise models (§4.2–§4.3).
//!
//! **CLI tool** — POSIX `connect()` to TCP port 80; returns as soon as the
//! second handshake packet (SYN-ACK *or* RST) arrives: exactly one round
//! trip, with negligible client-side overhead. Used for all proxy
//! measurements.
//!
//! **Web tool** — runs in a browser, so it can only issue `fetch()`es. It
//! requests `https://…:80/`, which fails after **one** round trip if the
//! landmark's port 80 is closed (RST) but after **two** if it is open
//! (SYN-ACK, then the TLS ClientHello triggers a protocol error on the
//! second round trip) — and the tool cannot know which it got (Fig. 7).
//! On Windows the measurements are much noisier and a browser-dependent
//! population of "high outliers" appears, hundreds of milliseconds to
//! seconds above anything distance can explain (Figs. 5–6). These
//! upward-biased errors are exactly why minimum-taking CBG survives
//! crowdsourced data better than Octant/Spotter (§5).

use geokit::sampling;
use netsim::{Network, NodeId};
use simrng::Rng;

/// One measured landmark RTT, as delivered to a geolocation algorithm.
#[derive(Debug, Clone, Copy)]
pub struct RttSample {
    /// The landmark's node.
    pub landmark: NodeId,
    /// The observed round-trip time, ms — possibly covering one *or* two
    /// actual round trips, possibly inflated by client-side noise.
    pub rtt_ms: f64,
    /// How many true round trips the sample covered (ground truth, not
    /// visible to the algorithms; used by the tool-validation figures).
    pub true_round_trips: u8,
}

/// The command-line measurement tool.
#[derive(Debug, Clone, Copy, Default)]
pub struct CliTool;

impl CliTool {
    /// Measure one TCP-connect RTT from `client` to `landmark`. `None`
    /// if filtered/unreachable (the CLI tool discards errors other than
    /// "connection refused", §4.2).
    pub fn measure(
        &self,
        network: &mut Network,
        client: NodeId,
        landmark: NodeId,
    ) -> Option<RttSample> {
        let rtt = network.tcp_connect_rtt(client, landmark, 80)?;
        Some(RttSample {
            landmark,
            rtt_ms: rtt.as_ms(),
            true_round_trips: 1,
        })
    }

    /// Measure through a VPN proxy (the client's connect is tunnelled).
    pub fn measure_via_proxy(
        &self,
        network: &mut Network,
        client: NodeId,
        proxy: NodeId,
        landmark: NodeId,
    ) -> Option<RttSample> {
        let rtt = network.tcp_connect_via_proxy_rtt(client, proxy, landmark, 80)?;
        Some(RttSample {
            landmark,
            rtt_ms: rtt.as_ms(),
            true_round_trips: 1,
        })
    }
}

/// Client operating system for the Web tool (§4.3: Windows measurements
/// are far noisier than Linux ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurementOs {
    /// Clean timings.
    Linux,
    /// Noisy timings plus browser-dependent high outliers.
    Windows,
}

/// Browser running the Web tool. The high-outlier magnitude is
/// browser-dependent (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Browser {
    /// Chrome 68-era behaviour.
    Chrome,
    /// Firefox 52-era behaviour.
    FirefoxEsr,
    /// Firefox 61-era behaviour.
    Firefox,
    /// Edge 17-era behaviour.
    Edge,
}

impl Browser {
    /// All modelled browsers.
    pub const ALL: [Browser; 4] = [
        Browser::Chrome,
        Browser::FirefoxEsr,
        Browser::Firefox,
        Browser::Edge,
    ];

    /// (probability, mean ms, sd ms) of a Windows high-outlier event for
    /// this browser — values chosen to reproduce the Fig. 6 spread where
    /// outlier magnitude depends primarily on the browser.
    fn outlier_profile(self) -> (f64, f64, f64) {
        match self {
            Browser::Chrome => (0.05, 700.0, 150.0),
            Browser::FirefoxEsr => (0.08, 1500.0, 300.0),
            Browser::Firefox => (0.06, 1000.0, 200.0),
            Browser::Edge => (0.10, 2300.0, 400.0),
        }
    }

    /// Per-measurement jitter scale on Windows, ms.
    fn windows_jitter_ms(self) -> f64 {
        match self {
            Browser::Chrome => 12.0,
            Browser::FirefoxEsr => 18.0,
            Browser::Firefox => 15.0,
            Browser::Edge => 22.0,
        }
    }
}

/// The browser-based measurement tool.
#[derive(Debug, Clone, Copy)]
pub struct WebTool {
    /// Client OS.
    pub os: MeasurementOs,
    /// Browser in use.
    pub browser: Browser,
}

impl WebTool {
    /// Measure one fetch-failure time from `client` to `landmark`.
    ///
    /// Needs to know whether the landmark listens on port 80 to simulate
    /// the 1-vs-2-round-trip split — the *tool* doesn't get to see that
    /// bit (it is not in the returned sample's `rtt_ms`), but the figure
    /// harness does, via `true_round_trips`.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        network: &mut Network,
        client: NodeId,
        landmark: NodeId,
        rng: &mut R,
    ) -> Option<RttSample> {
        let first = network.tcp_connect_rtt(client, landmark, 80)?;
        let port_80_open = network
            .topology()
            .node(landmark)
            .policy
            .open_tcp_ports
            .contains(&80);
        let (mut rtt_ms, round_trips) = if port_80_open {
            // SYN-ACK, then the ClientHello must travel out and the
            // error back: a second full round trip.
            let second = network.sample_rtt_ms(client, landmark)?;
            (first.as_ms() + second, 2u8)
        } else {
            (first.as_ms(), 1u8)
        };

        // Client-side overhead: small on Linux, substantial on Windows,
        // plus the Windows high-outlier population.
        match self.os {
            MeasurementOs::Linux => {
                rtt_ms += sampling::lognormal(rng, 0.3, 0.5); // ~1.3 ms typical
            }
            MeasurementOs::Windows => {
                rtt_ms += sampling::lognormal(rng, 1.8, 0.7); // ~6 ms typical
                rtt_ms += sampling::normal(rng, 0.0, self.browser.windows_jitter_ms()).abs();
                let (p, mean, sd) = self.browser.outlier_profile();
                if sampling::coin(rng, p) {
                    rtt_ms += sampling::normal(rng, mean, sd).max(100.0);
                }
            }
        }
        Some(RttSample {
            landmark,
            rtt_ms,
            true_round_trips: round_trips,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::{plain_node, NodeKind, Topology};
    use netsim::FilterPolicy;
    use simrng::rngs::StdRng;
    use simrng::SeedableRng;

    /// client — IXP — two landmarks (one with port 80 open, one closed).
    fn net() -> (Network, NodeId, NodeId, NodeId) {
        let mut topo = Topology::new();
        let ixp = topo.add_node(plain_node(NodeKind::Ixp, geokit::GeoPoint::new(50.0, 8.0)));
        let client = topo.add_node(plain_node(NodeKind::Host, geokit::GeoPoint::new(50.1, 8.7)));
        let mut open = plain_node(NodeKind::Host, geokit::GeoPoint::new(48.0, 2.0));
        open.policy = FilterPolicy::landmark(true);
        let mut closed = plain_node(NodeKind::Host, geokit::GeoPoint::new(52.0, 13.0));
        closed.policy = FilterPolicy::landmark(false);
        let open = topo.add_node(open);
        let closed = topo.add_node(closed);
        topo.add_link(client, ixp, 0.4);
        topo.add_link(open, ixp, 3.2);
        topo.add_link(closed, ixp, 2.8);
        (Network::new(topo, 11), client, open, closed)
    }

    #[test]
    fn cli_measures_one_round_trip() {
        let (mut net, client, open, closed) = net();
        let a = CliTool.measure(&mut net, client, open).unwrap();
        let b = CliTool.measure(&mut net, client, closed).unwrap();
        assert_eq!(a.true_round_trips, 1);
        assert_eq!(b.true_round_trips, 1); // RST also measures one RTT
        let floor_open = net.floor_rtt_ms(client, open).unwrap();
        assert!(a.rtt_ms >= floor_open);
    }

    #[test]
    fn web_tool_round_trip_split() {
        let (mut net, client, open, closed) = net();
        let tool = WebTool {
            os: MeasurementOs::Linux,
            browser: Browser::Chrome,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let a = tool.measure(&mut net, client, open, &mut rng).unwrap();
        let b = tool.measure(&mut net, client, closed, &mut rng).unwrap();
        assert_eq!(a.true_round_trips, 2);
        assert_eq!(b.true_round_trips, 1);
    }

    #[test]
    fn two_round_trips_take_about_twice_as_long() {
        let (mut net, client, open, _) = net();
        let tool = WebTool {
            os: MeasurementOs::Linux,
            browser: Browser::Chrome,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let cli_min = (0..30)
            .filter_map(|_| CliTool.measure(&mut net, client, open))
            .map(|s| s.rtt_ms)
            .fold(f64::INFINITY, f64::min);
        let web_min = (0..30)
            .filter_map(|_| tool.measure(&mut net, client, open, &mut rng))
            .map(|s| s.rtt_ms)
            .fold(f64::INFINITY, f64::min);
        let ratio = web_min / cli_min;
        assert!(
            (1.7..2.6).contains(&ratio),
            "web/cli ratio {ratio} (web {web_min}, cli {cli_min})"
        );
    }

    #[test]
    fn windows_is_noisier_than_linux() {
        let (mut net, client, open, _) = net();
        let mut rng = StdRng::seed_from_u64(3);
        let mut spread = |os| {
            let tool = WebTool {
                os,
                browser: Browser::Firefox,
            };
            let samples: Vec<f64> = (0..300)
                .filter_map(|_| tool.measure(&mut net, client, open, &mut rng))
                .map(|s| s.rtt_ms)
                .collect();
            geokit::stats::std_dev(&samples)
        };
        let linux = spread(MeasurementOs::Linux);
        let windows = spread(MeasurementOs::Windows);
        assert!(
            windows > 3.0 * linux,
            "windows sd {windows} vs linux sd {linux}"
        );
    }

    #[test]
    fn windows_high_outliers_exist_and_depend_on_browser() {
        let (mut net, client, open, _) = net();
        let mut rng = StdRng::seed_from_u64(4);
        let mut high = |browser: Browser| {
            let tool = WebTool {
                os: MeasurementOs::Windows,
                browser,
            };
            let samples: Vec<f64> = (0..800)
                .filter_map(|_| tool.measure(&mut net, client, open, &mut rng))
                .map(|s| s.rtt_ms)
                .collect();
            let outliers: Vec<f64> = samples.iter().copied().filter(|&v| v > 300.0).collect();
            assert!(
                !outliers.is_empty(),
                "{browser:?}: no high outliers in 800 samples"
            );
            geokit::stats::mean(&outliers)
        };
        let chrome = high(Browser::Chrome);
        let edge = high(Browser::Edge);
        assert!(
            edge > chrome + 500.0,
            "outlier magnitude should be browser-dependent: chrome {chrome}, edge {edge}"
        );
    }

    #[test]
    fn filtered_landmark_yields_none() {
        let (mut net, client, open, _) = net();
        net.topology_mut().node_mut(open).policy.filtered_tcp_ports = vec![80];
        assert!(CliTool.measure(&mut net, client, open).is_none());
        let tool = WebTool {
            os: MeasurementOs::Linux,
            browser: Browser::Chrome,
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(tool.measure(&mut net, client, open, &mut rng).is_none());
    }
}
