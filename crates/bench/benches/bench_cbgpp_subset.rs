//! CBG++ subset-search scaling: the fast path (consistent disks) vs the
//! counting sweep (an inconsistent disk forces the per-cell popcount).

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use geokit::{GeoGrid, GeoPoint, Region};
use geoloc::multilateration::{max_consistent_subset, RingConstraint};
use std::hint::black_box;

fn consistent(n: usize) -> Vec<RingConstraint> {
    let target = GeoPoint::new(48.0, 11.0);
    (0..n)
        .map(|i| {
            let lm = target.destination(360.0 * i as f64 / n as f64, 900.0);
            RingConstraint::disk(lm, 1100.0)
        })
        .collect()
}

fn with_conflict(n: usize) -> Vec<RingConstraint> {
    let mut cs = consistent(n - 1);
    // One disk on the other side of the planet: forces the slow path.
    cs.push(RingConstraint::disk(GeoPoint::new(-30.0, -150.0), 400.0));
    cs
}

fn bench_subset(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_consistent_subset");
    group.sample_size(20);
    for res in [2.0, 1.0] {
        let mask = Region::full(GeoGrid::new(res));
        for n in [10usize, 25] {
            let fast = consistent(n);
            group.bench_function(format!("fast path {res}deg x{n}"), |b| {
                b.iter(|| max_consistent_subset(black_box(&fast), black_box(&mask)))
            });
            let slow = with_conflict(n);
            group.bench_function(format!("counting sweep {res}deg x{n}"), |b| {
                b.iter(|| max_consistent_subset(black_box(&slow), black_box(&mask)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_subset);
criterion_main!(benches);
