//! Verdict-store cost: writing a finished study to disk, replaying the
//! file back, and the three query families the store exists to answer
//! without re-measurement (per-proxy lookup, per-provider trend,
//! per-country false-claim rates), plus the revalidation work queue.
//!
//! The store is populated from a real `Scale::Small` audit run written
//! as three epochs, so index sizes and verdict mixes are the shapes a
//! CI-sized study actually produces. Group name "store" keys the
//! machine-readable artifact (bench_output/BENCH_store.json).

use bench::harness::Criterion;
use bench::{build_study_context, criterion_group, criterion_main, Scale};
use std::hint::black_box;
use std::path::PathBuf;
use vpnstudy::VerdictStore;

/// A scratch path that is fresh per call (the store is append-only, so
/// benches that write must not share files).
fn scratch(name: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pv-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{name}-{n}.jsonl"))
}

fn bench_store(c: &mut Criterion) {
    let ctx = build_study_context(Scale::Small);

    // One populated store every read-side bench shares: the same study
    // appended as three epochs a day apart.
    const DAY_MS: u64 = 86_400_000;
    let populated_path = scratch("populated", 0);
    let _ = std::fs::remove_file(&populated_path);
    let mut populated = VerdictStore::open(&populated_path).expect("open store");
    for epoch in 0..3u64 {
        populated
            .append_epoch(&ctx.results, 1_700_000_000_000 + epoch * DAY_MS)
            .expect("append epoch");
    }
    let now_ms = 1_700_000_000_000 + 3 * DAY_MS;
    let nodes: Vec<_> = ctx.results.records.iter().map(|r| r.proxy.node).collect();

    let mut group = c.benchmark_group("store");
    group.sample_size(20);

    let mut fresh = 0usize;
    group.bench_function("append_epoch: one small study", |b| {
        b.iter(|| {
            fresh += 1;
            let path = scratch("append", fresh);
            let _ = std::fs::remove_file(&path);
            let mut store = VerdictStore::open(&path).expect("open store");
            black_box(store.append_epoch(&ctx.results, now_ms).expect("append"))
        })
    });

    group.bench_function("open: replay 3 epochs from disk", |b| {
        b.iter(|| black_box(VerdictStore::open(&populated_path).expect("reopen")))
    });

    // The headline query-latency number: answer "what was this proxy's
    // verdict, and is it still fresh?" straight from the index.
    let mut i = 0usize;
    group.bench_function("lookup: latest verdict + TTL grade", |b| {
        b.iter(|| {
            i = (i + 1) % nodes.len();
            black_box(populated.lookup(nodes[i], now_ms, DAY_MS))
        })
    });

    group.bench_function("provider_trend: one provider, all epochs", |b| {
        b.iter(|| black_box(populated.provider_trend(0)))
    });

    group.bench_function("country_false_rates: all epochs", |b| {
        b.iter(|| black_box(populated.country_false_rates()))
    });

    group.bench_function("revalidation_queue: all stale proxies ranked", |b| {
        b.iter(|| black_box(populated.revalidation_queue(now_ms + 2 * DAY_MS, DAY_MS)))
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
