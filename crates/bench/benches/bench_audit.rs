//! End-to-end audit cost: locating one proxy (tunnel establishment,
//! two-phase measurement, CBG++, assessment) on a prebuilt small world.
//!
//! Two variants: the bare pipeline (comparable with the committed
//! baseline in `bench_output/`), and the same pipeline with an
//! `obs::Recorder` at the audit's default `Events` level installed —
//! the observability layer's overhead budget is <2 % between them.

use bench::{build_study_context, Scale};
use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use geoloc::algorithms::CbgPlusPlus;
use geoloc::assess::assess_claim;
use geoloc::proxy::ProxyContext;
use geoloc::twophase::{run_two_phase, ProxyProber};
use geoloc::Geolocator;
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::hint::black_box;

fn bench_single_proxy(c: &mut Criterion) {
    let mut ctx = build_study_context(Scale::Small);
    let proxy = ctx.study.providers.proxies[0].clone();
    let client = ctx.study.client;
    let atlas = std::sync::Arc::clone(ctx.study.world.atlas());
    let mask = ctx.study.mask.clone();

    // Group name "audit" keys the machine-readable artifact
    // (bench_output/BENCH_audit.json).
    let mut group = c.benchmark_group("audit");
    group.sample_size(20);
    group.bench_function("one proxy: tunnel + two-phase + CBG++ + assess", |b| {
        b.iter(|| {
            let server = atlas::LandmarkServer::new(
                &ctx.study.constellation,
                &ctx.study.calibration,
                &atlas,
            );
            let proxy_ctx = ProxyContext::establish(
                ctx.study.world.network_mut(),
                client,
                proxy.node,
                0.5,
                4,
            )
            .expect("tunnel up");
            let mut prober = ProxyProber::new(proxy_ctx, 2);
            let mut rng = StdRng::seed_from_u64(7);
            let two_phase =
                run_two_phase(ctx.study.world.network_mut(), &server, &mut prober, &mut rng)
                    .expect("measured");
            let prediction = CbgPlusPlus.locate(&two_phase.observations, &mask);
            black_box(assess_claim(&atlas, &prediction.region, proxy.claimed))
        })
    });

    // Same pipeline, recorder on at the audit's default level: netsim
    // probe events, twophase transitions, and CBG++ stage events all
    // recorded.
    let recorder = obs::Recorder::new(obs::Level::Events);
    ctx.study.world.network_mut().set_recorder(recorder.clone());
    group.bench_function("same, with Events recorder", |b| {
        b.iter(|| {
            let server = atlas::LandmarkServer::new(
                &ctx.study.constellation,
                &ctx.study.calibration,
                &atlas,
            );
            let proxy_ctx = ProxyContext::establish(
                ctx.study.world.network_mut(),
                client,
                proxy.node,
                0.5,
                4,
            )
            .expect("tunnel up");
            let mut prober = ProxyProber::new(proxy_ctx, 2);
            let mut rng = StdRng::seed_from_u64(7);
            let two_phase =
                run_two_phase(ctx.study.world.network_mut(), &server, &mut prober, &mut rng)
                    .expect("measured");
            let prediction =
                CbgPlusPlus.locate_traced(&two_phase.observations, &mask, None, &recorder);
            black_box(assess_claim(&atlas, &prediction.region, proxy.claimed))
        })
    });
    ctx.study.world.network_mut().set_recorder(obs::Recorder::off());
    // Counters accumulated across both variants land in the artifact.
    group.capture_recorder(&recorder);
    group.finish();
}

criterion_group!(benches, bench_single_proxy);
criterion_main!(benches);
