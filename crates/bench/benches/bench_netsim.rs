//! Network-simulator throughput: closed-form RTT sampling vs full
//! packet-level DES measurement, and routing cost.

use atlas::{Constellation, ConstellationConfig};
use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use geokit::GeoGrid;
use netsim::{WorldNet, WorldNetConfig};
use std::hint::black_box;
use std::sync::Arc;
use worldmap::WorldAtlas;

fn build_world() -> (WorldNet, Constellation) {
    let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
    let mut world = WorldNet::build(atlas, WorldNetConfig::default());
    let constellation = Constellation::place(&mut world, &ConstellationConfig::small(3));
    (world, constellation)
}

fn bench_world_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("world build");
    group.sample_size(10);
    group.bench_function("atlas 1deg + topology + constellation", |b| {
        b.iter(build_world)
    });
    group.finish();
}

fn bench_measurement(c: &mut Criterion) {
    let (mut world, constellation) = build_world();
    let a = constellation.anchors()[0].node;
    let b_node = constellation.anchors()[20].node;
    c.bench_function("closed-form RTT sample", |bench| {
        bench.iter(|| world.network_mut().sample_rtt_ms(black_box(a), black_box(b_node)))
    });
    c.bench_function("DES tcp_connect_rtt", |bench| {
        bench.iter(|| {
            world
                .network_mut()
                .tcp_connect_rtt(black_box(a), black_box(b_node), 80)
        })
    });
    let client = world.attach_host(
        geokit::GeoPoint::new(50.1, 8.7),
        netsim::FilterPolicy::default(),
    );
    let proxy = world.attach_host(
        geokit::GeoPoint::new(48.8, 2.3),
        netsim::FilterPolicy::vpn_server(),
    );
    c.bench_function("DES tunnelled connect (4 legs)", |bench| {
        bench.iter(|| {
            world.network_mut().tcp_connect_via_proxy_rtt(
                black_box(client),
                black_box(proxy),
                black_box(b_node),
                80,
            )
        })
    });
}

criterion_group!(benches, bench_world_build, bench_measurement);
criterion_main!(benches);
