//! Geodesy primitive costs: the per-cell work every multilateration pays.

use bench::harness::{BatchSize, Criterion};
use bench::{criterion_group, criterion_main};
use geokit::{GeoGrid, GeoPoint, Region, SphericalCap};
use std::hint::black_box;

fn bench_haversine(c: &mut Criterion) {
    let a = GeoPoint::new(50.11, 8.68);
    let b = GeoPoint::new(-33.87, 151.21);
    c.bench_function("haversine distance", |bench| {
        bench.iter(|| black_box(a).distance_km(black_box(&b)))
    });
    c.bench_function("destination point", |bench| {
        bench.iter(|| black_box(a).destination(black_box(137.0), black_box(2500.0)))
    });
}

fn bench_rasterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("cap rasterization");
    for res in [1.0, 0.5, 0.25] {
        let grid = GeoGrid::new(res);
        let cap = SphericalCap::new(GeoPoint::new(48.0, 10.0), 1500.0);
        group.bench_function(format!("{res}deg 1500km"), |bench| {
            bench.iter(|| {
                let mut n = 0u32;
                grid.for_each_cell_in_cap(black_box(&cap), |_| n += 1);
                n
            })
        });
    }
    group.finish();
}

fn bench_region_ops(c: &mut Criterion) {
    let grid = GeoGrid::new(0.5);
    let a = Region::from_cap(&grid, &SphericalCap::new(GeoPoint::new(50.0, 5.0), 2000.0));
    let b = Region::from_cap(&grid, &SphericalCap::new(GeoPoint::new(48.0, 15.0), 2000.0));
    c.bench_function("region intersection (0.5deg)", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut r| {
                r.intersect_with(black_box(&b));
                r
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("region area (0.5deg)", |bench| {
        bench.iter(|| black_box(&a).area_km2())
    });
    c.bench_function("region centroid (0.5deg)", |bench| {
        bench.iter(|| black_box(&a).centroid())
    });
}

criterion_group!(benches, bench_haversine, bench_rasterization, bench_region_ops);
criterion_main!(benches);
