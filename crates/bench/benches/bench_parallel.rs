//! Audit scaling: wall-clock of the full per-proxy fan-out
//! (`Study::run_with_threads`) at 1/2/4/8/16 workers, plus the
//! byte-identity check that makes the parallel path trustworthy at all.
//!
//! Unlike the Criterion-style benches, one measurement here is one full
//! audit, so this harness runs each configuration a fixed small number
//! of times and reports the best run (build cost excluded). Besides the
//! human-readable `bench_parallel.txt` it emits a machine-readable
//! `BENCH_scale.json` so future PRs can track the throughput curve.
//!
//! The JSON records two parallelism numbers, because they disagree under
//! containers: `cores_available` is what `available_parallelism()`
//! reports (cgroup/affinity-visible), and `effective_parallelism` is
//! *measured* — the speedup of a pure CPU spin fanned out over
//! `max(THREAD_COUNTS)` threads. On a cgroup-throttled box the first can
//! say 1 while 8 threads still speed the audit up (blocked waiters don't
//! burn quota), or say 8 while the spin test proves only 1 core's worth
//! of cycles is actually served. Interpret `speedup_vs_1` against the
//! measured number, not the advertised one.
//!
//! Scale defaults to the paper's (2269 proxies); set `PV_BENCH_SCALE` to
//! `small` / `medium` / `paper` to override, and `PV_BENCH_RUNS` for the
//! per-configuration repeat count (default 2).

use bench::Scale;
use std::fmt::Write as _;
use std::time::Instant;
use vpnstudy::audit::{Study, StudyResults};

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// A cheap but complete digest of the deterministic study output: if two
/// runs agree on this, they agreed on every record field that reaches a
/// report. Cache hit/miss telemetry is *included* — the fill-once disk
/// cache makes the split exact, so it is part of the determinism
/// contract rather than an exemption from it.
fn fingerprint(results: &StudyResults) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(results.records.len() as u64);
    mix(results.failures.len() as u64);
    for r in &results.records {
        mix(u64::from(r.proxy.node));
        mix(r.proxy.claimed as u64);
        mix(r.verdict.assessment as u64);
        mix(r.refined.assessment as u64);
        mix(r.region_area_km2.to_bits());
        mix(r.self_ping_ms.to_bits());
        mix(r.observations.len() as u64);
        for (lm, ms) in &r.observations {
            mix(lm.lat().to_bits());
            mix(lm.lon().to_bits());
            mix(ms.to_bits());
        }
    }
    for f in &results.failures {
        mix(u64::from(f.proxy.node));
        mix(f.diagnostics.attempts as u64);
    }
    let cache = results.cache_stats();
    mix(cache.hits);
    mix(cache.misses);
    mix(cache.entries as u64);
    h
}

/// Measure how much CPU the machine actually serves concurrent spinning
/// threads, as a multiple of one thread's throughput. A cgroup cap or
/// CPU-affinity mask shows up here even when `available_parallelism()`
/// reports the raw core count (or, inside some containers, reports 1
/// while more cores are usable).
fn measured_effective_parallelism(threads: usize) -> f64 {
    fn spin(iters: u64) -> u64 {
        let mut x = 0x9e37_79b9u64;
        for i in 0..iters {
            x = std::hint::black_box(x.wrapping_mul(6364136223846793005).wrapping_add(i));
        }
        x
    }
    // Calibrate the iteration count to ~80 ms single-threaded.
    let probe = Instant::now();
    std::hint::black_box(spin(4_000_000));
    let per_iter = probe.elapsed().as_secs_f64() / 4_000_000.0;
    let iters = (0.08 / per_iter) as u64;

    let t0 = Instant::now();
    std::hint::black_box(spin(iters));
    let serial = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| std::hint::black_box(spin(iters)));
        }
    });
    let concurrent = t1.elapsed().as_secs_f64();
    threads as f64 * serial / concurrent
}

struct Measurement {
    threads: usize,
    best_secs: f64,
    proxies: usize,
    fingerprint: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: usize,
}

fn measure(scale: Scale, threads: usize, runs: usize) -> Measurement {
    let mut best_secs = f64::INFINITY;
    let mut fp = 0u64;
    let (mut proxies, mut hits, mut misses, mut entries) = (0usize, 0u64, 0u64, 0usize);
    for _ in 0..runs.max(1) {
        // Rebuild per run: `run` advances the world clock, so timing a
        // rerun on a mutated world would not compare like with like.
        let mut study = Study::build(scale.study_config());
        proxies = study.providers.proxies.len();
        let t0 = Instant::now();
        let results = study.run_with_threads(threads);
        let secs = t0.elapsed().as_secs_f64();
        best_secs = best_secs.min(secs);
        fp = fingerprint(&results);
        let cache = results.cache_stats();
        hits = cache.hits;
        misses = cache.misses;
        entries = cache.entries;
    }
    Measurement {
        threads,
        best_secs,
        proxies,
        fingerprint: fp,
        cache_hits: hits,
        cache_misses: misses,
        cache_entries: entries,
    }
}

fn main() {
    let scale = match std::env::var("PV_BENCH_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        Ok("medium") => Scale::Medium,
        _ => Scale::Paper,
    };
    let runs: usize = std::env::var("PV_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Paper => "paper",
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = *THREAD_COUNTS.iter().max().expect("nonempty");
    let effective = measured_effective_parallelism(max_threads);
    println!(
        "audit scaling at scale={scale_name} ({runs} runs each, \
         {cores} cores advertised, {effective:.2} measured effective)"
    );

    let measurements: Vec<Measurement> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            println!("  measuring {t} thread(s)...");
            measure(scale, t, runs)
        })
        .collect();

    let base = measurements[0].best_secs;
    let mut report = String::new();
    for m in &measurements {
        let _ = writeln!(
            report,
            "audit scaling/{scale_name} {} threads{:<16} best {:>9.3} s  {:>8.1} proxies/s  speedup x{:.2}",
            m.threads,
            "",
            m.best_secs,
            m.proxies as f64 / m.best_secs,
            base / m.best_secs,
        );
    }
    print!("{report}");

    // Byte-identity across thread counts is part of the contract; a bench
    // that silently measured diverging runs would be lying about what it
    // parallelized. The fingerprint now covers cache telemetry too, so a
    // reappearance of the old racy double-rasterize would fail here.
    let fp0 = measurements[0].fingerprint;
    assert!(
        measurements.iter().all(|m| m.fingerprint == fp0),
        "study output diverged across thread counts"
    );
    assert!(
        measurements
            .iter()
            .all(|m| m.cache_misses == m.cache_entries as u64),
        "fill-once cache must rasterize each key exactly once"
    );

    let dir = std::env::var("BENCH_OUTPUT_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_output").into());
    std::fs::create_dir_all(&dir).expect("bench output dir");
    let txt = std::path::Path::new(&dir).join("bench_parallel.txt");
    std::fs::write(&txt, &report).expect("write bench_parallel.txt");

    // Machine-readable trajectory record. Hand-rolled JSON: the workspace
    // has no serde, and the schema is a few numbers per row.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"proxies\": {},", measurements[0].proxies);
    let _ = writeln!(json, "  \"cores_available\": {cores},");
    let _ = writeln!(json, "  \"effective_parallelism\": {effective:.2},");
    let _ = writeln!(json, "  \"thread_configs\": {:?},", THREAD_COUNTS);
    let _ = writeln!(json, "  \"runs_per_config\": {runs},");
    let _ = writeln!(json, "  \"identical_output\": true,");
    let _ = writeln!(json, "  \"results\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"seconds\": {:.6}, \"proxies_per_sec\": {:.3}, \"speedup_vs_1\": {:.4}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_entries\": {}}}{comma}",
            m.threads,
            m.best_secs,
            m.proxies as f64 / m.best_secs,
            base / m.best_secs,
            m.cache_hits,
            m.cache_misses,
            m.cache_entries,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let json_path = std::path::Path::new(&dir).join("BENCH_scale.json");
    std::fs::write(&json_path, &json).expect("write BENCH_scale.json");
    println!("report written to {} and {}", txt.display(), json_path.display());
}
