//! Delay-model calibration costs: fitting CBG bestlines, Octant
//! envelopes, and Spotter cubics over a 250-point anchor mesh set.

use atlas::CalibrationSet;
use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use geoloc::delay_model::{CbgModel, OctantModel, SpotterModel};
use std::hint::black_box;

/// A realistic 250-point scatter: 100 km/ms floor plus deterministic
/// pseudo-noise above it.
fn scatter(n: usize) -> CalibrationSet {
    CalibrationSet::from_points(
        (1..=n)
            .map(|i| {
                let d = (i as f64) * 17_000.0 / n as f64;
                let noise = ((i * 2654435761) % 977) as f64 / 50.0;
                (d, d / 100.0 + 0.3 + noise)
            })
            .collect(),
    )
}

fn bench_fits(c: &mut Criterion) {
    let set = scatter(250);
    c.bench_function("CBG bestline fit (250 pts)", |b| {
        b.iter(|| CbgModel::calibrate(black_box(&set)))
    });
    c.bench_function("CBG++ slowline fit (250 pts)", |b| {
        b.iter(|| CbgModel::calibrate_with_slowline(black_box(&set)))
    });
    c.bench_function("Octant envelope fit (250 pts)", |b| {
        b.iter(|| OctantModel::calibrate(black_box(&set)))
    });
    let pool: Vec<CalibrationSet> = (0..10).map(|_| scatter(250)).collect();
    let refs: Vec<&CalibrationSet> = pool.iter().collect();
    c.bench_function("Spotter cubic fit (2500 pooled pts)", |b| {
        b.iter(|| SpotterModel::calibrate(black_box(&refs)))
    });
}

fn bench_eval(c: &mut Criterion) {
    let set = scatter(250);
    let cbg = CbgModel::calibrate(&set);
    let octant = OctantModel::calibrate(&set);
    let refs = [&set];
    let spotter = SpotterModel::calibrate(&refs);
    c.bench_function("CBG max-distance eval", |b| {
        b.iter(|| cbg.max_distance_km(black_box(42.0)))
    });
    c.bench_function("Octant envelope eval", |b| {
        b.iter(|| {
            (
                octant.min_distance_km(black_box(42.0)),
                octant.max_distance_km(black_box(42.0)),
            )
        })
    });
    c.bench_function("Spotter log-density eval", |b| {
        b.iter(|| spotter.log_density(black_box(42.0), black_box(3000.0)))
    });
}

criterion_group!(benches, bench_fits, bench_eval);
criterion_main!(benches);
