//! Multilateration engine costs: disk/ring intersection and Bayesian
//! posterior vs landmark count and grid resolution.

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use geokit::{GeoGrid, GeoPoint, Region};
use geoloc::delay_model::SpotterModel;
use geoloc::multilateration::{bayes_region, intersect_constraints, RingConstraint};
use std::hint::black_box;

/// N landmarks ringed around a European target with honest disks.
fn disks(n: usize) -> Vec<RingConstraint> {
    let target = GeoPoint::new(48.0, 11.0);
    (0..n)
        .map(|i| {
            let bearing = 360.0 * i as f64 / n as f64;
            let dist = 500.0 + 120.0 * (i % 7) as f64;
            let lm = target.destination(bearing, dist);
            RingConstraint::disk(lm, dist * 1.15)
        })
        .collect()
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk intersection");
    for res in [1.0, 0.5] {
        let mask = Region::full(GeoGrid::new(res));
        for n in [5usize, 25] {
            let cs = disks(n);
            group.bench_function(format!("{res}deg x{n}"), |b| {
                b.iter(|| intersect_constraints(black_box(&cs), black_box(&mask)))
            });
        }
    }
    group.finish();
}

fn bench_rings(c: &mut Criterion) {
    let mask = Region::full(GeoGrid::new(1.0));
    let target = GeoPoint::new(48.0, 11.0);
    let cs: Vec<RingConstraint> = (0..25)
        .map(|i| {
            let lm = target.destination(14.4 * i as f64, 600.0 + 90.0 * (i % 5) as f64);
            let d = lm.distance_km(&target);
            RingConstraint::ring(lm, d * 0.8, d * 1.25)
        })
        .collect();
    c.bench_function("ring intersection (1deg x25)", |b| {
        b.iter(|| intersect_constraints(black_box(&cs), black_box(&mask)))
    });
}

fn bench_bayes(c: &mut Criterion) {
    let mask = Region::full(GeoGrid::new(2.0));
    let set = atlas::CalibrationSet::from_points(
        (1..=300)
            .map(|i| {
                let t = i as f64 * 0.4;
                ((t * 95.0).max(0.0), t)
            })
            .collect(),
    );
    let model = SpotterModel::calibrate(&[&set]);
    let target = GeoPoint::new(48.0, 11.0);
    let obs: Vec<(GeoPoint, f64)> = (0..25)
        .map(|i| {
            let lm = target.destination(14.4 * i as f64, 700.0);
            (lm, lm.distance_km(&target) / 95.0)
        })
        .collect();
    c.bench_function("bayes posterior (2deg x25)", |b| {
        b.iter(|| bayes_region(black_box(&obs), &model, &mask, 0.95))
    });
}

criterion_group!(benches, bench_intersection, bench_rings, bench_bayes);
criterion_main!(benches);
