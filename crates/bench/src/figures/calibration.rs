//! Fig. 2 (calibration scatter + fitted models) and Fig. 10 (bestline /
//! baseline estimate-to-truth ratios).

use crate::render::{render_histogram, render_scatter};
use crate::scale::CrowdContext;
use geoloc::delay_model::{CbgModel, OctantModel, SpotterModel};
use std::fmt::Write as _;

/// Fig. 2: one European anchor's calibration scatter with the CBG
/// bestline/baseline/slowline, the Quasi-Octant envelopes, and the
/// Spotter μ ± kσ bands.
pub fn fig2_calibration(ctx: &CrowdContext) -> String {
    let mut out = String::new();
    // Anchor 0 is European by construction (Europe's quota comes first).
    let anchor_idx = 0;
    let set = ctx.calibration.for_anchor(anchor_idx);
    let anchor = &ctx.constellation.anchors()[anchor_idx];
    let _ = writeln!(
        out,
        "# Fig.2: calibration for anchor 0 at {} ({} peers)",
        anchor.location,
        set.len()
    );
    out.push_str(&render_scatter(
        "calibration",
        "distance_km,one_way_ms",
        set.points(),
    ));

    let cbg = CbgModel::calibrate(set);
    let cbgpp = CbgModel::calibrate_with_slowline(set);
    let _ = writeln!(
        out,
        "# CBG bestline: t = {:.3} + d/{:.1}  (speed {:.1} km/ms; paper example: 93.5)",
        cbg.intercept_ms,
        cbg.speed_km_per_ms(),
        cbg.speed_km_per_ms()
    );
    let _ = writeln!(out, "# baseline speed: 200 km/ms; slowline speed: 84.5 km/ms");
    let _ = writeln!(
        out,
        "# CBG++ (slowline-clamped) speed: {:.1} km/ms",
        cbgpp.speed_km_per_ms()
    );

    let octant = OctantModel::calibrate(set);
    let _ = writeln!(out, "# Quasi-Octant envelope (delay_ms,min_km,max_km):");
    for t in [2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
        let _ = writeln!(
            out,
            "{t:.1},{:.0},{:.0}",
            octant.min_distance_km(t),
            octant.max_distance_km(t)
        );
    }

    // Spotter fits pooled data; pool a handful of anchors.
    let pool: Vec<&atlas::CalibrationSet> = (0..ctx.constellation.num_anchors().min(12))
        .map(|i| ctx.calibration.for_anchor(i))
        .collect();
    let spotter = SpotterModel::calibrate(&pool);
    let _ = writeln!(out, "# Spotter bands (delay_ms,mu_km,sigma_km):");
    for t in [2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
        let _ = writeln!(
            out,
            "{t:.1},{:.0},{:.0}",
            spotter.mu_km(t),
            spotter.sigma_km(t)
        );
    }
    out
}

/// Fig. 10: the distribution of bestline and baseline distance-estimate
/// to true-distance ratios over all anchor pairs, slowline applied
/// ("a small fraction of all bestline estimates are still too short").
pub fn fig10_estimate_ratios(ctx: &CrowdContext) -> String {
    let mut best_ratios = Vec::new();
    let mut base_ratios = Vec::new();
    let mut best_under = 0usize;
    let mut base_under = 0usize;
    for i in 0..ctx.constellation.num_anchors() {
        let set = ctx.calibration.for_anchor(i);
        let model = CbgModel::calibrate_with_slowline(set);
        for &(dist, one_way) in set.points() {
            if dist < 50.0 {
                continue; // sub-cell pairs have meaningless ratios
            }
            let best = model.max_distance_km(one_way) / dist;
            let base = CbgModel::baseline_distance_km(one_way) / dist;
            if best < 1.0 {
                best_under += 1;
            }
            if base < 1.0 {
                base_under += 1;
            }
            best_ratios.push(best.min(5.0));
            base_ratios.push(base.min(5.0));
        }
    }
    let mut out = String::new();
    let n = best_ratios.len();
    let _ = writeln!(
        out,
        "# Fig.10: estimate/true distance ratios over {n} anchor-pair measurements"
    );
    let _ = writeln!(
        out,
        "# bestline underestimates: {best_under} ({:.2} %); baseline underestimates: {base_under} ({:.2} %)",
        100.0 * best_under as f64 / n as f64,
        100.0 * base_under as f64 / n as f64
    );
    out.push_str(&render_histogram("bestline ratio", &best_ratios, 0.0, 5.0, 25));
    out.push_str(&render_histogram("baseline ratio", &base_ratios, 0.0, 5.0, 25));
    out
}
