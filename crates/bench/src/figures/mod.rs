//! One function per paper figure/table, each returning the regenerated
//! data as text (CSV-ish series plus summary statistics).
//!
//! Absolute numbers come from the simulated substrate; the *shape* of
//! each result — who wins, by what factor, where the crossovers are — is
//! what reproduces the paper (see EXPERIMENTS.md for the side-by-side).

pub mod ablation;
pub mod adversary;
pub mod calibration;
pub mod faultsweep;
pub mod market;
pub mod ops;
pub mod profile;
pub mod store;
pub mod study;
pub mod tools;
pub mod trace;
pub mod validation;

pub use ablation::{ablation_cbgpp, fig3_fig8_maps};
pub use adversary::adversary_campaign;
pub use faultsweep::fault_sweep;
pub use calibration::{fig10_estimate_ratios, fig2_calibration};
pub use market::fig14_market;
pub use ops::{ops_telemetry, OpsBundle};
pub use profile::profile_spans;
pub use store::verdict_store;
pub use study::{
    fig13_eta, fig16_colocation_group, fig17_overall, fig18_provider_country,
    fig19_provider_maps, fig20_region_size_vs_landmark, fig21_method_comparison,
    fig22_continent_confusion, fig23_country_confusion, headline_numbers,
};
pub use tools::{fig4_tools_linux, fig5_fig6_tools_windows, fig7_tool_semantics};
pub use trace::trace_observability;
pub use validation::{fig11_effectiveness, fig9_algorithm_comparison};
