//! Adversarial campaign (not a paper figure): detection rate vs
//! adversary strength for every active-timing attack model.
//!
//! The paper's threat model (§2) assumes the proxy can only *add*
//! delay; this sweep arms each lying proxy with progressively stronger
//! adversaries — targeted delay holds, selective timeouts, inflated
//! self-pings, colluding landmarks, and the combined attack — and
//! measures (a) how often the baseline CBG++ pipeline is deceived into
//! certifying a false claim and (b) how often the Byzantine defense
//! catches the attack with named evidence. See EXPERIMENTS.md
//! ("Adversarial campaign") for the physics narrative behind each row.

use crate::Scale;
use vpnstudy::campaign::{render_campaign, run_campaign, CampaignConfig};

/// Campaign seed: the grid validated by `tests/adversary_campaign.rs`.
const SEED: u64 = 0xadbeef;

/// Run the full model x strength grid at a scale and tabulate it.
pub fn adversary_campaign(scale: Scale) -> String {
    let mut cfg = CampaignConfig::small(SEED);
    // The campaign re-runs the whole audit once per cell (15 cells), so
    // the fleet stays modest even at larger scales.
    cfg.study.total_proxies = match scale {
        Scale::Small => 28,
        Scale::Medium => 60,
        Scale::Paper => 120,
    };
    let cells = run_campaign(&cfg);
    let mut out = String::new();
    out.push_str("# Adversarial campaign: baseline deception vs defended detection\n");
    out.push_str("# strength = fraction of the constellation the adversary controls\n");
    out.push_str("# deceived = baseline (raw CBG++) certified the false claim Credible\n");
    out.push_str("# defended = defended pipeline still certified it; caught = Suspicious/False\n");
    out.push_str(&render_campaign(&cells));
    out.push_str(
        "# Expectation: delay-only rows never deceive anyone (upper-bound safety\n\
         # theorem); deflation-capable rows deceive the baseline and the defense\n\
         # claws most of it back, with detection falling as strength approaches 1\n\
         # (full-constellation control is below the Byzantine bound).\n",
    );
    out
}
