//! The verdict-store figure (not a paper figure): write a finished
//! study into an on-disk [`VerdictStore`] as three epochs, reopen it,
//! and render what the store can answer *without re-measuring anything*
//! — per-provider verdict trends across epochs, per-country false-claim
//! rates, and the TTL-driven revalidation queue.
//!
//! Epoch timestamps are synthetic (one day apart): the store takes the
//! caller's clock, so the figure is as deterministic as the study run
//! behind it.

use crate::scale::StudyContext;
use std::fmt::Write as _;
use vpnstudy::{RevalidationPriority, VerdictStore};

/// One synthetic day, in the store's millisecond clock.
const DAY_MS: u64 = 86_400_000;
/// Synthetic clock origin for the rendered epochs.
const T0_MS: u64 = 1_700_000_000_000;

/// Render the verdict-store summary from a finished study run.
pub fn verdict_store(ctx: &StudyContext) -> String {
    let mut out = String::new();

    // Three epochs of the same run, a day apart, in a scratch file.
    let path = std::env::temp_dir().join(format!(
        "pv-figures-store-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut writer = VerdictStore::open(&path).expect("open scratch store");
    for epoch in 0..3u64 {
        writer
            .append_epoch(&ctx.results, T0_MS + epoch * DAY_MS)
            .expect("append epoch");
    }
    drop(writer);

    // Everything below is served by a *reopened* store: disk is the only
    // channel between the study run and the queries.
    let store = VerdictStore::open(&path).expect("reopen store");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let _ = writeln!(
        out,
        "# verdict store: {} epochs, {} verdicts, {} unmeasured, {} bytes on disk",
        store.epochs().len(),
        store.verdicts().len(),
        store.failures().len(),
        bytes
    );

    // --- per-provider verdict trend across epochs -------------------
    let _ = writeln!(out, "## provider trend (refined verdicts per epoch)");
    let _ = writeln!(out, "# provider,epoch,credible,uncertain,false,suspicious");
    for (idx, profile) in ctx.study.providers.profiles.iter().enumerate() {
        for (epoch, tally) in store.provider_trend(idx) {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                profile.name,
                epoch,
                tally.credible,
                tally.uncertain,
                tally.false_claims,
                tally.suspicious
            );
        }
    }

    // --- per-country false-claim rates ------------------------------
    let atlas = ctx.study.world.atlas();
    let rates = store.country_false_rates();
    let _ = writeln!(out, "## claimed-country false rates (top 15 by rate)");
    let _ = writeln!(out, "# country,claims,false,rate");
    for (country, tally) in rates.iter().take(15) {
        let _ = writeln!(
            out,
            "{},{},{},{:.3}",
            atlas.country(*country).name(),
            tally.total(),
            tally.false_claims,
            tally.false_rate()
        );
    }
    let _ = writeln!(out, "# {} claimed countries total", rates.len());

    // --- revalidation queue under a 1-day TTL -----------------------
    // Judged two days after the last epoch, so everything is stale and
    // the queue shows the priority mix the TTL policy would schedule.
    let now_ms = T0_MS + 4 * DAY_MS;
    let queue = store.revalidation_queue(now_ms, DAY_MS);
    let mut by_priority = [0usize; 3];
    for (_, p) in &queue {
        match p {
            RevalidationPriority::Urgent => by_priority[0] += 1,
            RevalidationPriority::Elevated => by_priority[1] += 1,
            RevalidationPriority::Routine => by_priority[2] += 1,
            RevalidationPriority::NotNeeded => {}
        }
    }
    let _ = writeln!(out, "## revalidation queue (1-day TTL, 2 days stale)");
    let _ = writeln!(
        out,
        "# {} proxies queued: {} urgent (caught lying), {} elevated (unsettled), {} routine",
        queue.len(),
        by_priority[0],
        by_priority[1],
        by_priority[2]
    );
    // Nothing is stale when queried inside the TTL.
    let fresh_queue = store.revalidation_queue(T0_MS + 2 * DAY_MS + DAY_MS / 2, DAY_MS);
    let _ = writeln!(
        out,
        "# inside the TTL the queue is empty: {} queued",
        fresh_queue.len()
    );

    let _ = std::fs::remove_file(&path);
    out
}
