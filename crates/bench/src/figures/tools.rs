//! Figs. 4–7: measurement-tool validation. CLI vs Web on Linux, the
//! Windows noise regimes, and the 1-vs-2-round-trip semantics.

use crate::render::render_scatter;
use crate::scale::CrowdContext;
use atlas::{Browser, CliTool, MeasurementOs, WebTool};
use geokit::regress::{ols_line, r_squared};
use netsim::FilterPolicy;
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::fmt::Write as _;

/// Samples of (distance, rtt) labelled with tool and true round trips.
struct ToolRun {
    label: &'static str,
    one_rt: Vec<(f64, f64)>,
    two_rt: Vec<(f64, f64)>,
}

fn run_tools(
    ctx: &mut CrowdContext,
    os: MeasurementOs,
    browsers: &[Browser],
    include_cli: bool,
) -> Vec<ToolRun> {
    let client_loc = geokit::GeoPoint::new(50.06, 8.6); // near Frankfurt
    let client = ctx.world.attach_host(client_loc, FilterPolicy::default());
    let mut rng = StdRng::seed_from_u64(0x7001);
    let mut runs = Vec::new();

    if include_cli {
        let mut one = Vec::new();
        for lm in ctx.constellation.landmarks() {
            if let Some(s) = CliTool.measure(ctx.world.network_mut(), client, lm.node) {
                one.push((client_loc.distance_km(&lm.location), s.rtt_ms));
            }
        }
        runs.push(ToolRun {
            label: "CLI",
            one_rt: one,
            two_rt: Vec::new(),
        });
    }
    for &browser in browsers {
        let tool = WebTool { os, browser };
        let (mut one, mut two) = (Vec::new(), Vec::new());
        for lm in ctx.constellation.landmarks() {
            if let Some(s) = tool.measure(ctx.world.network_mut(), client, lm.node, &mut rng) {
                let d = client_loc.distance_km(&lm.location);
                if s.true_round_trips == 1 {
                    one.push((d, s.rtt_ms));
                } else {
                    two.push((d, s.rtt_ms));
                }
            }
        }
        let label = match browser {
            Browser::Chrome => "Chrome 68",
            Browser::FirefoxEsr => "Firefox 52",
            Browser::Firefox => "Firefox 61",
            Browser::Edge => "Edge 17",
        };
        runs.push(ToolRun {
            label,
            one_rt: one,
            two_rt: two,
        });
    }
    runs
}

fn summarize(out: &mut String, runs: &[ToolRun]) {
    for run in runs {
        for (group, pts) in [("1rt", &run.one_rt), ("2rt", &run.two_rt)] {
            if pts.len() < 3 {
                continue;
            }
            let line = ols_line(pts).expect("≥3 points");
            let r2 = r_squared(pts, |x| line.eval(x));
            let _ = writeln!(
                out,
                "# {} [{group}]: slope {:.5} ms/km  intercept {:.2} ms  R² {:.4}  n {}",
                run.label,
                line.slope,
                line.intercept,
                r2,
                pts.len()
            );
        }
        if let (Some(l1), Some(l2)) = (ols_line(&run.one_rt), ols_line(&run.two_rt)) {
            let _ = writeln!(
                out,
                "# {}: slope ratio 2rt/1rt = {:.2} (paper: 1.96 Linux, 2.29 Windows)",
                run.label,
                l2.slope / l1.slope
            );
        }
    }
}

/// Fig. 4: CLI vs Web tool under Linux — two clean slope groups, ratio ≈ 2.
pub fn fig4_tools_linux(ctx: &mut CrowdContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig.4: CLI vs Web tool, Linux client");
    let runs = run_tools(
        ctx,
        MeasurementOs::Linux,
        &[Browser::Chrome, Browser::FirefoxEsr],
        true,
    );
    summarize(&mut out, &runs);
    for run in &runs {
        out.push_str(&render_scatter(
            &format!("{} one-round-trip", run.label),
            "distance_km,rtt_ms",
            &run.one_rt,
        ));
        if !run.two_rt.is_empty() {
            out.push_str(&render_scatter(
                &format!("{} two-round-trip", run.label),
                "distance_km,rtt_ms",
                &run.two_rt,
            ));
        }
    }
    out
}

/// Figs. 5–6: the Web tool under Windows — noisier groups plus
/// browser-dependent high outliers (split out as in Fig. 6).
pub fn fig5_fig6_tools_windows(ctx: &mut CrowdContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig.5/6: Web tool, Windows client, four browsers");
    let runs = run_tools(ctx, MeasurementOs::Windows, &Browser::ALL, false);
    // Split high outliers (Fig. 6): points far above any plausible
    // two-round-trip time.
    let mut cleaned_runs = Vec::new();
    for run in runs {
        let split = |pts: &[(f64, f64)]| {
            let (mut clean, mut outliers) = (Vec::new(), Vec::new());
            for &(d, t) in pts {
                // Anything above 2 × (fibre time + generous overhead) is
                // a client-side stall, not a network time.
                if t > 2.0 * (d / 100.0) + 300.0 {
                    outliers.push((d, t));
                } else {
                    clean.push((d, t));
                }
            }
            (clean, outliers)
        };
        let (one_clean, one_out) = split(&run.one_rt);
        let (two_clean, two_out) = split(&run.two_rt);
        let outliers: Vec<(f64, f64)> =
            one_out.into_iter().chain(two_out).collect();
        if !outliers.is_empty() {
            let mean: f64 =
                outliers.iter().map(|p| p.1).sum::<f64>() / outliers.len() as f64;
            let _ = writeln!(
                out,
                "# {}: {} high outliers, mean {:.0} ms (browser-dependent, Fig. 6)",
                run.label,
                outliers.len(),
                mean
            );
            out.push_str(&render_scatter(
                &format!("{} high outliers", run.label),
                "distance_km,rtt_ms",
                &outliers,
            ));
        }
        cleaned_runs.push(ToolRun {
            label: run.label,
            one_rt: one_clean,
            two_rt: two_clean,
        });
    }
    summarize(&mut out, &cleaned_runs);
    out
}

/// Fig. 7: the tool semantics — one round trip to a port-80-closed
/// landmark, two to an open one, demonstrated end to end on the DES.
pub fn fig7_tool_semantics(ctx: &mut CrowdContext) -> String {
    let mut out = String::new();
    let client = ctx.world.attach_host(
        geokit::GeoPoint::new(50.06, 8.6),
        FilterPolicy::default(),
    );
    let open = ctx
        .constellation
        .landmarks()
        .iter()
        .find(|l| l.port_80_open)
        .expect("an open-80 landmark");
    let closed = ctx
        .constellation
        .landmarks()
        .iter()
        .find(|l| !l.port_80_open)
        .expect("a closed-80 landmark");
    let mut rng = StdRng::seed_from_u64(0x707);
    let tool = WebTool {
        os: MeasurementOs::Linux,
        browser: Browser::Chrome,
    };
    let _ = writeln!(out, "# Fig.7: TCP-handshake measurement semantics");
    for (name, lm) in [("port-80 OPEN", open), ("port-80 CLOSED", closed)] {
        let cli = CliTool
            .measure(ctx.world.network_mut(), client, lm.node)
            .expect("reachable");
        let web = tool
            .measure(ctx.world.network_mut(), client, lm.node, &mut rng)
            .expect("reachable");
        let _ = writeln!(
            out,
            "{name}: CLI connect() = {:.2} ms ({} round trip); web fetch failure = {:.2} ms ({} round trips)",
            cli.rtt_ms, cli.true_round_trips, web.rtt_ms, web.true_round_trips
        );
    }
    let _ = writeln!(
        out,
        "# The web tool cannot tell which case it measured (§4.2)."
    );
    // A real packet dump of one handshake (the DES trace).
    let _ = writeln!(out, "# packet trace of one connect() to the open landmark:");
    let (trace, rtt) = ctx
        .world
        .network_mut()
        .trace_tcp_connect(client, open.node, 80);
    // Timestamps relative to the probe's injection (the persistent sim
    // clock no longer starts each probe at t = 0).
    let t0 = trace.first().map_or(netsim::SimTime::ZERO, |e| e.at);
    for e in &trace {
        let _ = writeln!(
            out,
            "#   t={:>9.3} ms  node {:>5}  {:<24} {}",
            e.at.since(t0).as_ms(),
            e.node,
            format!("{:?}", e.kind),
            if e.delivered { "(delivered)" } else { "(forwarded)" }
        );
    }
    if let Some(rtt) = rtt {
        let _ = writeln!(out, "#   handshake completed in {rtt}");
    }
    out
}
