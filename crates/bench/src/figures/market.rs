//! Fig. 14: the VPN-market claim survey.

use crate::scale::StudyContext;
use std::fmt::Write as _;

/// Fig. 14: claimed-country counts for the 157 surveyed providers, with
/// the studied providers A–G marked at their market ranks.
pub fn fig14_market(ctx: &StudyContext) -> String {
    let mut out = String::new();
    let survey = &ctx.study.survey;
    let profiles = &ctx.study.providers.profiles;
    let _ = writeln!(out, "# Fig.14: provider rank vs claimed-country count");
    let _ = writeln!(out, "rank,claimed_countries,studied_provider");
    for p in survey.providers() {
        let mark = profiles
            .iter()
            .find(|prof| prof.market_rank == p.rank)
            .map(|prof| prof.name.to_string())
            .unwrap_or_default();
        let _ = writeln!(out, "{},{},{}", p.rank, p.claimed.len(), mark);
    }
    // The "providers who claim only a few locations claim the same
    // locations" observation: overlap of the bottom-quartile providers'
    // claims with the global top-10 popularity list.
    let atlas = ctx.study.world.atlas();
    let top10 = &survey.popularity_order()[..10];
    let modest: Vec<_> = survey
        .providers()
        .iter()
        .filter(|p| p.claimed.len() <= 12)
        .collect();
    if !modest.is_empty() {
        let mut overlap = 0usize;
        let mut total = 0usize;
        for p in &modest {
            total += p.claimed.len();
            overlap += p.claimed.iter().filter(|c| top10.contains(c)).count();
        }
        let _ = writeln!(
            out,
            "# modest providers (≤12 claims, n={}): {:.0} % of their claims are top-10 countries ({})",
            modest.len(),
            100.0 * overlap as f64 / total as f64,
            top10
                .iter()
                .map(|&c| atlas.country(c).iso2())
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    out
}
