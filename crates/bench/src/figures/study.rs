//! The §6 study figures: η (Fig. 13), disambiguation case studies
//! (Figs. 15–16), the overall assessment (Fig. 17), provider honesty
//! (Figs. 18–19), region-size analysis (Fig. 20), the method comparison
//! (Fig. 21), the confusion matrices (Figs. 22–23), and the headline
//! numbers.

use crate::render::render_scatter;
use crate::scale::StudyContext;
use geokit::regress::{r_squared, theil_sen};
use geoloc::assess::Assessment;
use std::fmt::Write as _;
use vpnstudy::confusion::{continent_confusion, country_confusion};
use vpnstudy::report;

/// Fig. 13: direct vs tunnel-self-ping RTTs for the pingable proxies.
/// The robust slope η should land almost exactly at ½.
pub fn fig13_eta(ctx: &mut StudyContext) -> String {
    let mut out = String::new();
    let client = ctx.study.client;
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    let pingable: Vec<netsim::NodeId> = ctx
        .study
        .providers
        .proxies
        .iter()
        .filter(|p| p.pingable)
        .map(|p| p.node)
        .collect();
    for proxy in pingable {
        let mut direct = f64::INFINITY;
        let mut indirect = f64::INFINITY;
        for _ in 0..ctx.study.config.self_ping_attempts {
            if let Some(d) = ctx.study.world.network_mut().ping(client, proxy) {
                direct = direct.min(d.as_ms());
            }
            if let Some(d) = ctx
                .study
                .world
                .network_mut()
                .self_ping_via_proxy_rtt(client, proxy)
            {
                indirect = indirect.min(d.as_ms());
            }
        }
        if direct.is_finite() && indirect.is_finite() {
            pairs.push((indirect, direct));
        }
    }
    let _ = writeln!(out, "# Fig.13: direct vs indirect RTT, {} proxies", pairs.len());
    out.push_str(&render_scatter("eta", "indirect_ms,direct_ms", &pairs));
    if let Some(line) = theil_sen(&pairs) {
        let r2 = r_squared(&pairs, |x| line.eval(x));
        let _ = writeln!(
            out,
            "# robust slope eta = {:.3} (paper: 0.49), intercept {:.2} ms, R² = {:.4} (paper: >0.99)",
            line.slope, line.intercept, r2
        );
    }
    out
}

/// Fig. 16: the largest co-location group — per-member prediction
/// summaries and the group-level resolution, the AS63128-style case.
pub fn fig16_colocation_group(ctx: &StudyContext) -> String {
    let mut out = String::new();
    let atlas = ctx.study.world.atlas();
    // Largest group among measured records.
    use std::collections::HashMap;
    let mut groups: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
    for (i, r) in ctx.results.records.iter().enumerate() {
        let key = (
            r.proxy.group_key.0,
            r.proxy.group_key.1,
            r.proxy.group_key.2,
        );
        groups.entry(key).or_default().push(i);
    }
    let Some((key, members)) = groups
        .into_iter()
        .max_by_key(|(_, v)| v.len()) else {
            return "# Fig.16: no groups\n".into();
        };
    let provider = ctx.study.providers.profiles[key.0].name;
    let _ = writeln!(
        out,
        "# Fig.16: provider {provider}, {} hosts sharing one AS + /24 (true country {})",
        members.len(),
        atlas.country(key.1).iso2()
    );
    let _ = writeln!(out, "# member,claimed,area_km2,countries_touched");
    for &i in &members {
        let r = &ctx.results.records[i];
        let touched: Vec<&str> = r
            .verdict
            .touched
            .iter()
            .map(|&(c, _)| atlas.country(c).iso2())
            .collect();
        let _ = writeln!(
            out,
            "{i},{},{:.0},{}",
            atlas.country(r.proxy.claimed).iso2(),
            r.region_area_km2,
            touched.join("|")
        );
    }
    // Common-country resolution.
    let sets: Vec<Vec<usize>> = members
        .iter()
        .map(|&i| {
            ctx.results.records[i]
                .verdict
                .touched
                .iter()
                .map(|&(c, _)| c)
                .collect()
        })
        .collect();
    let refs: Vec<&[usize]> = sets.iter().map(Vec::as_slice).collect();
    let resolution = geoloc::disambiguate::by_touched_sets(&refs);
    let _ = writeln!(out, "# group resolution: {resolution:?}");
    out
}

/// Fig. 17: the overall assessment block (also covers Fig. 15's effect:
/// with vs without data-center disambiguation).
pub fn fig17_overall(ctx: &StudyContext) -> String {
    let mut out = report::render_overall(&ctx.study, &ctx.results);
    // Alleged vs probable country bars (Fig. 17 bottom).
    let atlas = ctx.study.world.atlas();
    let mut alleged: std::collections::HashMap<usize, usize> = Default::default();
    let mut probable: std::collections::HashMap<usize, usize> = Default::default();
    for r in &ctx.results.records {
        *alleged.entry(r.proxy.claimed).or_default() += 1;
        let probable_country = match r.refined.assessment {
            Assessment::Credible => r.proxy.claimed,
            _ => r
                .dc_country
                .or_else(|| r.verdict.touched.first().map(|&(c, _)| c))
                .unwrap_or(r.proxy.claimed),
        };
        *probable.entry(probable_country).or_default() += 1;
    }
    for (name, map) in [("alleged", &alleged), ("probable", &probable)] {
        let mut rows: Vec<(usize, usize)> = map.iter().map(|(&c, &n)| (c, n)).collect();
        rows.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let line: Vec<String> = rows
            .iter()
            .take(15)
            .map(|&(c, n)| format!("{}:{n}", atlas.country(c).iso2()))
            .collect();
        let _ = writeln!(out, "{name} countries: {}", line.join(" "));
    }
    out
}

/// Fig. 18: honesty across the most commonly claimed countries.
pub fn fig18_provider_country(ctx: &StudyContext) -> String {
    report::render_provider_country_honesty(&ctx.study, &ctx.results, 20)
}

/// Fig. 19: the same data with a much wider country axis (per-provider
/// world-map source data).
pub fn fig19_provider_maps(ctx: &StudyContext) -> String {
    report::render_provider_country_honesty(&ctx.study, &ctx.results, 60)
}

/// Fig. 20: for the largest co-location group, prediction-region size vs
/// distance to the nearest landmark — the paper finds no correlation.
pub fn fig20_region_size_vs_landmark(ctx: &StudyContext) -> String {
    use std::collections::HashMap;
    let mut groups: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
    for (i, r) in ctx.results.records.iter().enumerate() {
        groups
            .entry((r.proxy.group_key.0, r.proxy.group_key.1, r.proxy.group_key.2))
            .or_default()
            .push(i);
    }
    // Prefer the largest group whose members drew *different* phase-2
    // landmark sets (groups on small continents exhaust the pool and
    // measure identically, collapsing the x-axis — the paper's AS63128
    // group was in North America, where the pool is deep).
    let mut candidates: Vec<(usize, Vec<usize>)> = groups.into_values().map(|v| (v.len(), v))
        .filter(|(n, _)| *n >= 3)
        .collect();
    candidates.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
    let varied = |members: &[usize]| {
        let mut sets: Vec<Vec<(i64, i64)>> = members
            .iter()
            .map(|&i| {
                let mut s: Vec<(i64, i64)> = ctx.results.records[i]
                    .observations
                    .iter()
                    .map(|(lm, _)| ((lm.lat() * 1e4) as i64, (lm.lon() * 1e4) as i64))
                    .collect();
                s.sort_unstable();
                s
            })
            .collect();
        sets.dedup();
        sets.len() > 1
    };
    let Some((_, members)) = candidates
        .iter()
        .find(|(_, m)| varied(m))
        .or_else(|| candidates.first())
        .cloned()
    else {
        return "# Fig.20: no groups\n".into();
    };
    // Centroid of all members' prediction centroids.
    let mut acc = [0.0f64; 3];
    for &i in &members {
        if let Some(c) = ctx.results.records[i].centroid {
            let v = c.to_unit_vector();
            acc[0] += v[0];
            acc[1] += v[1];
            acc[2] += v[2];
        }
    }
    let Some(center) = geokit::GeoPoint::from_vector(acc) else {
        return "# Fig.20: no centroids\n".into();
    };
    // The phase-1 anchor set is deterministic and shared by every
    // member, which would collapse the x-axis; what varies per member is
    // the *random phase-2* landmark draw (§4.1), so exclude landmarks
    // that every member measured.
    let mut landmark_counts: std::collections::HashMap<(i64, i64), usize> = Default::default();
    let key = |lm: &geokit::GeoPoint| ((lm.lat() * 1e4) as i64, (lm.lon() * 1e4) as i64);
    for &i in &members {
        for (lm, _) in &ctx.results.records[i].observations {
            *landmark_counts.entry(key(lm)).or_default() += 1;
        }
    }
    let shared_by_all = |lm: &geokit::GeoPoint| landmark_counts[&key(lm)] >= members.len();
    let mut pts: Vec<(f64, f64)> = Vec::new();
    for &i in &members {
        let r = &ctx.results.records[i];
        // Small continent pools can make *every* landmark shared; fall
        // back to the unfiltered nearest in that case.
        let nearest_of = |filter: bool| {
            r.observations
                .iter()
                .filter(|(lm, _)| !filter || !shared_by_all(lm))
                .map(|(lm, _)| lm.distance_km(&center))
                .fold(f64::INFINITY, f64::min)
        };
        let mut nearest = nearest_of(true);
        if !nearest.is_finite() {
            nearest = nearest_of(false);
        }
        if nearest.is_finite() {
            pts.push((nearest, r.region_area_km2));
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "# Fig.20: {} group members", pts.len());
    out.push_str(&render_scatter(
        "region size",
        "nearest_landmark_km,region_area_km2",
        &pts,
    ));
    if pts.len() >= 3 {
        let _ = writeln!(
            out,
            "# Spearman correlation = {:?} (paper: none)",
            geokit::stats::spearman(&pts)
        );
    }
    out
}

/// Fig. 21: per-provider agreement of every method with the claims.
pub fn fig21_method_comparison(ctx: &StudyContext) -> String {
    report::render_fig21(&ctx.study, &ctx.results)
}

/// Fig. 22: the continent confusion matrix.
pub fn fig22_continent_confusion(ctx: &StudyContext) -> String {
    let m = continent_confusion(ctx.study.world.atlas(), &ctx.results);
    report::render_confusion(&m, 8)
}

/// Fig. 23: the country confusion matrix (trimmed to countries that
/// appear; full CSV in the output).
pub fn fig23_country_confusion(ctx: &StudyContext) -> String {
    let m = country_confusion(ctx.study.world.atlas(), &ctx.results);
    let mut out = report::render_confusion(&m, 40);
    let trimmed = m.trimmed();
    let _ = writeln!(
        out,
        "# full matrix: {} countries appear in at least one region",
        trimmed.n()
    );
    out
}

/// The paper's headline numbers (§1, §6).
pub fn headline_numbers(ctx: &StudyContext) -> String {
    let mut out = String::new();
    let res = &ctx.results;
    let total = res.records.len();
    let (c, u, f) = res.counts(false);
    let (cr, ur, fr) = res.counts(true);
    let _ = writeln!(out, "# Headline (paper: 2269 proxies; 989 credible / 642 uncertain / 638 false;");
    let _ = writeln!(out, "#  353 uncertain reclassified by metadata; ≥1/3 definitely false)");
    let _ = writeln!(out, "proxies measured: {total}");
    let _ = writeln!(out, "raw:     credible {c} uncertain {u} false {f}");
    let _ = writeln!(out, "refined: credible {cr} uncertain {ur} false {fr}");
    let _ = writeln!(out, "uncertain reclassified by metadata: {}", u - ur);
    let _ = writeln!(
        out,
        "fraction definitely false: {:.1} % (paper: ~28 % of all, 'at least a third' with continent-false)",
        100.0 * fr as f64 / total.max(1) as f64
    );
    // Top-10 claimed countries' share of credible and false claims.
    let mut by_claim: std::collections::HashMap<usize, usize> = Default::default();
    for r in &res.records {
        *by_claim.entry(r.proxy.claimed).or_default() += 1;
    }
    let mut order: Vec<usize> = by_claim.keys().copied().collect();
    order.sort_by_key(|c| std::cmp::Reverse(by_claim[c]));
    let top10: Vec<usize> = order.into_iter().take(10).collect();
    let share = |want: Assessment| {
        let total_w = res
            .records
            .iter()
            .filter(|r| r.refined.assessment == want)
            .count();
        let in_top = res
            .records
            .iter()
            .filter(|r| r.refined.assessment == want && top10.contains(&r.proxy.claimed))
            .count();
        (in_top, total_w)
    };
    let (ct, cw) = share(Assessment::Credible);
    let (ft, fw) = share(Assessment::False);
    let _ = writeln!(
        out,
        "top-10 claimed countries hold {:.0} % of credible and {:.0} % of false claims (paper: 84 % / 11 %)",
        100.0 * ct as f64 / cw.max(1) as f64,
        100.0 * ft as f64 / fw.max(1) as f64
    );
    let _ = writeln!(
        out,
        "ground-truth honesty: {:.1} % (hidden from the pipeline)",
        ctx.study.providers.ground_truth_honesty() * 100.0
    );
    let _ = writeln!(
        out,
        "pipeline coverage of true country: {:.1} %",
        res.coverage_of_truth() * 100.0
    );
    out
}
