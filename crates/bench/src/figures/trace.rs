//! The observability trace figure (not a paper figure): three views of
//! the merged per-proxy event stream a study run records —
//!
//! * probe outcomes per landmark (completions vs timeouts, anchors
//!   flagged), showing which landmarks the audit leaned on and which
//!   went dark;
//! * retry-depth distribution (`rel.attempts_per_landmark`), the
//!   reliability layer's effort histogram;
//! * the region-size funnel per CBG++ stage: baseline cells →
//!   bestline-filtered cells, plus empty-region and fallback causes.
//!
//! Everything rendered here comes from the deterministic compartment of
//! the recorder, so the output is byte-identical for any `PV_THREADS`.

use crate::scale::StudyContext;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Render the trace summaries from a finished study run.
pub fn trace_observability(ctx: &StudyContext) -> String {
    let obs = &ctx.results.obs;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# observability trace: {} events, level {:?}",
        obs.events_len(),
        obs.level()
    );

    // --- probe outcomes per landmark --------------------------------
    let anchors: BTreeSet<u64> = ctx
        .study
        .constellation
        .anchors()
        .iter()
        .map(|l| u64::from(l.node))
        .collect();
    let landmarks: BTreeSet<u64> = ctx
        .study
        .constellation
        .landmarks()
        .iter()
        .map(|l| u64::from(l.node))
        .collect();
    // node -> (completed, timed out). Tunneled probes carry the node
    // being measured in `target` (their `dst` is the proxy); direct
    // probes are attributed by `dst`.
    let mut per_dst: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    obs.with_events(|events| {
        for e in events {
            if e.target != "netsim" {
                continue;
            }
            let Some(node) = e.field_u64("target").or_else(|| e.field_u64("dst")) else {
                continue;
            };
            if !landmarks.contains(&node) {
                continue;
            }
            match e.name {
                "probe" => per_dst.entry(node).or_default().0 += 1,
                "probe_timeout" => per_dst.entry(node).or_default().1 += 1,
                _ => {}
            }
        }
    });
    let _ = writeln!(out, "## probe outcomes per landmark ({} probed)", per_dst.len());
    let _ = writeln!(out, "# node,kind,completed,timeout");
    let mut silent = 0usize;
    for (&node, &(ok, to)) in &per_dst {
        if ok == 0 && to > 0 {
            silent += 1;
        }
        let kind = if anchors.contains(&node) { "anchor" } else { "probe" };
        let _ = writeln!(out, "{node},{kind},{ok},{to}");
    }
    let _ = writeln!(out, "# {} landmarks answered nothing at all", silent);

    // --- retry depth distribution -----------------------------------
    let _ = writeln!(out, "## retry depth (attempts per landmark per proxy)");
    match obs.hist("rel.attempts_per_landmark") {
        Some(h) => {
            let _ = writeln!(out, "{}", h.render_line());
            let _ = writeln!(
                out,
                "# retries {}  fallbacks {}  dead landmarks {}  corrupt readings {}",
                obs.counter("rel.retry"),
                obs.counter("rel.fallback"),
                obs.counter("rel.dead_landmark"),
                obs.counter("rel.corrupt_reading"),
            );
        }
        None => {
            let _ = writeln!(out, "# (no samples — recorder level below Counters?)");
        }
    }

    // --- region-size funnel per algorithm stage ---------------------
    let _ = writeln!(out, "## region-size funnel (CBG++ stages)");
    for (label, name) in [
        ("baseline", "alg.baseline_cells"),
        ("bestline", "alg.region_cells"),
    ] {
        match obs.hist(name) {
            Some(h) => {
                let _ = writeln!(out, "{label:<9} {}", h.render_line());
            }
            None => {
                let _ = writeln!(out, "{label:<9} (no samples)");
            }
        }
    }
    let _ = writeln!(
        out,
        "# observations dropped by bestline filter: {}",
        obs.counter("alg.bestline_dropped")
    );
    let _ = writeln!(
        out,
        "# empty regions {}  baseline fallbacks {}",
        obs.counter("alg.empty_region"),
        obs.counter("alg.baseline_fallback")
    );
    // Empty-region causes, by stage, from the event stream.
    let mut empty_by_stage: BTreeMap<&'static str, u64> = BTreeMap::new();
    obs.with_events(|events| {
        for e in events {
            if e.target == "cbgpp" && e.name == "empty_region" {
                if let Some(stage) = e.field_str("stage") {
                    *empty_by_stage.entry(stage).or_insert(0) += 1;
                }
            }
        }
    });
    for (stage, n) in &empty_by_stage {
        let _ = writeln!(out, "#   empty at {stage}: {n}");
    }
    out
}
