//! Fig. 9 (the four-algorithm comparison on crowdsourced hosts) and
//! Fig. 11 (measurement effectiveness vs landmark distance).

use crate::render::render_ecdf;
use crate::scale::CrowdContext;
use geokit::EARTH_LAND_AREA_KM2;
use geoloc::algorithms::{Cbg, CbgPlusPlus, Hybrid, QuasiOctant, ShortestPing, Spotter};
use geoloc::delay_model::{CbgModel, SpotterModel};
use geoloc::effectiveness::analyze_effectiveness;
use geoloc::multilateration::RingConstraint;
use geoloc::{Geolocator, Observation};
use std::fmt::Write as _;

/// Per-algorithm accuracy records for one crowd cohort.
pub struct AlgorithmScores {
    /// Algorithm display name.
    pub name: &'static str,
    /// Distance from the predicted region's edge to the true location,
    /// km (0 = covered). Panel A.
    pub miss_km: Vec<f64>,
    /// Distance from the region centroid to the true location, km.
    /// Panel B.
    pub centroid_km: Vec<f64>,
    /// Region area / Earth land area. Panel C.
    pub area_fraction: Vec<f64>,
    /// Hosts for which the algorithm produced no region at all.
    pub empty: usize,
}

impl AlgorithmScores {
    /// Fraction of hosts whose true location was inside the region.
    pub fn coverage(&self) -> f64 {
        if self.miss_km.is_empty() {
            return 0.0;
        }
        let hit = self.miss_km.iter().filter(|&&m| m == 0.0).count();
        hit as f64 / self.miss_km.len() as f64
    }
}

/// Score every algorithm on every measured crowd host (paired inputs).
pub fn score_algorithms(ctx: &CrowdContext) -> Vec<AlgorithmScores> {
    let mask = ctx.mask();
    // Global Spotter model pooled over the anchor mesh.
    let pool: Vec<&atlas::CalibrationSet> = (0..ctx.constellation.num_anchors())
        .map(|i| ctx.calibration.for_anchor(i))
        .collect();
    let spotter_model = SpotterModel::calibrate(&pool);

    let algorithms: Vec<(&'static str, Box<dyn Geolocator>)> = vec![
        ("Shortest-ping", Box::new(ShortestPing)),
        ("CBG", Box::new(Cbg)),
        ("Quasi-Octant", Box::new(QuasiOctant)),
        ("Spotter", Box::new(Spotter::new(spotter_model.clone()))),
        ("Hybrid", Box::new(Hybrid::new(spotter_model))),
        ("CBG++", Box::new(CbgPlusPlus)),
    ];

    let mut out: Vec<AlgorithmScores> = algorithms
        .iter()
        .map(|(name, _)| AlgorithmScores {
            name,
            miss_km: Vec::new(),
            centroid_km: Vec::new(),
            area_fraction: Vec::new(),
            empty: 0,
        })
        .collect();

    for record in &ctx.records {
        for (scores, (_, algo)) in out.iter_mut().zip(&algorithms) {
            let p = algo.locate(&record.observations, &mask);
            match p.region.distance_from_km(&record.host.true_location) {
                Some(miss) => {
                    scores.miss_km.push(miss);
                    if let Some(c) = p.region.centroid() {
                        scores
                            .centroid_km
                            .push(c.distance_km(&record.host.true_location));
                    }
                    scores.area_fraction.push(p.area_km2() / EARTH_LAND_AREA_KM2);
                }
                None => scores.empty += 1,
            }
        }
    }
    out
}

/// Fig. 9: ECDFs of (A) miss distance, (B) centroid distance, (C) area
/// fraction for the algorithms, plus coverage summaries.
pub fn fig9_algorithm_comparison(ctx: &CrowdContext) -> String {
    let scores = score_algorithms(ctx);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig.9: algorithm comparison over {} crowd hosts",
        ctx.records.len()
    );
    for s in &scores {
        let _ = writeln!(
            out,
            "# {:<13} coverage {:>5.1} %   empty predictions {}",
            s.name,
            s.coverage() * 100.0,
            s.empty
        );
    }
    let _ = writeln!(
        out,
        "# paper shape: CBG covers ~90 %, others ~50 % or less; CBG++ covers everything"
    );
    for s in &scores {
        out.push_str(&render_ecdf(
            &format!("A miss_km {}", s.name),
            &s.miss_km,
            0.0,
            20_000.0,
            41,
        ));
        out.push_str(&render_ecdf(
            &format!("B centroid_km {}", s.name),
            &s.centroid_km,
            0.0,
            20_000.0,
            41,
        ));
        out.push_str(&render_ecdf(
            &format!("C area_fraction {}", s.name),
            &s.area_fraction,
            0.0,
            1.0,
            41,
        ));
    }
    out
}

/// Fig. 11: which measurements actually shrink the final region, as a
/// function of landmark–target distance.
pub fn fig11_effectiveness(ctx: &mut CrowdContext) -> String {
    let mask = ctx.mask();
    let mut by_bin: Vec<(usize, usize)> = vec![(0, 0); 16]; // (effective, total) per 1000 km
    let mut reductions: Vec<(f64, f64)> = Vec::new(); // (distance, area reduction Mm²)

    // Measure every anchor from each host (the paper measured all 250
    // anchors for this analysis), then leave-one-out.
    let hosts: Vec<(netsim::NodeId, geokit::GeoPoint)> = ctx
        .records
        .iter()
        .take(30) // leave-one-out is quadratic; a subset carries the shape
        .map(|r| (r.host.node, r.host.true_location))
        .collect();
    for (node, truth) in hosts {
        let mut observations: Vec<Observation> = Vec::new();
        for (i, anchor) in ctx.constellation.anchors().iter().enumerate() {
            let Some(rtt) = ctx.world.network_mut().tcp_connect_rtt(node, anchor.node, 80)
            else {
                continue;
            };
            observations.push(Observation::new(
                anchor.location,
                rtt.as_ms() / 2.0,
                ctx.calibration.for_anchor(i).clone(),
            ));
        }
        let slack = geoloc::multilateration::constraint::grid_slack_km(mask.grid());
        let constraints: Vec<RingConstraint> = observations
            .iter()
            .map(|o| {
                let m = CbgModel::calibrate_with_slowline(&o.calibration);
                RingConstraint::disk(o.landmark, m.max_distance_km(o.one_way_ms)).inflated(slack)
            })
            .collect();
        let eff = analyze_effectiveness(&constraints, &mask);
        for (e, o) in eff.iter().zip(&observations) {
            let dist = o.landmark.distance_km(&truth);
            let bin = ((dist / 1000.0) as usize).min(by_bin.len() - 1);
            by_bin[bin].1 += 1;
            if e.effective {
                by_bin[bin].0 += 1;
                reductions.push((dist, e.area_reduction_km2 / 1e6));
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# Fig.11: effective vs ineffective measurements by distance");
    let _ = writeln!(out, "# bin_km,effective,total,fraction");
    for (i, &(e, t)) in by_bin.iter().enumerate() {
        if t == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{}..{},{e},{t},{:.3}",
            i * 1000,
            (i + 1) * 1000,
            e as f64 / t as f64
        );
    }
    let _ = writeln!(out, "# effective measurements: distance_km,area_reduction_Mm2");
    for (d, r) in &reductions {
        let _ = writeln!(out, "{d:.0},{r:.4}");
    }
    if reductions.len() >= 3 {
        let corr = geokit::stats::spearman(&reductions);
        let _ = writeln!(
            out,
            "# Spearman(distance, reduction among effective) = {:?} (paper: no correlation)",
            corr
        );
    }
    out
}
