//! Ablations of the design choices DESIGN.md calls out: each CBG++
//! modification individually, the landmark budget, and iterative
//! refinement. Not a paper figure — the paper motivates each choice in
//! §5.1/§5.2; this quantifies them on our substrate.

use crate::scale::CrowdContext;
use geoloc::algorithms::CbgPlusPlusVariant;
use geoloc::Geolocator;
use std::fmt::Write as _;

/// Ablation sweep over the crowd cohort:
/// * CBG++ with slowline/baseline-filter toggled independently;
/// * CBG++ with the observation list truncated to its first k landmarks
///   (the phase-2 budget ablation — the paper uses 25).
pub fn ablation_cbgpp(ctx: &CrowdContext) -> String {
    let mask = ctx.mask();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablation: CBG++ design choices over {} crowd hosts",
        ctx.records.len()
    );

    let variants = [
        CbgPlusPlusVariant { use_slowline: true, use_baseline_filter: true },
        CbgPlusPlusVariant { use_slowline: true, use_baseline_filter: false },
        CbgPlusPlusVariant { use_slowline: false, use_baseline_filter: true },
        CbgPlusPlusVariant { use_slowline: false, use_baseline_filter: false },
    ];
    let _ = writeln!(out, "# variant,coverage,empty,median_area_km2,median_miss_km");
    for v in variants {
        let (coverage, empty, med_area, med_miss) = score(ctx, &mask, &v, usize::MAX);
        let _ = writeln!(
            out,
            "{},{coverage:.3},{empty},{med_area:.0},{med_miss:.0}",
            v.name()
        );
    }

    // Under clean measurements all four variants coincide (nothing to
    // clamp, nothing to filter). The §5.1 machinery earns its keep under
    // *underestimation* stress: deflate a third of each host's delays by
    // 45 % — the congested-calibration / fast-path mismatch regime.
    // Under clean measurements all four variants coincide, so each §5.1
    // mechanism gets the failure scenario it was designed for.

    // Scenario A — congested calibration: every landmark's two-week mesh
    // data was taken under 3× delays, so the unconstrained bestlines are
    // far slower than physics allows. The slowline clamp is the fix.
    let _ = writeln!(
        out,
        "# scenario A (3x congested calibrations): algorithm,coverage,empty"
    );
    let congested: Vec<Vec<geoloc::Observation>> = ctx
        .records
        .iter()
        .map(|r| {
            r.observations
                .iter()
                .map(|o| {
                    geoloc::Observation::new(
                        o.landmark,
                        o.one_way_ms,
                        atlas::CalibrationSet::from_points(
                            o.calibration
                                .points()
                                .iter()
                                .map(|&(d, t)| (d, t * 3.0))
                                .collect(),
                        ),
                    )
                })
                .collect()
        })
        .collect();
    let scenario_a: Vec<Box<dyn Geolocator>> = vec![
        Box::new(geoloc::algorithms::Cbg),
        Box::new(CbgPlusPlusVariant { use_slowline: false, use_baseline_filter: true }),
        Box::new(CbgPlusPlusVariant::default()),
    ];
    for algo in &scenario_a {
        let (coverage, empty) = score_sets(ctx, &mask, algo.as_ref(), &congested);
        let _ = writeln!(out, "{},{coverage:.3},{empty}", algo.name());
    }
    let _ = writeln!(
        out,
        "# expected: plain CBG collapses; the slowline restores coverage"
    );

    // Scenario B — one corrupted (deflated) measurement per host, the
    // underestimating-disk failure: plain intersection goes empty, the
    // subset search / baseline filter arbitrate it away.
    let _ = writeln!(
        out,
        "# scenario B (one delay deflated to 20 %): algorithm,coverage,empty"
    );
    let corrupted: Vec<Vec<geoloc::Observation>> = ctx
        .records
        .iter()
        .map(|r| {
            r.observations
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    let factor = if i == 0 { 0.20 } else { 1.0 };
                    geoloc::Observation::new(
                        o.landmark,
                        o.one_way_ms * factor,
                        o.calibration.clone(),
                    )
                })
                .collect()
        })
        .collect();
    let scenario_b: Vec<Box<dyn Geolocator>> = vec![
        Box::new(geoloc::algorithms::Cbg),
        Box::new(CbgPlusPlusVariant::default()),
    ];
    for algo in &scenario_b {
        let (coverage, empty) = score_sets(ctx, &mask, algo.as_ref(), &corrupted);
        let _ = writeln!(out, "{},{coverage:.3},{empty}", algo.name());
    }
    let _ = writeln!(
        out,
        "# expected: plain CBG often returns nothing; CBG++ never does"
    );

    let _ = writeln!(out, "# landmark budget (full CBG++): k,coverage,median_area_km2");
    for k in [3usize, 5, 10, 15, 20, 25, 100] {
        let v = CbgPlusPlusVariant::default();
        let (coverage, _, med_area, _) = score(ctx, &mask, &v, k);
        let _ = writeln!(out, "{k},{coverage:.3},{med_area:.0}");
    }
    let _ = writeln!(
        out,
        "# expected shape: more landmarks → smaller regions at equal coverage;\n\
         # dropping the slowline or the baseline filter costs coverage under noise"
    );
    out
}

/// Coverage + empty count of an algorithm over prepared observation sets.
fn score_sets(
    ctx: &CrowdContext,
    mask: &geokit::Region,
    algo: &dyn Geolocator,
    sets: &[Vec<geoloc::Observation>],
) -> (f64, usize) {
    let (mut hits, mut total, mut empty) = (0usize, 0usize, 0usize);
    for (r, obs) in ctx.records.iter().zip(sets) {
        let p = algo.locate(obs, mask);
        match p.region.distance_from_km(&r.host.true_location) {
            None => empty += 1,
            Some(miss) => {
                total += 1;
                if miss == 0.0 {
                    hits += 1;
                }
            }
        }
    }
    (hits as f64 / total.max(1) as f64, empty)
}

fn score(
    ctx: &CrowdContext,
    mask: &geokit::Region,
    algo: &CbgPlusPlusVariant,
    max_obs: usize,
) -> (f64, usize, f64, f64) {
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut empty = 0usize;
    let mut areas = Vec::new();
    let mut misses = Vec::new();
    for r in &ctx.records {
        let obs = if r.observations.len() > max_obs {
            &r.observations[..max_obs]
        } else {
            &r.observations[..]
        };
        let p = algo.locate(obs, mask);
        match p.region.distance_from_km(&r.host.true_location) {
            None => empty += 1,
            Some(miss) => {
                total += 1;
                if miss == 0.0 {
                    hits += 1;
                }
                misses.push(miss);
                areas.push(p.area_km2());
            }
        }
    }
    (
        hits as f64 / total.max(1) as f64,
        empty,
        geokit::stats::median(&areas).unwrap_or(f64::NAN),
        geokit::stats::median(&misses).unwrap_or(f64::NAN),
    )
}

/// Constellation map dumps: Fig. 3 (anchors + probes) and Fig. 8 (crowd
/// hosts, volunteers vs workers).
pub fn fig3_fig8_maps(ctx: &CrowdContext) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig.3: landmark locations (kind,lat,lon)");
    for lm in ctx.constellation.landmarks() {
        let kind = if lm.is_anchor { "anchor" } else { "probe" };
        let _ = writeln!(out, "{kind},{:.3},{:.3}", lm.location.lat(), lm.location.lon());
    }
    let _ = writeln!(out, "# Fig.8: crowd host locations (cohort,lat,lon,os)");
    for h in &ctx.hosts {
        let cohort = if h.is_volunteer { "volunteer" } else { "worker" };
        let _ = writeln!(
            out,
            "{cohort},{:.3},{:.3},{:?}",
            h.true_location.lat(),
            h.true_location.lon(),
            h.os
        );
    }
    // Density summary: the Fig. 3/8 shape is "majority Europe + NA".
    let atlas = ctx.world.atlas();
    let mut by_continent = [0usize; 8];
    for lm in ctx.constellation.landmarks() {
        by_continent[atlas.country(lm.country).continent().index()] += 1;
    }
    let _ = writeln!(out, "# landmarks per continent:");
    for (i, c) in worldmap::Continent::ALL.iter().enumerate() {
        let _ = writeln!(out, "#   {:<16} {}", c.name(), by_continent[i]);
    }
    out
}
