//! Fault-campaign sweep (not a paper figure): verdict stability and
//! reliability-layer effort as substrate faults ramp up.
//!
//! The paper's campaign ran for weeks against the real Internet (§6),
//! where landmarks disappear and probes get lost; its results are only
//! meaningful if the pipeline's verdicts are stable under that churn.
//! This sweep re-runs the (scaled) audit at increasing fault intensity —
//! per-hop packet loss plus a fraction of landmarks in permanent outage
//! — and reports how the verdict mix, the measured population, and the
//! retry/fallback effort respond.

use crate::Scale;
use netsim::NodeId;
use std::fmt::Write as _;
use vpnstudy::audit::Study;

/// (per-hop loss, fraction of landmarks down) per sweep step.
const STEPS: &[(f64, f64)] = &[
    (0.0, 0.0),
    (0.01, 0.05),
    (0.025, 0.10),
    (0.05, 0.20),
];

/// Run the audit once per fault step and tabulate the outcome.
pub fn fault_sweep(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fault sweep: audit stability under probe loss and landmark outages"
    );
    let _ = writeln!(
        out,
        "# columns: hop_loss, landmarks_down, measured, insufficient, unmeasurable, \
         credible, uncertain, false, retries, fallbacks, dead_landmarks, quorum_degraded"
    );
    for &(loss, down) in STEPS {
        let mut study = Study::build(scale.study_config());
        if down > 0.0 {
            let nodes: Vec<NodeId> = study
                .constellation
                .landmarks()
                .iter()
                .map(|l| l.node)
                .collect();
            let stride = ((1.0 / down).round() as usize).max(1);
            let t0 = study.world.network_mut().now();
            for node in nodes.into_iter().step_by(stride) {
                study
                    .world
                    .network_mut()
                    .faults_mut()
                    .add_permanent_outage(node, t0);
            }
        }
        study.world.network_mut().faults_mut().set_drop_chance(loss);
        let results = study.run();
        let s = results.reliability_summary();
        let (credible, uncertain, false_) = results.counts(true);
        let _ = writeln!(
            out,
            "{loss:.3}, {down:.2}, {}, {}, {}, {credible}, {uncertain}, {false_}, {}, {}, {}, {}",
            s.measured,
            s.insufficient,
            s.unmeasurable,
            s.totals.retries,
            s.totals.fallbacks,
            s.totals.dead_landmarks,
            s.quorum_degraded
        );
    }
    let _ = writeln!(
        out,
        "# Expectation: measured stays near the fleet size and the verdict mix\n\
         # drifts slowly while retries/fallbacks grow — the reliability layer\n\
         # absorbs the faults instead of silently shrinking the denominator."
    );
    out
}
