//! The operational-telemetry bundle (not a paper figure): everything an
//! operator would scrape or load from a finished audit —
//!
//! * the ops dashboard (`report::render_ops`): progress, quantiles,
//!   per-shard gauges, and the SLO verdict under the default ruleset;
//! * the full OpenMetrics exposition, round-tripped through the in-repo
//!   parser before it leaves this function;
//! * the Perfetto/Chrome trace-event JSON of the span profile and sim
//!   clock, loadable at `ui.perfetto.dev`;
//! * the full progress-snapshot JSONL (wall compartment included — use
//!   `StudyResults::snapshots_jsonl` for determinism diffs, not this).
//!
//! The dashboard is what `figures ops` prints; with `--out` the other
//! three land as sidecar files next to it.

use crate::scale::StudyContext;
use std::fmt::Write as _;
use vpnstudy::ops;
use vpnstudy::report;

/// Everything `figures ops` produces from one finished study.
pub struct OpsBundle {
    /// Human-readable dashboard (stdout / `ops.txt`).
    pub dashboard: String,
    /// OpenMetrics exposition (`ops.metrics.om`).
    pub metrics: String,
    /// Perfetto trace-event JSON (`ops.trace.json`).
    pub trace: String,
    /// Full snapshot JSONL, wall compartment included
    /// (`ops.snapshots.jsonl`).
    pub snapshots: String,
}

/// Build the full telemetry bundle from a finished study run.
pub fn ops_telemetry(ctx: &StudyContext) -> OpsBundle {
    let results = &ctx.results;
    let set = ops::study_metrics(results)
        .expect("every counter a study emits is registered in obs::registry");
    let metrics = set.render();
    // Self-check: the exposition must survive the in-repo parser
    // byte-for-byte before anything scrapes it.
    let parsed = obs::export::parse_exposition(&metrics)
        .expect("rendered exposition must parse");
    assert_eq!(parsed.render(), metrics, "exposition round-trip drifted");

    let alerts = ops::evaluate_slos(&set, None);
    let mut dashboard = report::render_ops(results, &set, &alerts);
    let _ = writeln!(dashboard, "--- SLO ruleset ---");
    let _ = write!(dashboard, "{}", ops::DEFAULT_RULES);

    OpsBundle {
        dashboard,
        metrics,
        trace: obs::perfetto::render_trace(&results.obs),
        snapshots: results.snapshots_full_jsonl(),
    }
}
