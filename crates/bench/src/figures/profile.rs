//! The span-profile figure (not a paper figure): the hierarchical
//! wall-clock profile of a full audit run, straight from the study's
//! recorder — phase-1/phase-2 probing, retries and backoff, disk
//! intersection and the counting sweep, disk-cache lookups, and report
//! rendering, as an indented tree with per-path call counts and
//! self/cumulative time.
//!
//! Unlike the other figures this output is **machine- and
//! scheduling-dependent** (it reports real elapsed time), so it must
//! never be byte-diffed by the determinism gate. Its value is the
//! *shape*: where a run spends its time and how often each stage runs.

use crate::scale::StudyContext;
use vpnstudy::report;

/// Render the study run's span tree plus the wall-clock telemetry block
/// (thread count, disk-cache hit rate, coarse span totals).
pub fn profile_spans(ctx: &StudyContext) -> String {
    let mut out = report::render_profile(&ctx.results);
    out.push('\n');
    out.push_str(&report::render_perf_telemetry(&ctx.results));
    out
}
