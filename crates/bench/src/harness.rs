//! A minimal, zero-dependency stand-in for the slice of Criterion's API
//! the benches in `benches/` use.
//!
//! The workspace builds fully offline, so the real `criterion` crate is
//! out of reach. This harness keeps the bench sources nearly unchanged
//! (same `Criterion` / `Bencher` / `BatchSize` names, same
//! `criterion_group!` / `criterion_main!` macros) while measuring with
//! plain `std::time::Instant`:
//!
//! * warm up the routine briefly and estimate its per-iteration cost;
//! * pick an iteration count per sample targeting ~5 ms of work;
//! * take `sample_size` samples (default 50) and report the median,
//!   10th- and 90th-percentile per-iteration time.
//!
//! ## Sample-count override: `PV_BENCH_SAMPLES`
//!
//! Setting the `PV_BENCH_SAMPLES` environment variable overrides *every*
//! sample count — the default, `--sample-size`, and per-group
//! [`BenchmarkGroup::sample_size`] calls alike (clamped to a minimum of
//! 2). This is the CI smoke mode: `PV_BENCH_SAMPLES=5 cargo bench` runs
//! the full suite in seconds with noisier numbers, while local runs
//! without the variable keep the full 50-sample statistics.
//!
//! ## Output files
//!
//! Results print to stdout and land in `bench_output/` (directory
//! overridable via the `BENCH_OUTPUT_DIR` environment variable):
//!
//! * `<bench-binary>.txt` — one human-readable line per bench. The file
//!   is **merged keyed by bench name**: re-running a bench (even a
//!   `cargo bench -- <filter>` subset) replaces that bench's previous
//!   line in place and leaves the others, so the report always reflects
//!   each bench's latest run exactly once.
//! * `BENCH_<group>.json` — a machine-readable
//!   [`BenchArtifact`](crate::artifact::BenchArtifact) per bench group
//!   (median/p10/p90 ns, iteration counts, thread count, `git describe`
//!   when available, and recorder counters when the group captured one
//!   via [`BenchmarkGroup::capture_recorder`]). Merged the same way.
//!
//! No statistical outlier rejection is attempted — this is a regression
//! smoke-harness, not a rigorous measurement tool.

use crate::artifact::{BenchArtifact, BenchRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// How `Bencher::iter_batched` amortises setup cost. The real Criterion
/// uses this to size batches; here each iteration re-runs setup untimed,
/// so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold many of (timing per call).
    SmallInput,
    /// Setup output is expensive; keep at most one alive.
    LargeInput,
}

/// Timing summary for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Sampled {
    /// Benchmark identifier as printed.
    pub name: String,
    /// Median per-iteration time (ns).
    pub median_ns: f64,
    /// 10th percentile (ns).
    pub p10_ns: f64,
    /// 90th percentile (ns).
    pub p90_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// Collects per-iteration timings for one benchmark routine.
///
/// Handed to the `|b| b.iter(...)` closure; `iter`/`iter_batched` run
/// the warmup + sampling loop and stash the raw samples for `Criterion`
/// to summarise.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration times in ns, one entry per sample.
    sample_ns: Vec<f64>,
    iters_per_sample: u64,
}

/// Target wall time per timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Warmup budget before iteration-count calibration.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            sample_ns: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Benchmark `routine`, timing every call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: run until the budget is spent, tracking
        // the observed per-call cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET && warm_iters < 1_000_000 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = iters_for_target(per_iter);

        self.iters_per_sample = iters;
        self.sample_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.sample_ns.push(elapsed / iters as f64);
        }
    }

    /// Benchmark `routine` on fresh input from `setup`; only `routine`
    /// is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_timed = Duration::ZERO;
        while warm_start.elapsed() < WARMUP_TARGET && warm_iters < 1_000_000 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            warm_timed += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_timed.as_secs_f64() / warm_iters.max(1) as f64;
        let iters = iters_for_target(per_iter);

        self.iters_per_sample = iters;
        self.sample_ns.clear();
        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                timed += t0.elapsed();
            }
            self.sample_ns
                .push(timed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Iterations per sample so one sample takes ~`SAMPLE_TARGET`.
fn iters_for_target(per_iter_secs: f64) -> u64 {
    if per_iter_secs <= 0.0 {
        return 1;
    }
    ((SAMPLE_TARGET.as_secs_f64() / per_iter_secs) as u64).clamp(1, 10_000_000)
}

/// Drop-in for `criterion::Criterion`: runs benchmarks, prints one
/// summary line each, and writes the collected report at `finalize`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    results: Vec<Sampled>,
    /// Recorders captured per group for the JSON artifacts.
    captured: Vec<(String, obs::Recorder)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            filter: None,
            results: Vec::new(),
            captured: Vec::new(),
        }
    }
}

/// The `PV_BENCH_SAMPLES` override, when set to a usable number.
pub fn env_sample_override() -> Option<usize> {
    std::env::var("PV_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(2))
}

impl Criterion {
    /// Build from the bench binary's CLI arguments. Understands the
    /// flags cargo passes (`--bench` is ignored) and treats the first
    /// free argument as a substring filter on benchmark names, like
    /// `cargo bench -- <filter>` does.
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Flags cargo's bench runner passes through.
                "--bench" | "--test" | "--quiet" | "-q" | "--exact" | "--nocapture" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        c.sample_size = n;
                    }
                }
                other if other.starts_with("--") => {} // unknown flags: ignore
                free => {
                    if c.filter.is_none() {
                        c.filter = Some(free.to_string());
                    }
                }
            }
        }
        c
    }

    /// Run a single benchmark at the default sample size.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(name.into(), sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.sample_size,
            name: name.into(),
            recorder: None,
            criterion: self,
        }
    }

    fn run_one<F>(&mut self, name: String, sample_size: usize, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // The env override is the CI smoke switch: it wins over both the
        // default and any per-group sample_size() call.
        let sample_size = env_sample_override().unwrap_or(sample_size);
        self.results.push(run_sampled(&name, sample_size, f));
        println!("{}", report_line(self.results.last().expect("just pushed")));
    }

    /// Print the trailer and write the report files (text + JSON
    /// artifacts), merging into any existing files keyed by bench name
    /// so each bench appears exactly once with its latest numbers —
    /// filtered runs update just their subset. Called by
    /// `criterion_main!` after every group has run.
    pub fn finalize(&mut self) {
        if self.results.is_empty() {
            println!("(no benchmarks matched)");
            return;
        }
        // `cargo bench` runs the binary with cwd = the bench crate, so
        // anchor the default on the workspace root, next to the figure
        // outputs, rather than on the current directory.
        let dir = std::env::var("BENCH_OUTPUT_DIR").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_output").into()
        });
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {dir}: {e}");
            return;
        }
        let stem = bench_binary_stem();

        // --- text report, merged keyed by bench name --------------------
        let txt_path = std::path::Path::new(&dir).join(format!("{stem}.txt"));
        let existing = std::fs::read_to_string(&txt_path).unwrap_or_default();
        let merged = merge_report_lines(&existing, &self.results);
        if std::fs::write(&txt_path, merged).is_err() {
            eprintln!("warning: could not write bench report to {}", txt_path.display());
        } else {
            println!("report written to {}", txt_path.display());
        }

        // --- JSON artifacts, one per bench group ------------------------
        let mut by_group: BTreeMap<String, Vec<BenchRecord>> = BTreeMap::new();
        for s in &self.results {
            let group = s.name.split('/').next().unwrap_or(&s.name).to_string();
            by_group.entry(group).or_default().push(BenchRecord::from(s));
        }
        let threads = parallel::configured_threads() as u64;
        let git = git_describe();
        for (group, records) in by_group {
            let path =
                std::path::Path::new(&dir).join(BenchArtifact::file_name(&group));
            let mut artifact = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| BenchArtifact::parse(&text).ok())
                .unwrap_or_default();
            artifact.group = group.clone();
            artifact.generated_by = stem.clone();
            artifact.threads = threads;
            artifact.git.clone_from(&git);
            if let Some((_, rec)) = self.captured.iter().find(|(g, _)| *g == group) {
                artifact.counters = rec
                    .counters()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                artifact.wall_counters = rec
                    .wall_counters()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
            }
            artifact.merge_results(&records);
            if std::fs::write(&path, artifact.to_json()).is_err() {
                eprintln!("warning: could not write {}", path.display());
            } else {
                println!("artifact written to {}", path.display());
            }
        }
    }
}

/// This bench binary's name with cargo's `-<hash>` suffix stripped.
fn bench_binary_stem() -> String {
    std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .map(|s| match s.rfind('-') {
            Some(i) if s[i + 1..].chars().all(|c| c.is_ascii_hexdigit()) => {
                s[..i].to_string()
            }
            _ => s,
        })
        .unwrap_or_else(|| "bench".into())
}

/// `git describe --always --dirty` at the workspace root, if git and a
/// checkout are available.
fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!text.is_empty()).then_some(text)
}

/// Merge fresh results into an existing text report: lines whose bench
/// name matches a fresh result are replaced in place, other lines are
/// kept, and brand-new benches append at the end — so the file always
/// holds each bench's latest run exactly once, never duplicates.
fn merge_report_lines(existing: &str, fresh: &[Sampled]) -> String {
    let mut remaining: Vec<&Sampled> = fresh.iter().collect();
    let mut out = String::new();
    for line in existing.lines() {
        let key = line.split(" median ").next().unwrap_or(line).trim_end();
        match remaining.iter().position(|s| s.name == key) {
            Some(i) => {
                let _ = writeln!(out, "{}", report_line(remaining.remove(i)));
            }
            None => {
                let _ = writeln!(out, "{line}");
            }
        }
    }
    for s in remaining {
        let _ = writeln!(out, "{}", report_line(s));
    }
    out
}

/// Measure one routine outside a `Criterion` run: used by the perf gate
/// to re-run its smoke suite without touching the report files.
pub fn run_sampled<F>(name: &str, sample_size: usize, f: F) -> Sampled
where
    F: FnOnce(&mut Bencher),
{
    let mut bencher = Bencher::new(sample_size.max(2));
    f(&mut bencher);
    summarize(name, &bencher)
}

/// A named batch of benchmarks sharing a sample size, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    recorder: Option<obs::Recorder>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Attach a recorder whose counters should land in this group's
    /// `BENCH_<group>.json` artifact. The snapshot is taken at
    /// `finalize`, after every bench in the group has run, so counters
    /// accumulated during the benches (probe counts, cache hits) appear
    /// in the artifact alongside the timings.
    pub fn capture_recorder(&mut self, rec: &obs::Recorder) -> &mut Self {
        self.recorder = Some(rec.clone());
        self
    }

    /// Run one benchmark within the group (name prefixed by the group's).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let sample_size = self.sample_size;
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// End the group, handing any captured recorder to the parent
    /// `Criterion` for the JSON artifact.
    pub fn finish(self) {
        if let Some(rec) = self.recorder {
            self.criterion.captured.push((self.name, rec));
        }
    }
}

fn summarize(name: &str, bencher: &Bencher) -> Sampled {
    let mut ns = bencher.sample_ns.clone();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    Sampled {
        name: name.to_string(),
        median_ns: percentile(&ns, 0.50),
        p10_ns: percentile(&ns, 0.10),
        p90_ns: percentile(&ns, 0.90),
        iters_per_sample: bencher.iters_per_sample,
        samples: ns.len(),
    }
}

/// Linear-interpolated percentile of an ascending slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }
}

fn report_line(s: &Sampled) -> String {
    format!(
        "{:<44} median {:>10}  p10 {:>10}  p90 {:>10}  ({} samples x {} iters)",
        s.name,
        fmt_ns(s.median_ns),
        fmt_ns(s.p10_ns),
        fmt_ns(s.p90_ns),
        s.samples,
        s.iters_per_sample,
    )
}

/// Human units: ns below 1 µs, µs below 1 ms, ms beyond.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Mirror of `criterion::criterion_group!`: bundles bench functions into
/// one runner function taking `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: generates `fn main` that runs
/// each group against one argument-configured `Criterion` and writes the
/// report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_args();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert!((percentile(&v, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_345.0), "12.35 µs");
        assert_eq!(fmt_ns(12_345_678.0), "12.35 ms");
    }

    #[test]
    fn iters_scale_inversely_with_cost() {
        assert_eq!(iters_for_target(1.0), 1); // 1 s per iter → one at a time
        assert!(iters_for_target(1e-9) > 1_000_000); // 1 ns per iter → many
        assert_eq!(iters_for_target(0.0), 1);
    }

    #[test]
    fn bencher_measures_a_cheap_routine() {
        let mut b = Bencher::new(5);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(std::hint::black_box(17));
            acc
        });
        assert_eq!(b.sample_ns.len(), 5);
        assert!(b.sample_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(3);
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.sample_ns.len(), 3);
    }

    #[test]
    fn groups_prefix_names_and_filter_applies() {
        let mut c = Criterion {
            sample_size: 3,
            filter: Some("keep".into()),
            results: Vec::new(),
            captured: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("keep-me", |b| b.iter(|| std::hint::black_box(1 + 1)));
            g.bench_function("skip-me", |b| b.iter(|| std::hint::black_box(2 + 2)));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "g/keep-me");
        assert_eq!(c.results[0].samples, 2);
    }

    fn sampled(name: &str, median: f64) -> Sampled {
        Sampled {
            name: name.into(),
            median_ns: median,
            p10_ns: median * 0.9,
            p90_ns: median * 1.1,
            iters_per_sample: 10,
            samples: 5,
        }
    }

    #[test]
    fn merge_replaces_matching_lines_in_place_and_appends_new() {
        let old = format!(
            "{}\n{}\n",
            report_line(&sampled("g/alpha", 100.0)),
            report_line(&sampled("g/beta", 200.0)),
        );
        let fresh = [sampled("g/beta", 999.0), sampled("g/gamma", 300.0)];
        let merged = merge_report_lines(&old, &fresh);
        let lines: Vec<&str> = merged.lines().collect();
        // alpha untouched, beta replaced in place, gamma appended — no dupes.
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("g/alpha"));
        assert!(lines[1].starts_with("g/beta") && lines[1].contains("999.0 ns"));
        assert!(lines[2].starts_with("g/gamma"));
        // Re-merging the same results is idempotent.
        assert_eq!(merge_report_lines(&merged, &fresh), merged);
    }

    #[test]
    fn merge_into_empty_report_just_lists_fresh_results() {
        let fresh = [sampled("solo", 42.0)];
        let merged = merge_report_lines("", &fresh);
        assert_eq!(merged.lines().count(), 1);
        assert!(merged.starts_with("solo"));
    }

    #[test]
    fn finished_group_hands_captured_recorder_to_criterion() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
            results: Vec::new(),
            captured: Vec::new(),
        };
        let rec = obs::Recorder::new(obs::Level::Counters);
        rec.count("probes", 7);
        {
            let mut g = c.benchmark_group("cap");
            g.capture_recorder(&rec);
            g.finish();
        }
        assert_eq!(c.captured.len(), 1);
        assert_eq!(c.captured[0].0, "cap");
        assert_eq!(c.captured[0].1.counter("probes"), 7);
    }
}
