//! Machine-readable bench artifacts: one JSON document per bench group,
//! written next to the text reports in `bench_output/` so the repo-level
//! perf trajectory is diffable and scriptable.
//!
//! The workspace is hermetic (no serde); the JSON writer and
//! recursive-descent parser live in [`obs::json`], shared with the
//! verdict store (`vpnstudy::store`). The flat artifact schema:
//!
//! ```json
//! {
//!   "group": "audit",
//!   "generated_by": "bench_audit",
//!   "threads": 8,
//!   "git": "b67b00b",
//!   "counters": { "net.probe.sent": 123 },
//!   "wall_counters": { "audit.threads": 8 },
//!   "results": [
//!     { "name": "audit/one proxy", "median_ns": 127000.5, "p10_ns": 1.0,
//!       "p90_ns": 2.0, "iters_per_sample": 39, "samples": 20,
//!       "tolerance": 0.5 }
//!   ]
//! }
//! ```
//!
//! `tolerance` is optional per entry: the perf-regression gate
//! (`perf_gate`) reads it as that bench's relative regression budget,
//! falling back to its global default when absent.

use crate::harness::Sampled;
use obs::json::{json_str, Json};
use std::fmt::Write as _;

/// One benchmark's summary inside an artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark identifier (`group/bench`).
    pub name: String,
    /// Median per-iteration time (ns).
    pub median_ns: f64,
    /// 10th percentile (ns).
    pub p10_ns: f64,
    /// 90th percentile (ns).
    pub p90_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples taken.
    pub samples: u64,
    /// Optional per-entry relative tolerance for the perf gate (e.g.
    /// `0.5` allows the median to grow 50 % before failing).
    pub tolerance: Option<f64>,
}

impl From<&Sampled> for BenchRecord {
    fn from(s: &Sampled) -> BenchRecord {
        BenchRecord {
            name: s.name.clone(),
            median_ns: s.median_ns,
            p10_ns: s.p10_ns,
            p90_ns: s.p90_ns,
            iters_per_sample: s.iters_per_sample,
            samples: s.samples as u64,
            tolerance: None,
        }
    }
}

/// A bench group's machine-readable summary: results plus the context
/// they were measured in (thread count, git revision, recorder
/// counters).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchArtifact {
    /// Group name (the part of each bench id before the first `/`).
    pub group: String,
    /// Bench binary that produced the artifact.
    pub generated_by: String,
    /// Configured worker thread count (`PV_THREADS` resolution).
    pub threads: u64,
    /// `git describe --always --dirty`, when a git checkout is around.
    pub git: Option<String>,
    /// Deterministic counters snapshotted from a supplied recorder.
    pub counters: Vec<(String, u64)>,
    /// Wall-compartment counters snapshotted from a supplied recorder.
    pub wall_counters: Vec<(String, u64)>,
    /// Per-bench timing summaries.
    pub results: Vec<BenchRecord>,
}

impl BenchArtifact {
    /// The artifact file name for a group: `BENCH_<group>.json`, with
    /// path-hostile characters flattened to `_`.
    pub fn file_name(group: &str) -> String {
        let sanitized: String = group
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("BENCH_{sanitized}.json")
    }

    /// Replace entries matching `fresh` by name (keeping their committed
    /// `tolerance`), append names not seen before. Entries from earlier
    /// runs that `fresh` does not mention survive untouched, so a
    /// filtered bench run updates only its subset.
    pub fn merge_results(&mut self, fresh: &[BenchRecord]) {
        for rec in fresh {
            match self.results.iter_mut().find(|r| r.name == rec.name) {
                Some(existing) => {
                    let tolerance = existing.tolerance;
                    *existing = rec.clone();
                    if existing.tolerance.is_none() {
                        existing.tolerance = tolerance;
                    }
                }
                None => self.results.push(rec.clone()),
            }
        }
    }

    /// Serialize to pretty-printed JSON (stable field order, one result
    /// per line — diff-friendly).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"group\": {},", json_str(&self.group));
        let _ = writeln!(out, "  \"generated_by\": {},", json_str(&self.generated_by));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        match &self.git {
            Some(g) => {
                let _ = writeln!(out, "  \"git\": {},", json_str(g));
            }
            None => {
                let _ = writeln!(out, "  \"git\": null,");
            }
        }
        for (label, table) in [
            ("counters", &self.counters),
            ("wall_counters", &self.wall_counters),
        ] {
            let _ = write!(out, "  \"{label}\": {{");
            for (i, (k, v)) in table.iter().enumerate() {
                let sep = if i == 0 { "\n" } else { ",\n" };
                let _ = write!(out, "{sep}    {}: {}", json_str(k), v);
            }
            if table.is_empty() {
                out.push_str("},\n");
            } else {
                out.push_str("\n  },\n");
            }
        }
        out.push_str("  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{ \"name\": {}, \"median_ns\": {:.1}, \"p10_ns\": {:.1}, \
                 \"p90_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}",
                json_str(&r.name),
                r.median_ns,
                r.p10_ns,
                r.p90_ns,
                r.iters_per_sample,
                r.samples,
            );
            if let Some(t) = r.tolerance {
                let _ = write!(out, ", \"tolerance\": {t:.2}");
            }
            out.push_str(" }");
        }
        if self.results.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Parse an artifact back from JSON. Unknown fields are ignored;
    /// missing fields default (so hand-written baselines can stay
    /// minimal).
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("artifact root is not an object")?;
        let mut art = BenchArtifact::default();
        for (key, val) in obj {
            match key.as_str() {
                "group" => art.group = val.as_str().unwrap_or_default().to_string(),
                "generated_by" => {
                    art.generated_by = val.as_str().unwrap_or_default().to_string();
                }
                "threads" => art.threads = val.as_f64().unwrap_or(0.0) as u64,
                "git" => art.git = val.as_str().map(str::to_string),
                "counters" => art.counters = parse_counter_table(val),
                "wall_counters" => art.wall_counters = parse_counter_table(val),
                "results" => {
                    let arr = val.as_array().ok_or("\"results\" is not an array")?;
                    for item in arr {
                        let entry =
                            item.as_object().ok_or("result entry is not an object")?;
                        let mut rec = BenchRecord {
                            name: String::new(),
                            median_ns: 0.0,
                            p10_ns: 0.0,
                            p90_ns: 0.0,
                            iters_per_sample: 0,
                            samples: 0,
                            tolerance: None,
                        };
                        for (k, v) in entry {
                            match k.as_str() {
                                "name" => {
                                    rec.name =
                                        v.as_str().unwrap_or_default().to_string();
                                }
                                "median_ns" => rec.median_ns = v.as_f64().unwrap_or(0.0),
                                "p10_ns" => rec.p10_ns = v.as_f64().unwrap_or(0.0),
                                "p90_ns" => rec.p90_ns = v.as_f64().unwrap_or(0.0),
                                "iters_per_sample" => {
                                    rec.iters_per_sample =
                                        v.as_f64().unwrap_or(0.0) as u64;
                                }
                                "samples" => {
                                    rec.samples = v.as_f64().unwrap_or(0.0) as u64;
                                }
                                "tolerance" => rec.tolerance = v.as_f64(),
                                _ => {}
                            }
                        }
                        if rec.name.is_empty() {
                            return Err("result entry without a name".into());
                        }
                        art.results.push(rec);
                    }
                }
                _ => {}
            }
        }
        Ok(art)
    }
}

fn parse_counter_table(val: &Json) -> Vec<(String, u64)> {
    val.as_object()
        .map(|obj| {
            obj.iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n as u64)))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact() -> BenchArtifact {
        BenchArtifact {
            group: "audit".into(),
            generated_by: "bench_audit".into(),
            threads: 8,
            git: Some("b67b00b-dirty".into()),
            counters: vec![("net.probe.sent".into(), 123)],
            wall_counters: vec![("audit.threads".into(), 8)],
            results: vec![
                BenchRecord {
                    name: "audit/one proxy".into(),
                    median_ns: 127_000.5,
                    p10_ns: 120_000.0,
                    // One decimal place: to_json writes {:.1}, so finer
                    // precision would not survive the round trip.
                    p90_ns: 140_000.2,
                    iters_per_sample: 39,
                    samples: 20,
                    tolerance: Some(0.5),
                },
                BenchRecord {
                    name: "audit/with \"quotes\"".into(),
                    median_ns: 10.0,
                    p10_ns: 9.0,
                    p90_ns: 11.0,
                    iters_per_sample: 1000,
                    samples: 20,
                    tolerance: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let art = sample_artifact();
        let parsed = BenchArtifact::parse(&art.to_json()).unwrap();
        assert_eq!(parsed.group, art.group);
        assert_eq!(parsed.generated_by, art.generated_by);
        assert_eq!(parsed.threads, art.threads);
        assert_eq!(parsed.git, art.git);
        assert_eq!(parsed.counters, art.counters);
        assert_eq!(parsed.wall_counters, art.wall_counters);
        assert_eq!(parsed.results, art.results);
    }

    #[test]
    fn empty_artifact_round_trips() {
        let art = BenchArtifact::default();
        let parsed = BenchArtifact::parse(&art.to_json()).unwrap();
        assert_eq!(parsed, art);
    }

    #[test]
    fn merge_replaces_by_name_and_keeps_committed_tolerance() {
        let mut art = sample_artifact();
        let fresh = vec![
            BenchRecord {
                name: "audit/one proxy".into(),
                median_ns: 99_000.0,
                p10_ns: 98_000.0,
                p90_ns: 100_000.0,
                iters_per_sample: 50,
                samples: 5,
                tolerance: None,
            },
            BenchRecord {
                name: "audit/brand new".into(),
                median_ns: 1.0,
                p10_ns: 1.0,
                p90_ns: 1.0,
                iters_per_sample: 1,
                samples: 2,
                tolerance: None,
            },
        ];
        art.merge_results(&fresh);
        assert_eq!(art.results.len(), 3);
        let one = art.results.iter().find(|r| r.name == "audit/one proxy").unwrap();
        assert_eq!(one.median_ns, 99_000.0);
        // The committed per-entry tolerance survives a re-measure.
        assert_eq!(one.tolerance, Some(0.5));
        assert!(art.results.iter().any(|r| r.name == "audit/brand new"));
    }

    #[test]
    fn parse_tolerates_minimal_hand_written_baselines() {
        let art = BenchArtifact::parse(
            r#"{ "group": "gate",
                 "results": [ { "name": "gate/x", "median_ns": 1500 } ] }"#,
        )
        .unwrap();
        assert_eq!(art.group, "gate");
        assert_eq!(art.threads, 0);
        assert!(art.git.is_none());
        assert_eq!(art.results[0].median_ns, 1500.0);
        assert_eq!(art.results[0].tolerance, None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(BenchArtifact::parse("").is_err());
        assert!(BenchArtifact::parse("{").is_err());
        assert!(BenchArtifact::parse("[1, 2]").is_err());
        assert!(BenchArtifact::parse("{\"results\": [{}]}").is_err());
        assert!(BenchArtifact::parse("{} trailing").is_err());
    }

    #[test]
    fn file_names_are_sanitized() {
        assert_eq!(BenchArtifact::file_name("audit"), "BENCH_audit.json");
        assert_eq!(
            BenchArtifact::file_name("audit one/two"),
            "BENCH_audit_one_two.json"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\there", "back\\slash", "µs"] {
            let parsed = Json::parse(&json_str(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }
}
