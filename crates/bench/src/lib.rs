#![warn(missing_docs)]

//! Shared harness for the figure-regeneration binary and the Criterion
//! benches: study/crowd context builders at three scales, plus small
//! text-rendering helpers (ASCII CDFs, aligned tables).

pub mod artifact;
pub mod figures;
pub mod gate;
pub mod harness;
pub mod render;
pub mod scale;

pub use scale::{build_crowd_context, build_study_context, CrowdContext, Scale, StudyContext};
