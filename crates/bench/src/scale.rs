//! Scale presets and context builders for the figure harness.

use atlas::{CalibrationDb, Constellation, ConstellationConfig, LandmarkServer};
use std::sync::Arc;
use vpnstudy::audit::{Study, StudyResults};
use vpnstudy::crowd::{measure_crowd, synthesize_hosts, CrowdHost, CrowdRecord};
use vpnstudy::StudyConfig;

/// How big a reproduction run to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: CI-sized.
    Small,
    /// A couple of minutes: meaningful shapes, reduced counts.
    Medium,
    /// The paper's full scale (2269 proxies, 250 anchors, 190 crowd
    /// hosts): use `--paper` and a release build.
    Paper,
}

impl Scale {
    /// The study configuration for this scale.
    pub fn study_config(self) -> StudyConfig {
        match self {
            Scale::Small => StudyConfig::small(0x5ca1e),
            Scale::Medium => StudyConfig {
                seed: 0x3ed1,
                grid_resolution_deg: 1.0,
                constellation: ConstellationConfig {
                    seed: 0x3ed1,
                    //                      EU  AF  AS  OC  NA  CA  SA  AU
                    anchors_per_continent: [56, 4, 10, 3, 22, 1, 5, 1],
                    probes_per_continent: [120, 8, 28, 6, 60, 4, 12, 2],
                    port_80_fraction: 0.6,
                },
                calibration_pings: 15,
                attempts_per_landmark: 3,
                self_ping_attempts: 8,
                total_proxies: 500,
                client_location: geokit::GeoPoint::new(50.11, 8.68),
                crowd_volunteers: 15,
                crowd_workers: 55,
                reliability: geoloc::ReliabilityConfig::default(),
                obs_level: obs::Level::Events,
                defense: geoloc::DefenseConfig::default(),
                snapshot_every: 25,
            },
            Scale::Paper => StudyConfig::paper(),
        }
    }
}

/// A built-and-run study (the §6 audit).
pub struct StudyContext {
    /// The study (world, providers, constellation, …).
    pub study: Study,
    /// Its results.
    pub results: StudyResults,
}

/// Build and run the audit at a scale.
pub fn build_study_context(scale: Scale) -> StudyContext {
    let mut study = Study::build(scale.study_config());
    let results = study.run();
    StudyContext { study, results }
}

/// A crowd-validation context (the §5 evaluation): a world with landmarks
/// and crowd hosts, measured via the Web tool.
pub struct CrowdContext {
    /// The world (shared with the constellation and hosts).
    pub world: netsim::WorldNet,
    /// The landmark constellation.
    pub constellation: Constellation,
    /// Anchor-mesh calibration.
    pub calibration: CalibrationDb,
    /// The crowd hosts (placement ground truth included).
    pub hosts: Vec<CrowdHost>,
    /// Two-phase Web-tool measurements per host.
    pub records: Vec<CrowdRecord>,
    /// The configuration used.
    pub config: StudyConfig,
}

impl CrowdContext {
    /// A landmark server over this context (borrows the context).
    pub fn server(&self) -> LandmarkServer<'_> {
        LandmarkServer::new(&self.constellation, &self.calibration, self.world.atlas())
    }

    /// The plausibility mask for predictions.
    pub fn mask(&self) -> geokit::Region {
        self.world.atlas().plausibility_mask().clone()
    }
}

/// Build the crowd-validation world at a scale.
pub fn build_crowd_context(scale: Scale) -> CrowdContext {
    let config = scale.study_config();
    let atlas = Arc::new(worldmap::WorldAtlas::new(geokit::GeoGrid::new(
        config.grid_resolution_deg,
    )));
    let mut world = netsim::WorldNet::build(
        atlas,
        netsim::WorldNetConfig {
            seed: config.seed,
            ..netsim::WorldNetConfig::default()
        },
    );
    let constellation = Constellation::place(&mut world, &config.constellation);
    let calibration =
        CalibrationDb::collect(world.network_mut(), &constellation, config.calibration_pings);
    let hosts = synthesize_hosts(&mut world, &config);
    let records = {
        let atlas = Arc::clone(world.atlas());
        let server = LandmarkServer::new(&constellation, &calibration, &atlas);
        measure_crowd(&mut world, &server, &hosts, &config)
    };
    CrowdContext {
        world,
        constellation,
        calibration,
        hosts,
        records,
        config,
    }
}
