//! Export a small study's OpenMetrics exposition for the CI telemetry
//! gates.
//!
//! ```text
//! metrics_export                  # deterministic subset (byte-diffable)
//! metrics_export --full           # the whole exposition, wall families too
//! metrics_export --check          # self-parse: render → parse → render
//! metrics_export --slo            # evaluate the default SLO ruleset;
//!                                 # exit 1 if any alert fires
//! ```
//!
//! The default mode prints only families registered as deterministic
//! ([`obs::export::deterministic_family`]): `ci.sh` runs it under
//! `PV_THREADS=1` and `8` and fails on any byte difference, extending
//! the determinism gate to the exposition itself. `--check` proves the
//! rendered text round-trips through the in-repo OpenMetrics parser
//! byte-for-byte, and `--slo` is the nonzero-exit alerting mode a
//! release pipeline would gate on.

use vpnstudy::audit::Study;
use vpnstudy::{ops, StudyConfig};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();

    let mut study = Study::build(StudyConfig::small(0xd1ff));
    // Thread/shard shape comes from PV_THREADS / PV_SHARDS, exactly as
    // in determinism_report.
    let results = study.run();
    let set = match ops::study_metrics(&results) {
        Ok(set) => set,
        Err(err) => {
            eprintln!("metrics_export: {err}");
            std::process::exit(1);
        }
    };

    match mode.as_str() {
        "" | "--deterministic" => {
            print!("{}", set.render_filtered(obs::export::deterministic_family));
        }
        "--full" => print!("{}", set.render()),
        "--check" => {
            let text = set.render();
            let parsed = match obs::export::parse_exposition(&text) {
                Ok(p) => p,
                Err(err) => {
                    eprintln!("metrics_export: exposition does not parse: {err}");
                    std::process::exit(1);
                }
            };
            if parsed.render() != text {
                eprintln!("metrics_export: parse → render round-trip drifted");
                std::process::exit(1);
            }
            let problems = set.lint_against_registry();
            if !problems.is_empty() {
                for p in &problems {
                    eprintln!("metrics_export: lint: {p}");
                }
                std::process::exit(1);
            }
            println!(
                "ok: {} families round-trip byte-exact and lint clean",
                set.family_names().len()
            );
        }
        "--slo" => {
            let alerts = ops::evaluate_slos(&set, None);
            if alerts.is_empty() {
                println!("SLO: ok — no alerts fired");
            } else {
                for a in &alerts {
                    println!("{}", a.render_line());
                }
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("usage: metrics_export [--deterministic|--full|--check|--slo] (got {other:?})");
            std::process::exit(2);
        }
    }
}
