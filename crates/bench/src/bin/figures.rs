//! Regenerate the data behind every table and figure in the paper.
//!
//! ```text
//! figures <id>... [--scale small|medium|paper] [--out DIR]
//! figures --all   [--scale ...] [--out DIR]
//! figures --list
//! ```
//!
//! Each figure's regenerated data is printed to stdout (and, with
//! `--out`, written to `DIR/<id>.txt`). See EXPERIMENTS.md for the
//! paper-vs-measured comparison these outputs feed.

use bench::figures;
use bench::{build_crowd_context, build_study_context, CrowdContext, Scale, StudyContext};
use std::io::Write as _;

const FIGURES: &[(&str, &str)] = &[
    ("fig2", "calibration scatter + CBG/Octant/Spotter fits"),
    ("fig3", "landmark + crowd maps (also Fig. 8; Fig. 1 = examples/quickstart)"),
    ("fig4", "CLI vs Web tool, Linux"),
    ("fig5", "Web tool under Windows (+ Fig. 6 high outliers)"),
    ("fig7", "tool semantics: 1 vs 2 round trips"),
    ("fig9", "algorithm comparison CDFs on crowd hosts"),
    ("fig10", "bestline/baseline estimate-to-truth ratios"),
    ("fig11", "measurement effectiveness vs landmark distance"),
    ("fig13", "direct vs indirect RTT (eta)"),
    ("fig14", "VPN market claim survey"),
    ("fig16", "co-location group case study"),
    ("fig17", "overall claim assessment"),
    ("fig18", "honesty over top claimed countries"),
    ("fig19", "per-provider country honesty (wide)"),
    ("fig20", "region size vs nearest landmark"),
    ("fig21", "method agreement comparison"),
    ("fig22", "continent confusion matrix"),
    ("fig23", "country confusion matrix"),
    ("headline", "the paper's headline numbers"),
    ("ablation", "CBG++ design-choice ablations (not a paper figure)"),
    ("faults", "fault sweep: verdicts under loss + outages (not a paper figure)"),
    ("adversary", "adversarial campaign: detection rate vs adversary strength (not a paper figure)"),
    ("trace", "observability trace: probe outcomes, retries, region funnel (not a paper figure)"),
    ("profile", "hierarchical span profile of the audit run, wall-clock (not a paper figure)"),
    ("store", "verdict store: provider trends, country false rates, revalidation queue (not a paper figure)"),
    ("ops", "operational telemetry: SLO dashboard + OpenMetrics/Perfetto/snapshot sidecars (not a paper figure)"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") || args.is_empty() {
        eprintln!("usage: figures <id>... | --all  [--scale small|medium|paper] [--out DIR]");
        for (id, desc) in FIGURES {
            eprintln!("  {id:<10} {desc}");
        }
        return;
    }

    let scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("small") => Scale::Small,
        Some("paper") => Scale::Paper,
        Some("medium") | None => Scale::Medium,
        Some(other) => {
            eprintln!("unknown scale {other}");
            std::process::exit(2);
        }
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let all = args.iter().any(|a| a == "--all");
    let wanted: Vec<&str> = if all {
        FIGURES.iter().map(|&(id, _)| id).collect()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .filter(|a| {
                // skip option values
                let s = a.as_str();
                s != "small" && s != "medium" && s != "paper" && out_dir.as_deref() != Some(s)
            })
            .map(String::as_str)
            .collect()
    };
    if wanted.is_empty() {
        eprintln!("no figures requested; try --all or --list");
        std::process::exit(2);
    }
    for id in &wanted {
        if !FIGURES.iter().any(|&(known, _)| known == *id) {
            eprintln!("unknown figure id {id}; try --list");
            std::process::exit(2);
        }
    }

    // Contexts are expensive; build each lazily, once.
    let mut crowd: Option<CrowdContext> = None;
    let mut study: Option<StudyContext> = None;
    fn crowd_ctx(crowd: &mut Option<CrowdContext>, scale: Scale) -> &mut CrowdContext {
        if crowd.is_none() {
            eprintln!("[figures] building crowd context ({scale:?})…");
            *crowd = Some(build_crowd_context(scale));
        }
        crowd.as_mut().unwrap()
    }
    fn study_ctx(study: &mut Option<StudyContext>, scale: Scale) -> &mut StudyContext {
        if study.is_none() {
            eprintln!("[figures] building + running study ({scale:?})…");
            *study = Some(build_study_context(scale));
        }
        study.as_mut().unwrap()
    }

    for id in wanted {
        eprintln!("[figures] {id}…");
        let text = match id {
            "fig2" => figures::fig2_calibration(crowd_ctx(&mut crowd, scale)),
            "fig3" => figures::fig3_fig8_maps(crowd_ctx(&mut crowd, scale)),
            "fig4" => figures::fig4_tools_linux(crowd_ctx(&mut crowd, scale)),
            "fig5" => figures::fig5_fig6_tools_windows(crowd_ctx(&mut crowd, scale)),
            "fig7" => figures::fig7_tool_semantics(crowd_ctx(&mut crowd, scale)),
            "fig9" => figures::fig9_algorithm_comparison(crowd_ctx(&mut crowd, scale)),
            "fig10" => figures::fig10_estimate_ratios(crowd_ctx(&mut crowd, scale)),
            "fig11" => figures::fig11_effectiveness(crowd_ctx(&mut crowd, scale)),
            "fig13" => figures::fig13_eta(study_ctx(&mut study, scale)),
            "fig14" => figures::fig14_market(study_ctx(&mut study, scale)),
            "fig16" => figures::fig16_colocation_group(study_ctx(&mut study, scale)),
            "fig17" => figures::fig17_overall(study_ctx(&mut study, scale)),
            "fig18" => figures::fig18_provider_country(study_ctx(&mut study, scale)),
            "fig19" => figures::fig19_provider_maps(study_ctx(&mut study, scale)),
            "fig20" => figures::fig20_region_size_vs_landmark(study_ctx(&mut study, scale)),
            "fig21" => figures::fig21_method_comparison(study_ctx(&mut study, scale)),
            "fig22" => figures::fig22_continent_confusion(study_ctx(&mut study, scale)),
            "fig23" => figures::fig23_country_confusion(study_ctx(&mut study, scale)),
            "headline" => figures::headline_numbers(study_ctx(&mut study, scale)),
            "ablation" => figures::ablation_cbgpp(crowd_ctx(&mut crowd, scale)),
            "faults" => figures::fault_sweep(scale),
            "adversary" => figures::adversary_campaign(scale),
            "trace" => figures::trace_observability(study_ctx(&mut study, scale)),
            "profile" => figures::profile_spans(study_ctx(&mut study, scale)),
            "store" => figures::verdict_store(study_ctx(&mut study, scale)),
            "ops" => {
                let bundle = figures::ops_telemetry(study_ctx(&mut study, scale));
                // The exposition, trace, and snapshot stream are
                // machine-readable sidecars, not dashboard text.
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create output dir");
                    for (name, body) in [
                        ("ops.metrics.om", &bundle.metrics),
                        ("ops.trace.json", &bundle.trace),
                        ("ops.snapshots.jsonl", &bundle.snapshots),
                    ] {
                        let path = format!("{dir}/{name}");
                        std::fs::write(&path, body).expect("write ops sidecar");
                        eprintln!("[figures] wrote {path}");
                    }
                }
                bundle.dashboard
            }
            _ => unreachable!("validated above"),
        };
        match &out_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir).expect("create output dir");
                let path = format!("{dir}/{id}.txt");
                std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(text.as_bytes()))
                    .expect("write figure output");
                eprintln!("[figures] wrote {path}");
            }
            None => {
                println!("==================== {id} ====================");
                println!("{text}");
            }
        }
    }
}
