//! Render the audit's deterministic report blocks for the CI
//! determinism gate.
//!
//! `ci.sh` runs this under `PV_THREADS=1`, `8`, and `16`, then again
//! under `PV_SHARDS=2` and `5` crossed with `PV_THREADS=1` and `8`, and
//! fails on any byte difference, proving that neither the parallel
//! audit engine nor the master/worker shard split changes anything the
//! study reports. Everything printed here must therefore be
//! a pure function of the study seed: the perf telemetry block
//! (`render_perf_telemetry`) is absent because it prints wall-clock
//! span timings, but the disk-cache hit/miss/entry counts it draws on
//! are exact under the fill-once cache, so they are printed — and
//! diffed — directly. The observability block, the deterministic half
//! of the progress-snapshot stream, and the full JSONL event trace are
//! included too: per-proxy event buffers and snapshot deltas are merged
//! in proxy order, so they must be byte-identical at any thread count.

use vpnstudy::audit::Study;
use vpnstudy::campaign::{shaping_plan, AdversaryModel};
use vpnstudy::report;
use vpnstudy::StudyConfig;

fn main() {
    let mut study = Study::build(StudyConfig::small(0xd1ff));
    // `Study::run` reads PV_THREADS via `parallel::configured_threads`
    // and PV_SHARDS via `parallel::configured_shards`.
    let results = study.run();
    print!("{}", report::render_overall(&study, &results));
    println!("---");
    print!("{}", report::render_reliability(&results));
    println!("---");
    print!("{}", report::render_fig21(&study, &results));
    println!("---");
    print!("{}", report::render_observability(&results));
    println!("---");
    let cache = results.cache_stats();
    println!(
        "disk cache: {} hits, {} misses, {} entries",
        cache.hits, cache.misses, cache.entries
    );
    println!("---");
    // The deterministic half of each progress snapshot: a pure function
    // of (seed, snapshot_every), so it diffs byte-identically across
    // every shard × thread combination. The wall half (elapsed, ETA,
    // cache hit ratio) is deliberately absent from this rendering.
    print!("{}", results.snapshots_jsonl());
    println!("---");
    print!("{}", results.trace_jsonl());

    // The same gate with the active-adversary layer armed and the
    // Byzantine defense on: holds, selective timeouts, collusion,
    // self-ping inflation, the challenge sweep, and every `defense`
    // event must be just as scheduling-independent as the honest run.
    let mut armed = Study::build(StudyConfig::small(0xd1ff));
    armed.config.defense.enabled = true;
    let (plan, _) = shaping_plan(&armed, AdversaryModel::FullShaping, 0.66);
    *armed.world.network_mut().adversary_mut() = plan;
    let armed_results = armed.run();
    println!("--- armed ---");
    print!("{}", report::render_overall(&armed, &armed_results));
    println!("---");
    print!("{}", report::render_reliability(&armed_results));
    println!("---");
    print!("{}", report::render_observability(&armed_results));
    println!("---");
    print!("{}", armed_results.snapshots_jsonl());
    println!("---");
    print!("{}", armed_results.trace_jsonl());
}
