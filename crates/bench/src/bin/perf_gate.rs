//! CI perf-regression gate.
//!
//! Re-measures the smoke suite in `bench::gate` and compares medians
//! against the committed baseline `bench_output/BENCH_gate.json`:
//!
//! ```text
//! perf_gate                # compare against the committed baseline
//! perf_gate --update       # re-measure and (re)write the baseline
//! perf_gate --self-test    # prove the comparator catches a 2× slip
//! perf_gate --baseline p   # compare against an explicit artifact path
//! ```
//!
//! Exit status is nonzero when any bench regressed past its tolerance or
//! has no baseline entry (run `--update` to record one). Sample counts
//! honor `PV_BENCH_SAMPLES`; the global tolerance honors
//! `PV_PERF_GATE_TOL`.

use bench::artifact::BenchArtifact;
use bench::gate::{
    baseline_from, compare, default_tolerance, doctored_baseline, measure_baseline,
    render_comparisons, smoke_suite, Verdict, GATE_GROUP,
};
use bench::harness::env_sample_override;
use std::process::ExitCode;

/// Samples per bench when `PV_BENCH_SAMPLES` is unset: enough for a
/// stable median, small enough to keep the gate under a minute.
const DEFAULT_SAMPLES: usize = 15;

fn default_baseline_path() -> std::path::PathBuf {
    let dir = std::env::var("BENCH_OUTPUT_DIR").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_output").into()
    });
    std::path::Path::new(&dir).join(BenchArtifact::file_name(GATE_GROUP))
}

fn main() -> ExitCode {
    let mut update = false;
    let mut self_test = false;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--self-test" => self_test = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(p.into()),
                None => {
                    eprintln!("--baseline needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument {other:?} (try --update, --self-test, --baseline <path>)");
                return ExitCode::FAILURE;
            }
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(default_baseline_path);
    let samples = env_sample_override().unwrap_or(DEFAULT_SAMPLES);

    if update {
        // Three passes, keeping each entry's middle median: a single
        // pass is exposed to whole-run machine-state swings, and a
        // baseline caught at an extreme makes every later gate run
        // misread honest noise as regression (or absorb a real one).
        println!("perf gate: measuring baseline (3 passes x {samples} samples per bench)...");
        let centred = measure_baseline(samples, 3);
        let threads = parallel::configured_threads() as u64;
        let art = baseline_from(&centred, threads, git_describe());
        if let Some(dir) = baseline_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&baseline_path, art.to_json()) {
            eprintln!("could not write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("baseline written to {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    println!("perf gate: measuring smoke suite ({samples} samples per bench)...");
    let measured = smoke_suite(samples);

    if self_test {
        // Machine-independent teeth check: against a baseline doctored to
        // half the just-measured medians, every entry must regress.
        let doctored = doctored_baseline(&measured);
        let rows = compare(&doctored, &measured, default_tolerance());
        print!("{}", render_comparisons(&rows));
        let missed: Vec<&str> = rows
            .iter()
            .filter(|c| c.verdict != Verdict::Regressed)
            .map(|c| c.name.as_str())
            .collect();
        if missed.is_empty() {
            println!("self-test OK: a synthetic 2x slowdown trips every gate entry");
            return ExitCode::SUCCESS;
        }
        eprintln!("self-test FAILED: gate did not flag {}", missed.join(", "));
        return ExitCode::FAILURE;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match BenchArtifact::parse(&text) {
            Ok(art) => art,
            Err(e) => {
                eprintln!("could not parse {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!(
                "no baseline at {} ({e}); run `perf_gate --update` to record one",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let rows = compare(&baseline, &measured, default_tolerance());
    print!("{}", render_comparisons(&rows));
    let regressed: Vec<&str> = rows
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .map(|c| c.name.as_str())
        .collect();
    let missing: Vec<&str> = rows
        .iter()
        .filter(|c| c.verdict == Verdict::MissingBaseline)
        .map(|c| c.name.as_str())
        .collect();
    let improved = rows.iter().filter(|c| c.verdict == Verdict::Improved).count();
    if improved > 0 {
        println!(
            "note: {improved} bench(es) improved past tolerance — consider refreshing the baseline with --update"
        );
    }
    if !missing.is_empty() {
        eprintln!(
            "perf gate FAILED: no baseline entry for {} (run --update)",
            missing.join(", ")
        );
    }
    if !regressed.is_empty() {
        eprintln!("perf gate FAILED: regressed past tolerance: {}", regressed.join(", "));
    }
    if regressed.is_empty() && missing.is_empty() {
        println!("perf gate OK: all {} benches within tolerance", rows.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `git describe --always --dirty` at the workspace root, when available.
fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!text.is_empty()).then_some(text)
}
