//! Tiny text-rendering helpers for figure output: ASCII CDF curves,
//! histograms, and aligned numeric tables.

use geokit::stats::Ecdf;
use std::fmt::Write as _;

/// Render an ECDF as `x,F(x)` CSV lines plus a quantile summary.
pub fn render_ecdf(name: &str, values: &[f64], lo: f64, hi: f64, points: usize) -> String {
    let mut out = String::new();
    let ecdf = Ecdf::new(values.to_vec());
    let _ = writeln!(out, "# ECDF {name} (n = {})", ecdf.len());
    for (x, f) in ecdf.curve(lo, hi, points) {
        let _ = writeln!(out, "{x:.3},{f:.4}");
    }
    let _ = writeln!(
        out,
        "# quantiles: p10={:.1} p50={:.1} p90={:.1} p97={:.1}",
        ecdf.quantile(0.10).unwrap_or(f64::NAN),
        ecdf.quantile(0.50).unwrap_or(f64::NAN),
        ecdf.quantile(0.90).unwrap_or(f64::NAN),
        ecdf.quantile(0.97).unwrap_or(f64::NAN),
    );
    out
}

/// Render a histogram over fixed-width bins as `lo..hi: count` lines with
/// a proportional bar.
pub fn render_histogram(name: &str, values: &[f64], lo: f64, hi: f64, bins: usize) -> String {
    assert!(bins > 0 && hi > lo, "bad histogram spec");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    let mut clipped = 0usize;
    for &v in values {
        if v < lo || v >= hi {
            clipped += 1;
            continue;
        }
        counts[((v - lo) / width) as usize] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "# histogram {name} (n = {}, clipped = {clipped})", values.len());
    for (i, &c) in counts.iter().enumerate() {
        let bar = "#".repeat(c * 50 / max);
        let _ = writeln!(
            out,
            "{:>10.2} .. {:>10.2} | {c:>6} {bar}",
            lo + width * i as f64,
            lo + width * (i + 1) as f64
        );
    }
    out
}

/// Render an x/y scatter as CSV (for plotting outside).
pub fn render_scatter(name: &str, header: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# scatter {name} (n = {})", points.len());
    let _ = writeln!(out, "{header}");
    for &(x, y) in points {
        let _ = writeln!(out, "{x:.3},{y:.3}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_renders_quantiles() {
        let s = render_ecdf("test", &[1.0, 2.0, 3.0, 4.0], 0.0, 5.0, 6);
        assert!(s.contains("# ECDF test (n = 4)"));
        assert!(s.contains("p50="));
    }

    #[test]
    fn histogram_counts_and_clips() {
        let s = render_histogram("h", &[0.5, 1.5, 1.6, 99.0], 0.0, 2.0, 2);
        assert!(s.contains("clipped = 1"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn scatter_is_csv() {
        let s = render_scatter("s", "x,y", &[(1.0, 2.0)]);
        assert!(s.contains("1.000,2.000"));
    }
}
