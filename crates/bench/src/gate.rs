//! The CI perf-regression gate: a fast smoke subset of the benches,
//! re-measured and compared against a committed baseline artifact.
//!
//! The gate's job is to catch *large accidental regressions* (an
//! algorithmic slip that doubles the cost of disk intersection, a cache
//! that stops hitting) without turning CI red on machine noise. Hence:
//!
//! * the smoke suite is tiny and dominated by the hot kernels the paper
//!   pipeline actually spends its time in (cap rasterization, disk
//!   intersection, the counting sweep, disk-cache lookups, and one full
//!   single-proxy audit);
//! * only **medians** are compared, with a generous relative tolerance —
//!   the default is ±30 % ([`DEFAULT_TOLERANCE`]), overridable globally
//!   via the `PV_PERF_GATE_TOL` environment variable and per entry via
//!   the `tolerance` field in the baseline JSON;
//! * sample counts honor `PV_BENCH_SAMPLES`
//!   ([`crate::harness::env_sample_override`]), so CI can run the gate
//!   in a couple of seconds.
//!
//! The baseline lives in `bench_output/BENCH_gate.json` and is refreshed
//! with `perf_gate --update` on the machine that defines the baseline.
//! `perf_gate --self-test` proves the comparator has teeth by doctoring
//! the freshly measured medians down 2× and checking that every entry
//! trips the gate — machine-independent, so it runs in CI.

use crate::artifact::{BenchArtifact, BenchRecord};
use crate::harness::{run_sampled, Sampled};
use crate::{build_study_context, Scale};
use geokit::{GeoGrid, GeoPoint, Region, SphericalCap};
use geoloc::algorithms::CbgPlusPlus;
use geoloc::assess::assess_claim;
use geoloc::multilateration::{
    intersect_constraints, max_consistent_subset, pairwise_infeasible_flags,
    robust_max_consistent_subset, DiskCache, RingConstraint,
};
use geoloc::proxy::ProxyContext;
use geoloc::twophase::{run_two_phase, ProxyProber};
use geoloc::Geolocator;
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::hint::black_box;

/// Relative median growth allowed before an entry counts as regressed,
/// when neither the baseline entry nor `PV_PERF_GATE_TOL` says otherwise.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// The group name the gate's benches and baseline artifact live under.
pub const GATE_GROUP: &str = "gate";

/// The effective global tolerance: `PV_PERF_GATE_TOL` when parseable and
/// positive, [`DEFAULT_TOLERANCE`] otherwise.
pub fn default_tolerance() -> f64 {
    std::env::var("PV_PERF_GATE_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| *t > 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// Per-entry tolerances written by `perf_gate --update`. The audit entry
/// runs a whole simulated measurement pipeline whose cost moves with the
/// study RNG and allocator behaviour, and the cache-hit entry measures
/// tens of nanoseconds where scheduling jitter alone is a double-digit
/// percentage — both get looser budgets than the default.
pub fn suite_tolerance(name: &str) -> Option<f64> {
    match name {
        "gate/audit_one_proxy" => Some(0.60),
        "gate/cache_hit" => Some(0.50),
        // Like cache_hit: a hash-map lookup measured in tens of
        // nanoseconds, where scheduling jitter is a large fraction.
        "gate/verdict_query" => Some(0.50),
        // Dominated by string formatting and allocation, which moves
        // with allocator state more than with the code under test.
        "gate/metrics_export" => Some(0.50),
        _ => None,
    }
}

/// Three honest disks around a European target on `grid`.
fn gate_disks(grid_res: f64) -> (Vec<RingConstraint>, Region) {
    let target = GeoPoint::new(48.0, 11.0);
    let constraints = (0..3)
        .map(|i| {
            let lm = target.destination(120.0 * f64::from(i), 900.0);
            RingConstraint::disk(lm, 1100.0)
        })
        .collect();
    (constraints, Region::full(GeoGrid::new(grid_res)))
}

/// A constraint set whose full intersection is empty (two far-apart
/// tight disks), forcing `max_consistent_subset` off the fast path and
/// into the counting sweep.
fn inconsistent_disks() -> (Vec<RingConstraint>, Region) {
    let europe = GeoPoint::new(48.0, 11.0);
    let pacific = GeoPoint::new(-20.0, -150.0);
    let mut constraints: Vec<RingConstraint> = (0..4)
        .map(|i| {
            let lm = europe.destination(90.0 * f64::from(i), 700.0);
            RingConstraint::disk(lm, 900.0)
        })
        .collect();
    constraints.push(RingConstraint::disk(pacific, 500.0));
    (constraints, Region::full(GeoGrid::new(1.0)))
}

/// A Byzantine constraint set: eight honest disks around a European
/// target plus two deflated colluder disks that pairwise-conflict with
/// them, exercising the defense's full flag-then-trim path.
fn byzantine_disks() -> (Vec<RingConstraint>, Region) {
    let target = GeoPoint::new(48.0, 11.0);
    let mut constraints: Vec<RingConstraint> = (0..8)
        .map(|i| {
            let lm = target.destination(45.0 * f64::from(i), 1_200.0);
            RingConstraint::disk(lm, 1_500.0)
        })
        .collect();
    for i in 0..2 {
        let lm = target.destination(60.0 + 180.0 * f64::from(i), 7_000.0);
        constraints.push(RingConstraint::disk(lm, 400.0));
    }
    (constraints, Region::full(GeoGrid::new(1.0)))
}

/// Measure the gate's smoke suite at `samples` samples per bench.
/// Expensive setup (the small study world) happens once, outside the
/// timed loops.
pub fn smoke_suite(samples: usize) -> Vec<Sampled> {
    let mut out = Vec::new();

    let grid = GeoGrid::new(1.0);
    out.push(run_sampled("gate/cap_raster", samples, |b| {
        let cap = SphericalCap::new(GeoPoint::new(48.0, 11.0), 800.0);
        b.iter(|| Region::from_cap(black_box(&grid), black_box(&cap)))
    }));

    let (disks, mask) = gate_disks(1.0);
    out.push(run_sampled("gate/disk_intersect", samples, |b| {
        b.iter(|| intersect_constraints(black_box(&disks), black_box(&mask)))
    }));

    let (bad, bad_mask) = inconsistent_disks();
    out.push(run_sampled("gate/counting_sweep", samples, |b| {
        b.iter(|| max_consistent_subset(black_box(&bad), black_box(&bad_mask)))
    }));

    let (mixed, mixed_mask) = byzantine_disks();
    out.push(run_sampled("gate/robust_subset", samples, |b| {
        b.iter(|| {
            let report = pairwise_infeasible_flags(black_box(&mixed));
            robust_max_consistent_subset(
                black_box(&mixed),
                &report.flagged,
                black_box(&mixed_mask),
                None,
                None,
            )
        })
    }));

    let cache = DiskCache::new(GeoGrid::new(1.0));
    out.push(run_sampled("gate/cache_hit", samples, |b| {
        let lm = GeoPoint::new(48.0, 11.0);
        // Rotate through a handful of radii so the steady state is
        // all-hits over a few keys — the lookup path, not rasterization.
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let radius = 600.0 + 200.0 * (i % 4) as f64;
            black_box(cache.disk(&lm, radius))
        })
    }));

    // The batched phase-1 path: the audit builds one LandmarkServer per
    // run and shares it across every proxy, so the phase-1 anchor set,
    // the per-landmark continent table, and the calibration-anchor
    // mapping are precomputed here instead of per proxy. This entry
    // keeps that precompute honest — it must stay cheap enough that
    // "build once" is never worth undoing.
    let mut ctx = build_study_context(Scale::Small);
    out.push(run_sampled("gate/phase1_server_build", samples, |b| {
        b.iter(|| {
            black_box(atlas::LandmarkServer::new(
                black_box(&ctx.study.constellation),
                black_box(&ctx.study.calibration),
                ctx.study.world.atlas(),
            ))
        })
    }));

    let proxy = ctx.study.providers.proxies[0].clone();
    let client = ctx.study.client;
    let atlas = std::sync::Arc::clone(ctx.study.world.atlas());
    let study_mask = ctx.study.mask.clone();
    // One server for every iteration, mirroring the audit (which builds
    // one per run and shares it across proxies) — the per-iteration cost
    // here is what one additional proxy actually costs the study.
    let server =
        atlas::LandmarkServer::new(&ctx.study.constellation, &ctx.study.calibration, &atlas);
    out.push(run_sampled("gate/audit_one_proxy", samples, |b| {
        b.iter(|| {
            let proxy_ctx = ProxyContext::establish(
                ctx.study.world.network_mut(),
                client,
                proxy.node,
                0.5,
                4,
            )
            .expect("tunnel up");
            let mut prober = ProxyProber::new(proxy_ctx, 2);
            let mut rng = StdRng::seed_from_u64(7);
            let two_phase =
                run_two_phase(ctx.study.world.network_mut(), &server, &mut prober, &mut rng)
                    .expect("measured");
            let prediction = CbgPlusPlus.locate(&two_phase.observations, &study_mask);
            black_box(assess_claim(&atlas, &prediction.region, proxy.claimed))
        })
    }));

    // The verdict-store query path: answering "what was this proxy's
    // last verdict and is it still fresh?" from the in-memory index of
    // an opened store. The store exists so this stays cheap relative to
    // re-measurement (one proxy audit above is the thing it avoids);
    // the gate keeps the gap honest.
    let store_path = std::env::temp_dir().join(format!(
        "pv-gate-store-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&store_path);
    let mut store = vpnstudy::VerdictStore::open(&store_path).expect("open gate store");
    store
        .append_epoch(&ctx.results, 1_700_000_000_000)
        .expect("populate gate store");
    let nodes: Vec<_> = ctx.results.records.iter().map(|r| r.proxy.node).collect();
    out.push(run_sampled("gate/verdict_query", samples, |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % nodes.len();
            black_box(store.lookup(nodes[i], 1_700_000_100_000, 86_400_000))
        })
    }));
    let _ = std::fs::remove_file(&store_path);

    // The telemetry export path: mapping a finished run's recorder into
    // the OpenMetrics exposition and rendering the text. An operator
    // scrapes this once per epoch; the gate keeps it cheap enough that
    // exporting never competes with measuring.
    out.push(run_sampled("gate/metrics_export", samples, |b| {
        b.iter(|| {
            let set = vpnstudy::ops::study_metrics(black_box(&ctx.results))
                .expect("every study counter is registered");
            black_box(set.render())
        })
    }));

    out
}

/// Measure the smoke suite `passes` times and keep, per bench, the
/// middle of the per-pass medians. A single pass is exposed to whole-run
/// machine-state swings (frequency scaling, cache pressure from a
/// sibling job); the median of several passes centres the committed
/// baseline so the gate's tolerance band covers the real spread.
pub fn measure_baseline(samples: usize, passes: usize) -> Vec<Sampled> {
    let mut runs: Vec<Vec<Sampled>> =
        (0..passes.max(1)).map(|_| smoke_suite(samples)).collect();
    let mut out = runs.remove(0);
    for (i, s) in out.iter_mut().enumerate() {
        let mut medians: Vec<f64> = std::iter::once(s.median_ns)
            .chain(runs.iter().map(|r| r[i].median_ns))
            .collect();
        medians.sort_by(f64::total_cmp);
        s.median_ns = medians[medians.len() / 2];
    }
    out
}

/// How one measured bench fared against the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline median.
    Pass,
    /// Median shrank past the tolerance — worth refreshing the baseline.
    Improved,
    /// Median grew past the tolerance.
    Regressed,
    /// The baseline has no entry under this name.
    MissingBaseline,
}

/// One row of the gate's comparison report.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Bench identifier.
    pub name: String,
    /// Committed baseline median (ns), when present.
    pub baseline_ns: Option<f64>,
    /// Freshly measured median (ns).
    pub measured_ns: f64,
    /// Relative tolerance applied to this entry.
    pub tolerance: f64,
    /// The outcome.
    pub verdict: Verdict,
}

impl Comparison {
    /// `measured / baseline`, when a baseline exists and is positive.
    pub fn ratio(&self) -> Option<f64> {
        self.baseline_ns
            .filter(|&b| b > 0.0)
            .map(|b| self.measured_ns / b)
    }
}

/// Compare measured medians against the baseline artifact. Every
/// measured bench yields exactly one [`Comparison`]; baseline entries
/// that were not re-measured are ignored (the smoke suite may be a
/// subset of what `--update` recorded).
pub fn compare(
    baseline: &BenchArtifact,
    measured: &[Sampled],
    global_tolerance: f64,
) -> Vec<Comparison> {
    measured
        .iter()
        .map(|s| {
            let entry = baseline.results.iter().find(|r| r.name == s.name);
            let tolerance = entry
                .and_then(|r| r.tolerance)
                .unwrap_or(global_tolerance);
            let (baseline_ns, verdict) = match entry {
                None => (None, Verdict::MissingBaseline),
                Some(r) if r.median_ns <= 0.0 => (Some(r.median_ns), Verdict::MissingBaseline),
                Some(r) => {
                    let ratio = s.median_ns / r.median_ns;
                    let verdict = if ratio > 1.0 + tolerance {
                        Verdict::Regressed
                    } else if ratio < 1.0 - tolerance {
                        Verdict::Improved
                    } else {
                        Verdict::Pass
                    };
                    (Some(r.median_ns), verdict)
                }
            };
            Comparison {
                name: s.name.clone(),
                baseline_ns,
                measured_ns: s.median_ns,
                tolerance,
                verdict,
            }
        })
        .collect()
}

/// Render the comparison as an aligned text table, one row per bench.
pub fn render_comparisons(rows: &[Comparison]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for c in rows {
        let baseline = c
            .baseline_ns
            .map(|b| format!("{b:.0} ns"))
            .unwrap_or_else(|| "(none)".into());
        let ratio = c
            .ratio()
            .map(|r| format!("{r:+.0}%", r = (r - 1.0) * 100.0))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<28} baseline {:>12}  measured {:>10.0} ns  delta {:>6}  tol ±{:.0}%  {:?}",
            c.name,
            baseline,
            c.measured_ns,
            ratio,
            c.tolerance * 100.0,
            c.verdict,
        );
    }
    out
}

/// Build the baseline artifact `--update` writes: the measured suite
/// with the per-entry tolerances from [`suite_tolerance`] attached.
pub fn baseline_from(measured: &[Sampled], threads: u64, git: Option<String>) -> BenchArtifact {
    BenchArtifact {
        group: GATE_GROUP.to_string(),
        generated_by: "perf_gate".to_string(),
        threads,
        git,
        counters: Vec::new(),
        wall_counters: Vec::new(),
        results: measured
            .iter()
            .map(|s| {
                let mut rec = BenchRecord::from(s);
                rec.tolerance = suite_tolerance(&s.name);
                rec
            })
            .collect(),
    }
}

/// A copy of the measured suite with every median halved: a synthetic
/// "the past was 2× faster" baseline. Comparing the real measurements
/// against it must flag **every** entry as regressed — that is the
/// gate's self-test, and it holds on any machine because both sides of
/// the comparison come from the same run.
pub fn doctored_baseline(measured: &[Sampled]) -> BenchArtifact {
    let mut art = baseline_from(measured, 0, None);
    for rec in &mut art.results {
        rec.median_ns /= 2.0;
        // Halving is a 2× ratio; keep budgets below 100 % so even the
        // loose audit entry must trip.
        rec.tolerance = rec.tolerance.filter(|t| *t < 1.0);
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampled(name: &str, median: f64) -> Sampled {
        Sampled {
            name: name.into(),
            median_ns: median,
            p10_ns: median,
            p90_ns: median,
            iters_per_sample: 1,
            samples: 3,
        }
    }

    fn baseline(entries: &[(&str, f64, Option<f64>)]) -> BenchArtifact {
        BenchArtifact {
            group: GATE_GROUP.into(),
            results: entries
                .iter()
                .map(|(name, median, tol)| BenchRecord {
                    name: (*name).into(),
                    median_ns: *median,
                    p10_ns: *median,
                    p90_ns: *median,
                    iters_per_sample: 1,
                    samples: 3,
                    tolerance: *tol,
                })
                .collect(),
            ..BenchArtifact::default()
        }
    }

    #[test]
    fn within_tolerance_passes_and_2x_regression_is_caught() {
        let base = baseline(&[("gate/a", 1000.0, None), ("gate/b", 1000.0, None)]);
        let measured = [sampled("gate/a", 1100.0), sampled("gate/b", 2000.0)];
        let rows = compare(&base, &measured, 0.30);
        assert_eq!(rows[0].verdict, Verdict::Pass);
        assert_eq!(rows[1].verdict, Verdict::Regressed);
        assert!((rows[1].ratio().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_entry_tolerance_overrides_the_global_default() {
        // +50 % fails at the global 30 % but passes a per-entry 60 %.
        let strict = baseline(&[("gate/a", 1000.0, None)]);
        let loose = baseline(&[("gate/a", 1000.0, Some(0.60))]);
        let measured = [sampled("gate/a", 1500.0)];
        assert_eq!(compare(&strict, &measured, 0.30)[0].verdict, Verdict::Regressed);
        assert_eq!(compare(&loose, &measured, 0.30)[0].verdict, Verdict::Pass);
    }

    #[test]
    fn missing_and_nonpositive_baselines_are_flagged() {
        let base = baseline(&[("gate/zero", 0.0, None)]);
        let measured = [sampled("gate/zero", 10.0), sampled("gate/new", 10.0)];
        let rows = compare(&base, &measured, 0.30);
        assert_eq!(rows[0].verdict, Verdict::MissingBaseline);
        assert_eq!(rows[1].verdict, Verdict::MissingBaseline);
        assert!(rows[1].ratio().is_none());
    }

    #[test]
    fn large_improvements_are_reported_not_failed() {
        let base = baseline(&[("gate/a", 1000.0, None)]);
        let rows = compare(&base, &[sampled("gate/a", 500.0)], 0.30);
        assert_eq!(rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn doctored_baseline_trips_every_entry() {
        let measured = [
            sampled("gate/a", 1000.0),
            sampled("gate/audit_one_proxy", 5000.0),
        ];
        let doctored = doctored_baseline(&measured);
        let rows = compare(&doctored, &measured, default_tolerance());
        assert!(rows.iter().all(|c| c.verdict == Verdict::Regressed));
    }

    #[test]
    fn smoke_suite_measures_every_gate_bench() {
        let suite = smoke_suite(2);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "gate/cap_raster",
                "gate/disk_intersect",
                "gate/counting_sweep",
                "gate/robust_subset",
                "gate/cache_hit",
                "gate/phase1_server_build",
                "gate/audit_one_proxy",
                "gate/verdict_query",
                "gate/metrics_export",
            ]
        );
        assert!(suite.iter().all(|s| s.median_ns > 0.0));
    }

    #[test]
    fn render_names_each_row() {
        let base = baseline(&[("gate/a", 1000.0, None)]);
        let rows = compare(&base, &[sampled("gate/a", 2000.0)], 0.30);
        let text = render_comparisons(&rows);
        assert!(text.contains("gate/a"));
        assert!(text.contains("Regressed"));
        assert!(text.contains("+100%"));
    }
}
