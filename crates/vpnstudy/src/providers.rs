//! The seven VPN providers under audit and their server deployments.
//!
//! Provider profiles follow Fig. 14: A–E are among the 20 broadest
//! claimers (A advertises servers in nearly every sovereign state,
//! "including implausible locations such as North Korea, Vatican City,
//! and Pitcairn Island", §1); F and G make "more modest and typical
//! claims". Ground truth follows §1/§6: servers concentrate "in countries
//! where server hosting is cheap and reliable (e.g. Czech Republic,
//! Germany, Netherlands, UK, USA)", and claims in hosting-hostile
//! countries are almost always false.
//!
//! Deployment details that the disambiguation analysis depends on:
//! servers placed in the same data-center city by the same provider share
//! an AS and a /24 (Fig. 16), and roughly 10 % of servers answer direct
//! pings (§5.3's η estimation set) while the rest filter ICMP (§4.2).

use crate::config::StudyConfig;
use geokit::sampling;
use geokit::GeoPoint;
use netsim::{FilterPolicy, NodeId, WorldNet};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};
use worldmap::market::{claim_popularity_order, MarketSurvey};
use worldmap::{CountryId, WorldAtlas};

/// Static profile of one provider.
#[derive(Debug, Clone)]
pub struct ProviderProfile {
    /// Letter name, as the paper anonymizes them.
    pub name: char,
    /// Rank in the 157-provider market survey (0 = broadest claimer).
    pub market_rank: usize,
    /// Share of the study's proxies operated by this provider.
    pub share: f64,
    /// Probability that a *feasible* claim is honoured (the provider
    /// really operates hardware in the claimed country).
    pub honesty: f64,
    /// Probability that a dishonest server is at least placed on the
    /// claimed country's continent.
    pub same_continent_bias: f64,
}

/// The paper's seven providers.
///
/// A claims everything and is "especially misleading" (§8); B–E are broad
/// claimers of varying honesty ("C and E are actually hosting servers in
/// more than one country of South America, whereas providers A and B just
/// say they are"); F and G are modest.
pub fn paper_providers() -> Vec<ProviderProfile> {
    vec![
        ProviderProfile { name: 'A', market_rank: 0, share: 0.22, honesty: 0.35, same_continent_bias: 0.35 },
        ProviderProfile { name: 'B', market_rank: 3, share: 0.18, honesty: 0.42, same_continent_bias: 0.40 },
        ProviderProfile { name: 'C', market_rank: 7, share: 0.16, honesty: 0.66, same_continent_bias: 0.65 },
        ProviderProfile { name: 'D', market_rank: 10, share: 0.14, honesty: 0.72, same_continent_bias: 0.60 },
        ProviderProfile { name: 'E', market_rank: 15, share: 0.12, honesty: 0.56, same_continent_bias: 0.70 },
        ProviderProfile { name: 'F', market_rank: 45, share: 0.10, honesty: 0.80, same_continent_bias: 0.70 },
        ProviderProfile { name: 'G', market_rank: 70, share: 0.08, honesty: 0.86, same_continent_bias: 0.75 },
    ]
}

/// Minimum hosting score for a country to physically host a server.
pub const HOSTING_FEASIBILITY_THRESHOLD: f64 = 0.15;

/// One deployed proxy server (ground truth + metadata).
#[derive(Debug, Clone)]
pub struct DeployedProxy {
    /// Network node of the server.
    pub node: NodeId,
    /// Index into the provider list.
    pub provider: usize,
    /// Country the provider claims for this server.
    pub claimed: CountryId,
    /// Country the server is actually in (ground truth).
    pub true_country: CountryId,
    /// Exact location (ground truth).
    pub true_location: GeoPoint,
    /// Same-rack group: (provider, true-country, hub index). Servers with
    /// equal keys share an AS and a /24.
    pub group_key: (usize, CountryId, usize),
    /// Whether this server answers direct ICMP pings (~10 %).
    pub pingable: bool,
    /// The server's first-hop gateway router (§4.2: ~90 % of these are
    /// invisible to ping and traceroute).
    pub gateway: NodeId,
}

/// The deployed provider fleet.
#[derive(Debug)]
pub struct ProviderSet {
    /// Profiles, indexed by `DeployedProxy::provider`.
    pub profiles: Vec<ProviderProfile>,
    /// Per-provider claimed-country sets.
    pub claims: Vec<Vec<CountryId>>,
    /// All deployed proxies.
    pub proxies: Vec<DeployedProxy>,
}

impl ProviderSet {
    /// Generate claims, choose true placements, and attach every server
    /// to the network.
    pub fn deploy(world: &mut WorldNet, survey: &MarketSurvey, config: &StudyConfig) -> ProviderSet {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xdeb107);
        let profiles = paper_providers();
        let atlas = std::sync::Arc::clone(world.atlas());
        let popularity = claim_popularity_order(&atlas);

        // Hosting havens for dishonest placement, weighted by hosting²
        // (concentration: "providers seem to prefer to concentrate their
        // hosts in a few locations", §6).
        let havens: Vec<(CountryId, f64)> = atlas
            .countries()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.hosting() >= 0.55)
            .map(|(id, c)| (id, c.hosting() * c.hosting()))
            .collect();

        let mut claims = Vec::with_capacity(profiles.len());
        let mut proxies: Vec<DeployedProxy> = Vec::new();

        for (pidx, profile) in profiles.iter().enumerate() {
            let claimed_set = survey.providers()[profile.market_rank].claimed.clone();
            let n_servers =
                ((config.total_proxies as f64) * profile.share).round().max(1.0) as usize;

            // Allocate servers to claimed countries: popular countries get
            // multiple servers, the long tail one each (cycled).
            let mut by_popularity: Vec<CountryId> = popularity
                .iter()
                .copied()
                .filter(|c| claimed_set.binary_search(c).is_ok())
                .collect();
            if by_popularity.is_empty() {
                by_popularity = claimed_set.clone();
            }
            let mut assignments: Vec<CountryId> = Vec::with_capacity(n_servers);
            // 55 % of servers across the 10 most popular claims…
            let head = (n_servers * 55 / 100).max(1);
            for k in 0..head {
                assignments.push(by_popularity[k % by_popularity.len().min(10)]);
            }
            // …the rest cycle through the whole claim set.
            for k in 0..(n_servers - head) {
                assignments.push(by_popularity[k % by_popularity.len()]);
            }

            for claimed in assignments {
                let claimed_country = atlas.country(claimed);
                let feasible = claimed_country.hosting() >= HOSTING_FEASIBILITY_THRESHOLD;
                let honest = feasible && sampling::coin(&mut rng, profile.honesty);
                let true_country = if honest {
                    claimed
                } else {
                    // Prefer a haven on the claimed continent when the
                    // provider cares about appearances.
                    let same_continent: Vec<(CountryId, f64)> = havens
                        .iter()
                        .copied()
                        .filter(|&(id, _)| {
                            atlas.country(id).continent() == claimed_country.continent()
                        })
                        .collect();
                    let pool = if !same_continent.is_empty()
                        && sampling::coin(&mut rng, profile.same_continent_bias)
                    {
                        &same_continent
                    } else {
                        &havens
                    };
                    let weights: Vec<f64> = pool.iter().map(|&(_, w)| w).collect();
                    pool[sampling::weighted_index(&mut rng, &weights)].0
                };

                // Physical placement: at one of the true country's hubs
                // (data centers live at hubs).
                let hubs = atlas.country(true_country).hubs();
                let hub_weights: Vec<f64> = hubs.iter().map(|h| h.weight).collect();
                let hub_idx = sampling::weighted_index(&mut rng, &hub_weights);
                let hub = &hubs[hub_idx];
                let true_location = GeoPoint::new(
                    hub.lat + rng.random_range(-0.08..0.08),
                    hub.lon + rng.random_range(-0.08..0.08),
                );

                let pingable = sampling::coin(&mut rng, 0.10);
                let mut policy = FilterPolicy::vpn_server();
                policy.drop_icmp_echo = !pingable;
                // §4.2: ~90 % of tunnel gateways are dark — no echo
                // replies, no time-exceeded — so traceroute loses the
                // trail one hop before the server.
                let gateway_dark = sampling::coin(&mut rng, 0.90);
                let gateway_policy = FilterPolicy {
                    drop_icmp_echo: gateway_dark,
                    drop_time_exceeded: gateway_dark,
                    ..FilterPolicy::default()
                };
                let (node, gateway) =
                    world.attach_host_via_gateway(true_location, policy, gateway_policy);

                proxies.push(DeployedProxy {
                    node,
                    provider: pidx,
                    claimed,
                    true_country,
                    true_location,
                    group_key: (pidx, true_country, hub_idx),
                    pingable,
                    gateway,
                });
            }
            claims.push(claimed_set);
        }

        // Metadata: per group, one AS and one /24.
        assign_network_metadata(world, &mut proxies);

        ProviderSet {
            profiles,
            claims,
            proxies,
        }
    }

    /// Ground-truth honesty rate (fraction of proxies whose true country
    /// equals the claim) — used by tests and the DESIGN targets, never by
    /// the measurement pipeline.
    pub fn ground_truth_honesty(&self) -> f64 {
        if self.proxies.is_empty() {
            return 0.0;
        }
        let honest = self
            .proxies
            .iter()
            .filter(|p| p.claimed == p.true_country)
            .count();
        honest as f64 / self.proxies.len() as f64
    }

    /// Group proxies by their co-location key (provider + AS + /24).
    pub fn colocation_groups(&self) -> Vec<Vec<usize>> {
        let mut sorted: Vec<usize> = (0..self.proxies.len()).collect();
        sorted.sort_by_key(|&i| self.proxies[i].group_key);
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for idx in sorted {
            match groups.last_mut() {
                Some(g)
                    if self.proxies[g[0]].group_key == self.proxies[idx].group_key =>
                {
                    g.push(idx)
                }
                _ => groups.push(vec![idx]),
            }
        }
        groups
    }
}

/// Give every co-location group a distinct AS and /24; hosts within a
/// group get sequential addresses in it.
fn assign_network_metadata(world: &mut WorldNet, proxies: &mut [DeployedProxy]) {
    let mut order: Vec<usize> = (0..proxies.len()).collect();
    order.sort_by_key(|&i| proxies[i].group_key);
    let mut group_no: u32 = 0;
    let mut last_key = None;
    let mut host_no: u32 = 0;
    for idx in order {
        let key = proxies[idx].group_key;
        if last_key != Some(key) {
            group_no += 1;
            host_no = 0;
            last_key = Some(key);
        }
        host_no += 1;
        let topo = world.network_mut().topology_mut();
        let node = topo.node_mut(proxies[idx].node);
        node.as_number = 60_000 + group_no;
        node.ip = (10u32 << 24) | (group_no << 8) | (host_no & 0xff);
    }
}

/// Helper: atlas lookup of where the study's havens are (for reporting).
pub fn haven_iso_codes(atlas: &WorldAtlas) -> Vec<&'static str> {
    atlas
        .countries()
        .iter()
        .filter(|c| c.hosting() >= 0.55)
        .map(|c| c.iso2())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geokit::GeoGrid;
    use netsim::WorldNetConfig;
    use std::sync::{Arc, OnceLock};
    use worldmap::Continent;

    struct Fixture {
        world: WorldNet,
        set: ProviderSet,
    }

    fn fixture() -> &'static Fixture {
        static S: OnceLock<Fixture> = OnceLock::new();
        S.get_or_init(|| {
            let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(1.0)));
            let survey = MarketSurvey::generate(&atlas, 1807);
            let mut world = WorldNet::build(atlas, WorldNetConfig::default());
            let config = StudyConfig {
                total_proxies: 400,
                ..StudyConfig::small(33)
            };
            let set = ProviderSet::deploy(&mut world, &survey, &config);
            Fixture { world, set }
        })
    }

    #[test]
    fn deploys_roughly_requested_count() {
        let f = fixture();
        let n = f.set.proxies.len();
        assert!((380..=420).contains(&n), "deployed {n}");
        assert_eq!(f.set.profiles.len(), 7);
    }

    #[test]
    fn provider_a_claims_most() {
        let f = fixture();
        let counts: Vec<usize> = f.set.claims.iter().map(Vec::len).collect();
        assert!(counts[0] > 180, "A claims {}", counts[0]);
        assert!(counts[6] < counts[0] / 2, "G should claim far less than A");
    }

    #[test]
    fn dishonest_servers_live_in_havens() {
        let f = fixture();
        let atlas = f.world.atlas();
        for p in &f.set.proxies {
            if p.claimed != p.true_country {
                assert!(
                    atlas.country(p.true_country).hosting() >= 0.55,
                    "dishonest server in non-haven {}",
                    atlas.country(p.true_country).iso2()
                );
            }
        }
    }

    #[test]
    fn infeasible_claims_are_never_honoured() {
        let f = fixture();
        let atlas = f.world.atlas();
        for p in &f.set.proxies {
            if atlas.country(p.claimed).hosting() < HOSTING_FEASIBILITY_THRESHOLD {
                assert_ne!(
                    p.claimed, p.true_country,
                    "server honestly placed in hosting-hostile {}",
                    atlas.country(p.claimed).iso2()
                );
            }
        }
    }

    #[test]
    fn overall_honesty_is_paper_like() {
        // Headline: at least a third of servers are NOT where claimed;
        // at most ~70 % could be where claimed.
        let f = fixture();
        let h = f.set.ground_truth_honesty();
        assert!((0.30..=0.70).contains(&h), "ground-truth honesty {h}");
    }

    #[test]
    fn groups_share_as_and_slash24() {
        let f = fixture();
        let topo = f.world.network().topology();
        for group in f.set.colocation_groups() {
            let first = &f.set.proxies[group[0]];
            let as0 = topo.node(first.node).as_number;
            let net0 = topo.node(first.node).ip >> 8;
            for &i in &group {
                let p = &f.set.proxies[i];
                assert_eq!(topo.node(p.node).as_number, as0);
                assert_eq!(topo.node(p.node).ip >> 8, net0);
                assert_eq!(p.true_country, first.true_country);
            }
        }
    }

    #[test]
    fn distinct_groups_have_distinct_slash24() {
        let f = fixture();
        let topo = f.world.network().topology();
        let groups = f.set.colocation_groups();
        let mut nets: Vec<u32> = groups
            .iter()
            .map(|g| topo.node(f.set.proxies[g[0]].node).ip >> 8)
            .collect();
        nets.sort_unstable();
        let n = nets.len();
        nets.dedup();
        assert_eq!(nets.len(), n, "duplicate /24 across groups");
    }

    #[test]
    fn about_ten_percent_pingable() {
        let f = fixture();
        let pingable = f.set.proxies.iter().filter(|p| p.pingable).count();
        let frac = pingable as f64 / f.set.proxies.len() as f64;
        assert!((0.04..0.20).contains(&frac), "pingable fraction {frac}");
    }

    #[test]
    fn same_continent_bias_shows_up() {
        // Among dishonest placements, a visible share stays on the
        // claimed continent (the paper's "462 of the uncertain addresses
        // … on the same continent").
        let f = fixture();
        let atlas = f.world.atlas();
        let (mut same, mut total) = (0usize, 0usize);
        for p in &f.set.proxies {
            if p.claimed != p.true_country {
                total += 1;
                if atlas.country(p.claimed).continent()
                    == atlas.country(p.true_country).continent()
                {
                    same += 1;
                }
            }
        }
        assert!(total > 50);
        let frac = same as f64 / total as f64;
        assert!(frac > 0.2, "same-continent fraction {frac}");
    }

    #[test]
    fn european_dishonest_servers_prefer_europe() {
        let f = fixture();
        let atlas = f.world.atlas();
        let mut eu_claims_in_eu = 0;
        let mut eu_claims = 0;
        for p in &f.set.proxies {
            if p.claimed != p.true_country
                && atlas.country(p.claimed).continent() == Continent::Europe
            {
                eu_claims += 1;
                if atlas.country(p.true_country).continent() == Continent::Europe {
                    eu_claims_in_eu += 1;
                }
            }
        }
        if eu_claims > 20 {
            let frac = f64::from(eu_claims_in_eu) / f64::from(eu_claims);
            assert!(frac > 0.4, "EU relocation fraction {frac}");
        }
    }
}
