//! Test-bench VPN validation (§8.1).
//!
//! "In order to understand the errors added to our position estimates by
//! the indirect measurement procedure described in Section 5.3, we are
//! planning to set up test-bench VPN servers of our own, in known
//! locations worldwide, and attempt to measure their locations both
//! directly and indirectly."
//!
//! We *can* do that: deploy cooperative VPN servers at known locations,
//! locate each one twice — **directly** (the server measures its own RTTs
//! to the landmarks, like a crowd host running the CLI tool) and
//! **indirectly** (a remote client measures through the server's tunnel
//! with the η self-ping correction) — and compare the predictions.

use crate::config::StudyConfig;
use atlas::LandmarkServer;
use geokit::{GeoPoint, Region};
use geoloc::proxy::ProxyContext;
use geoloc::twophase::{run_two_phase, CliProber, ProxyProber};
use geoloc::Geolocator;
use netsim::{FilterPolicy, NodeId, WorldNet};
use simrng::rngs::StdRng;
use simrng::SeedableRng;

/// One test-bench server's paired measurement outcome.
#[derive(Debug)]
pub struct TestbenchComparison {
    /// Where the server really is (we put it there).
    pub location: GeoPoint,
    /// Prediction from direct (on-host) measurement.
    pub direct: Region,
    /// Prediction from indirect (through-tunnel) measurement.
    pub indirect: Region,
}

impl TestbenchComparison {
    /// Centroid error of a region vs the true location, km.
    fn centroid_err(region: &Region, truth: &GeoPoint) -> Option<f64> {
        region.centroid().map(|c| c.distance_km(truth))
    }

    /// Direct-measurement centroid error, km.
    pub fn direct_err_km(&self) -> Option<f64> {
        Self::centroid_err(&self.direct, &self.location)
    }

    /// Indirect-measurement centroid error, km.
    pub fn indirect_err_km(&self) -> Option<f64> {
        Self::centroid_err(&self.indirect, &self.location)
    }
}

/// Deploy test-bench servers at `locations` and locate each one both
/// ways. Servers are cooperative: they answer pings and run the
/// measurement tool themselves for the direct pass, and serve a VPN
/// tunnel for the indirect pass.
#[allow(clippy::too_many_arguments)]
pub fn run_testbench(
    world: &mut WorldNet,
    server: &LandmarkServer<'_>,
    locator: &dyn Geolocator,
    mask: &Region,
    locations: &[GeoPoint],
    client: NodeId,
    config: &StudyConfig,
    seed: u64,
) -> Vec<TestbenchComparison> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(locations.len());
    for &location in locations {
        // A cooperative server: default policy (pingable, measurable).
        let node = world.attach_host(location, FilterPolicy::default());

        // Direct: the server measures landmarks itself.
        let mut direct_prober = CliProber {
            client: node,
            attempts: config.attempts_per_landmark,
        };
        let Some(direct_run) =
            run_two_phase(world.network_mut(), server, &mut direct_prober, &mut rng)
        else {
            continue;
        };
        let direct = locator.locate(&direct_run.observations, mask).region;

        // Indirect: the remote client measures through the tunnel.
        let Some(ctx) = ProxyContext::establish(
            world.network_mut(),
            client,
            node,
            0.5,
            config.self_ping_attempts,
        ) else {
            continue;
        };
        let mut indirect_prober = ProxyProber::new(ctx, config.attempts_per_landmark);
        let Some(indirect_run) =
            run_two_phase(world.network_mut(), server, &mut indirect_prober, &mut rng)
        else {
            continue;
        };
        let indirect = locator.locate(&indirect_run.observations, mask).region;

        out.push(TestbenchComparison {
            location,
            direct,
            indirect,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::{CalibrationDb, Constellation};
    use geoloc::algorithms::CbgPlusPlus;
    use std::sync::Arc;
    use worldmap::WorldAtlas;

    #[test]
    fn indirect_errors_are_modest_multiples_of_direct() {
        let config = StudyConfig::small(777);
        let atlas = Arc::new(WorldAtlas::new(geokit::GeoGrid::new(
            config.grid_resolution_deg,
        )));
        let mut world = WorldNet::build(
            Arc::clone(&atlas),
            netsim::WorldNetConfig {
                seed: config.seed,
                ..Default::default()
            },
        );
        let constellation = Constellation::place(&mut world, &config.constellation);
        let calibration = CalibrationDb::collect(
            world.network_mut(),
            &constellation,
            config.calibration_pings,
        );
        let client = world.attach_host(config.client_location, FilterPolicy::default());
        let locations = [
            GeoPoint::new(52.37, 4.90),   // Amsterdam
            GeoPoint::new(40.71, -74.01), // New York
            GeoPoint::new(1.35, 103.82),  // Singapore
            GeoPoint::new(-33.87, 151.21),// Sydney
        ];
        let comparisons = {
            let server = LandmarkServer::new(&constellation, &calibration, &atlas);
            let mask = atlas.plausibility_mask().clone();
            run_testbench(
                &mut world,
                &server,
                &CbgPlusPlus,
                &mask,
                &locations,
                client,
                &config,
                42,
            )
        };
        assert_eq!(comparisons.len(), locations.len());
        let mut direct_misses = Vec::new();
        for c in &comparisons {
            assert!(!c.direct.is_empty());
            assert!(!c.indirect.is_empty());
            let direct_miss = c.direct.distance_from_km(&c.location).unwrap();
            let indirect_miss = c.indirect.distance_from_km(&c.location).unwrap();
            direct_misses.push(direct_miss);
            // The point of the test bench: tunnelling + η correction adds
            // little on top of whatever the direct measurement achieves.
            assert!(
                indirect_miss <= direct_miss + 400.0,
                "tunnel correction degraded {}: direct {direct_miss:.0} km, indirect {indirect_miss:.0} km",
                c.location
            );
            let (d, i) = (
                c.direct_err_km().unwrap(),
                c.indirect_err_km().unwrap(),
            );
            assert!(
                i < d * 4.0 + 500.0,
                "indirect centroid error {i:.0} km vs direct {d:.0} km at {}",
                c.location
            );
        }
        // Typical direct accuracy is sub-cell; sparse-landmark regions
        // (Sydney, with two Australian landmarks in the small
        // constellation) can miss by several hundred km — the paper's
        // landmark-geometry caveat (§4).
        let median = geokit::stats::median(&direct_misses).unwrap();
        assert!(median < 250.0, "median direct miss {median:.0} km");
    }
}
