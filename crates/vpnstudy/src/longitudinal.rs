//! Longitudinal auditing (§8.1).
//!
//! "This will also allow us to repeat the measurements over time, and
//! report on whether providers become more or less honest as the wider
//! ecosystem changes."
//!
//! Each epoch the providers *churn*: a fraction of servers is retired and
//! re-deployed against the same claim, with the provider's honesty
//! drifting epoch over epoch (a provider under public scrutiny may clean
//! up; a provider chasing margins may consolidate further into havens).
//! The audit re-runs per epoch against the evolving fleet, producing the
//! honesty-over-time series the paper wanted to publish.

use crate::audit::{Study, StudyResults};
use crate::providers::{DeployedProxy, HOSTING_FEASIBILITY_THRESHOLD};
use geokit::sampling;
use geokit::GeoPoint;
use netsim::FilterPolicy;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

/// Per-epoch churn parameters.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Fraction of each provider's servers replaced per epoch.
    pub turnover: f64,
    /// Additive drift applied to each provider's honesty per epoch
    /// (positive = cleaning up, negative = consolidating). One entry per
    /// provider; shorter vectors repeat their last element.
    pub honesty_drift: Vec<f64>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            turnover: 0.25,
            // A cleans up under scrutiny; B keeps sliding; the rest hold.
            honesty_drift: vec![0.15, -0.08, 0.0, 0.0, 0.0, 0.0, 0.0],
        }
    }
}

/// One epoch's summary.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch number (0 = the initial audit).
    pub epoch: usize,
    /// (credible, uncertain, false) refined counts.
    pub counts: (usize, usize, usize),
    /// Ground-truth honesty of the fleet at this epoch (evaluation only).
    pub true_honesty: f64,
    /// Ground-truth honesty per provider (evaluation only).
    pub provider_true_honesty: Vec<f64>,
    /// Measured per-provider strict agreement.
    pub provider_agreement: Vec<f64>,
}

/// Run `epochs` audits with churn in between. Returns one report per
/// epoch, including the initial state.
pub fn run_longitudinal(
    study: &mut Study,
    epochs: usize,
    churn: &ChurnConfig,
) -> Vec<EpochReport> {
    let mut rng = StdRng::seed_from_u64(study.config.seed ^ 0x10e6);
    let mut honesty: Vec<f64> = study
        .providers
        .profiles
        .iter()
        .map(|p| p.honesty)
        .collect();
    let mut reports = Vec::with_capacity(epochs + 1);

    for epoch in 0..=epochs {
        if epoch > 0 {
            // Drift provider honesty…
            for (i, h) in honesty.iter_mut().enumerate() {
                let drift = churn
                    .honesty_drift
                    .get(i)
                    .or(churn.honesty_drift.last())
                    .copied()
                    .unwrap_or(0.0);
                *h = (*h + drift).clamp(0.02, 0.98);
            }
            // …and churn the fleet.
            churn_fleet(study, &honesty, churn.turnover, &mut rng);
        }
        let results: StudyResults = study.run();
        let provider_agreement = (0..study.providers.profiles.len())
            .map(|p| results.cbgpp_agreement(p, false))
            .collect();
        let provider_true_honesty = (0..study.providers.profiles.len())
            .map(|pidx| {
                let (honest, total) = study
                    .providers
                    .proxies
                    .iter()
                    .filter(|p| p.provider == pidx)
                    .fold((0usize, 0usize), |(h, t), p| {
                        (h + usize::from(p.claimed == p.true_country), t + 1)
                    });
                honest as f64 / total.max(1) as f64
            })
            .collect();
        reports.push(EpochReport {
            epoch,
            counts: results.counts(true),
            true_honesty: study.providers.ground_truth_honesty(),
            provider_true_honesty,
            provider_agreement,
        });
    }
    reports
}

/// Replace a fraction of each provider's servers: same claim, fresh
/// placement under the provider's *current* honesty.
fn churn_fleet(study: &mut Study, honesty: &[f64], turnover: f64, rng: &mut StdRng) {
    let atlas = std::sync::Arc::clone(study.world.atlas());
    let havens: Vec<(usize, f64)> = atlas
        .countries()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.hosting() >= 0.55)
        .map(|(id, c)| (id, c.hosting() * c.hosting()))
        .collect();
    let haven_weights: Vec<f64> = havens.iter().map(|&(_, w)| w).collect();

    let n = study.providers.proxies.len();
    for i in 0..n {
        if !sampling::coin(rng, turnover) {
            continue;
        }
        let old: DeployedProxy = study.providers.proxies[i].clone();
        let profile = &study.providers.profiles[old.provider];
        let claimed_country = atlas.country(old.claimed);
        let feasible = claimed_country.hosting() >= HOSTING_FEASIBILITY_THRESHOLD;
        let honest = feasible && sampling::coin(rng, honesty[old.provider]);
        let true_country = if honest {
            old.claimed
        } else {
            let same_continent: Vec<(usize, f64)> = havens
                .iter()
                .copied()
                .filter(|&(id, _)| {
                    atlas.country(id).continent() == claimed_country.continent()
                })
                .collect();
            if !same_continent.is_empty()
                && sampling::coin(rng, profile.same_continent_bias)
            {
                let w: Vec<f64> = same_continent.iter().map(|&(_, x)| x).collect();
                same_continent[sampling::weighted_index(rng, &w)].0
            } else {
                havens[sampling::weighted_index(rng, &haven_weights)].0
            }
        };
        let hubs = atlas.country(true_country).hubs();
        let hub_weights: Vec<f64> = hubs.iter().map(|h| h.weight).collect();
        let hub_idx = sampling::weighted_index(rng, &hub_weights);
        let hub = &hubs[hub_idx];
        let true_location = GeoPoint::new(
            hub.lat + rng.random_range(-0.08..0.08),
            hub.lon + rng.random_range(-0.08..0.08),
        );
        let pingable = sampling::coin(rng, 0.10);
        let mut policy = FilterPolicy::vpn_server();
        policy.drop_icmp_echo = !pingable;
        let gateway_dark = sampling::coin(rng, 0.90);
        let gateway_policy = FilterPolicy {
            drop_icmp_echo: gateway_dark,
            drop_time_exceeded: gateway_dark,
            ..FilterPolicy::default()
        };
        let (node, gateway) =
            study
                .world
                .attach_host_via_gateway(true_location, policy, gateway_policy);
        study.providers.proxies[i] = DeployedProxy {
            node,
            provider: old.provider,
            claimed: old.claimed,
            true_country,
            true_location,
            group_key: (old.provider, true_country, hub_idx),
            pingable,
            gateway,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;

    #[test]
    fn honesty_trend_is_visible_in_the_audit() {
        let mut study = Study::build(StudyConfig {
            total_proxies: 80,
            ..StudyConfig::small(2)
        });
        let churn = ChurnConfig {
            turnover: 0.5,
            // Provider A cleans up aggressively; B degrades.
            honesty_drift: vec![0.25, -0.15, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        let reports = run_longitudinal(&mut study, 2, &churn);
        assert_eq!(reports.len(), 3);

        // Ground truth must drift per provider in the configured
        // direction: A (drift +0.25/epoch at 50 % turnover) gets
        // substantially cleaner.
        let a_honesty_first = reports[0].provider_true_honesty[0];
        let a_honesty_last = reports.last().unwrap().provider_true_honesty[0];
        assert!(
            a_honesty_last > a_honesty_first + 0.10,
            "provider A's true honesty should rise: {a_honesty_first:.2} → {a_honesty_last:.2}"
        );

        // And the *measured* per-provider agreement tracks it: A's strict
        // agreement should improve from epoch 0 to the final epoch.
        let a_first = reports[0].provider_agreement[0];
        let a_last = reports.last().unwrap().provider_agreement[0];
        assert!(
            a_last > a_first - 0.05,
            "provider A's measured agreement should not fall: {a_first} → {a_last}"
        );

        // Counts partition the fleet each epoch.
        for r in &reports {
            let (c, u, f) = r.counts;
            assert!(c + u + f > 0);
        }
    }

    #[test]
    fn zero_turnover_keeps_the_fleet() {
        let mut study = Study::build(StudyConfig {
            total_proxies: 40,
            ..StudyConfig::small(617)
        });
        let before: Vec<u32> = study.providers.proxies.iter().map(|p| p.node).collect();
        let churn = ChurnConfig {
            turnover: 0.0,
            honesty_drift: vec![0.0],
        };
        let _ = run_longitudinal(&mut study, 1, &churn);
        let after: Vec<u32> = study.providers.proxies.iter().map(|p| p.node).collect();
        assert_eq!(before, after);
    }
}
