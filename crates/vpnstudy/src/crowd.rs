//! The crowdsourced validation cohort (§5, Figs. 8–9).
//!
//! 40 volunteers and 150 Mechanical Turk workers in known locations ran
//! the Web measurement tool; "like the RIPE anchors, the majority are in
//! Europe and North America, but we have enough contributors elsewhere
//! for statistics" (Fig. 8). Most used Windows, which matters: the Web
//! tool's noise regime is what separates the algorithms in Fig. 9.
//!
//! Each synthetic host runs the two-phase procedure with the Web prober;
//! the resulting observation sets are fed to *all* algorithms under test,
//! so the comparison is paired.

use crate::config::StudyConfig;
use atlas::{Browser, LandmarkServer, MeasurementOs, WebTool};
use geokit::{sampling, GeoPoint};
use geoloc::twophase::{run_two_phase, WebProber};
use geoloc::Observation;
use netsim::{FilterPolicy, NodeId, WorldNet};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};
use worldmap::{Continent, CountryId};

/// One crowdsourced host in a known location.
#[derive(Debug, Clone)]
pub struct CrowdHost {
    /// Network node.
    pub node: NodeId,
    /// Self-reported location (ground truth for validation; the paper's
    /// volunteers rounded to ~10 km, which is far below grid resolution).
    pub true_location: GeoPoint,
    /// Country of the host.
    pub country: CountryId,
    /// Volunteer (mailing lists) vs paid MTurk worker.
    pub is_volunteer: bool,
    /// Operating system running the Web tool.
    pub os: MeasurementOs,
    /// Browser running the Web tool.
    pub browser: Browser,
}

/// A measured crowd host: the validation input for Fig. 9.
#[derive(Debug)]
pub struct CrowdRecord {
    /// The host.
    pub host: CrowdHost,
    /// Continent inferred in phase 1.
    pub continent: Continent,
    /// The two-phase observation set.
    pub observations: Vec<Observation>,
}

/// Continent weights (ALL order: EU, AF, AS, OC, NA, CA, SA, AU).
const VOLUNTEER_WEIGHTS: [f64; 8] = [0.45, 0.03, 0.10, 0.04, 0.30, 0.02, 0.05, 0.01];
const WORKER_WEIGHTS: [f64; 8] = [0.20, 0.05, 0.25, 0.04, 0.35, 0.02, 0.08, 0.01];

/// Synthesize and attach the crowd hosts.
pub fn synthesize_hosts(world: &mut WorldNet, config: &StudyConfig) -> Vec<CrowdHost> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc0ffee);
    let mut hosts = Vec::new();
    let atlas = std::sync::Arc::clone(world.atlas());
    for i in 0..(config.crowd_volunteers + config.crowd_workers) {
        let is_volunteer = i < config.crowd_volunteers;
        let weights = if is_volunteer {
            &VOLUNTEER_WEIGHTS
        } else {
            &WORKER_WEIGHTS
        };
        let continent = Continent::ALL[sampling::weighted_index(&mut rng, weights)];
        let candidates: Vec<(CountryId, f64)> = atlas
            .countries()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.continent() == continent)
            .map(|(id, c)| (id, c.hosting() + 0.05))
            .collect();
        let cw: Vec<f64> = candidates.iter().map(|&(_, w)| w).collect();
        let country = candidates[sampling::weighted_index(&mut rng, &cw)].0;
        let true_location = atlas.sample_point_in_country(country, 150.0, &mut rng);
        // Volunteers: half Linux; workers: mostly Windows (§5: "most of
        // our crowdsourced contributors used the web application under
        // Windows").
        let windows_p = if is_volunteer { 0.5 } else { 0.85 };
        let os = if sampling::coin(&mut rng, windows_p) {
            MeasurementOs::Windows
        } else {
            MeasurementOs::Linux
        };
        let browser = Browser::ALL[rng.random_range(0..Browser::ALL.len())];
        let node = world.attach_host(true_location, FilterPolicy::default());
        hosts.push(CrowdHost {
            node,
            true_location,
            country,
            is_volunteer,
            os,
            browser,
        });
    }
    hosts
}

/// Run the two-phase Web measurement for every host.
pub fn measure_crowd(
    world: &mut WorldNet,
    server: &LandmarkServer<'_>,
    hosts: &[CrowdHost],
    config: &StudyConfig,
) -> Vec<CrowdRecord> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xc201d);
    let mut records = Vec::new();
    for host in hosts {
        let mut prober = WebProber {
            client: host.node,
            tool: WebTool {
                os: host.os,
                browser: host.browser,
            },
            attempts: config.attempts_per_landmark,
            rng: StdRng::seed_from_u64(rng.random()),
        };
        let Some(result) = run_two_phase(world.network_mut(), server, &mut prober, &mut rng)
        else {
            continue;
        };
        records.push(CrowdRecord {
            host: host.clone(),
            continent: result.continent,
            observations: result.observations,
        });
    }
    records
}


#[cfg(test)]
mod tests {
    use super::*;
    use atlas::{CalibrationDb, Constellation, ConstellationConfig};
    use geokit::GeoGrid;
    use netsim::WorldNetConfig;
    use std::sync::{Arc, Mutex, OnceLock};
    use worldmap::WorldAtlas;

    struct Fixture {
        world: WorldNet,
        constellation: Constellation,
        calibration: CalibrationDb,
        hosts: Vec<CrowdHost>,
        records: Vec<CrowdRecord>,
    }

    fn fixture() -> &'static Mutex<Fixture> {
        static S: OnceLock<Mutex<Fixture>> = OnceLock::new();
        S.get_or_init(|| {
            let config = StudyConfig::small(7);
            let atlas = Arc::new(WorldAtlas::new(GeoGrid::new(
                config.grid_resolution_deg,
            )));
            let mut world = WorldNet::build(
                atlas,
                WorldNetConfig {
                    seed: config.seed,
                    ..WorldNetConfig::default()
                },
            );
            let constellation =
                Constellation::place(&mut world, &ConstellationConfig::small(config.seed));
            let calibration = CalibrationDb::collect(
                world.network_mut(),
                &constellation,
                config.calibration_pings,
            );
            let hosts = synthesize_hosts(&mut world, &config);
            let records = {
                let atlas = Arc::clone(world.atlas());
                let server = LandmarkServer::new(&constellation, &calibration, &atlas);
                measure_crowd(&mut world, &server, &hosts, &config)
            };
            Mutex::new(Fixture {
                world,
                constellation,
                calibration,
                hosts,
                records,
            })
        })
    }

    #[test]
    fn cohort_size_and_split() {
        let f = fixture().lock().unwrap();
        assert_eq!(f.hosts.len(), 20);
        assert_eq!(f.hosts.iter().filter(|h| h.is_volunteer).count(), 6);
        let _ = (&f.constellation, &f.calibration);
    }

    #[test]
    fn most_hosts_get_measured() {
        let f = fixture().lock().unwrap();
        assert!(
            f.records.len() >= f.hosts.len() * 8 / 10,
            "only {} of {} measured",
            f.records.len(),
            f.hosts.len()
        );
        for r in &f.records {
            assert!(!r.observations.is_empty());
        }
    }

    #[test]
    fn windows_dominates_workers() {
        let f = fixture().lock().unwrap();
        let workers: Vec<_> = f.hosts.iter().filter(|h| !h.is_volunteer).collect();
        let windows = workers
            .iter()
            .filter(|h| h.os == MeasurementOs::Windows)
            .count();
        assert!(windows * 2 > workers.len(), "windows {windows}/{}", workers.len());
    }

    #[test]
    fn continent_guesses_are_mostly_right() {
        let f = fixture().lock().unwrap();
        let atlas = f.world.atlas();
        let right = f
            .records
            .iter()
            .filter(|r| atlas.country(r.host.country).continent() == r.continent)
            .count();
        // Continent boundaries are network-blurry (Mexico answers from
        // North American landmarks, the Maghreb from Europe), so the
        // guess only needs to be right for a solid majority.
        assert!(
            right * 10 >= f.records.len() * 6,
            "only {right}/{} continent guesses correct",
            f.records.len()
        );
    }
}
