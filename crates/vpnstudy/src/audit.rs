//! The full §6 audit: build the world, deploy the providers, measure
//! every proxy through its tunnel, locate it with CBG++, and judge every
//! country claim.

use crate::config::StudyConfig;
use crate::providers::{DeployedProxy, ProviderSet};
use atlas::{CalibrationDb, Constellation, LandmarkServer};
use geokit::{GeoGrid, GeoPoint, Region};
use geoloc::algorithms::CbgPlusPlus;
use geoloc::assess::{assess_claim, Assessment, ClaimVerdict, ContinentVerdict};
use geoloc::defense::{run_defense, DefenseReport, TunnelPings};
use geoloc::disambiguate::{by_data_centers, by_touched_sets, Disambiguation};
use geoloc::iclab::{IclabChecker, IclabVerdict};
use geoloc::multilateration::{DiskCache, DiskCacheStats};
use geoloc::proxy::{estimate_eta, EtaEstimate, ProxyContext, DEFAULT_ETA};
use geoloc::reliability::{MeasurementDiagnostics, ProbeScheduler};
use geoloc::observation::Observation;
use geoloc::twophase::{run_two_phase_reliable, MeasurementStatus, ProxyProber, RttProber};
use netsim::{FilterPolicy, Network, NodeId, SimDuration, WorldNet, WorldNetConfig};
use obs::snapshot::{
    ProgressSink, ProgressSnapshot, ProxyOutcome as SnapshotOutcome, ProxyStat, SnapshotBuilder,
    WallProgress,
};
use obs::Recorder;
use simrng::rngs::StdRng;
use simrng::SeedableRng;
use std::sync::Arc;
use worldmap::market::MarketSurvey;
use worldmap::{Continent, CountryId, DataCenterRegistry, WorldAtlas};

/// Everything the audit measured and concluded about one proxy.
#[derive(Debug)]
pub struct ProxyRecord {
    /// The deployed proxy (ground truth included for evaluation; the
    /// measurement pipeline never reads it).
    pub proxy: DeployedProxy,
    /// Continent inferred in phase 1.
    pub continent_guess: Continent,
    /// The raw CBG++ verdict on the provider's claim.
    pub verdict: ClaimVerdict,
    /// The verdict after data-center and co-location disambiguation.
    pub refined: ClaimVerdict,
    /// Data-center resolution of the prediction region, if unique.
    pub dc_country: Option<CountryId>,
    /// Prediction-region area, km².
    pub region_area_km2: f64,
    /// Prediction-region centroid.
    pub centroid: Option<GeoPoint>,
    /// Lightweight copies of the observations: (landmark, one-way ms).
    pub observations: Vec<(GeoPoint, f64)>,
    /// Minimum tunnel self-ping, ms.
    pub self_ping_ms: f64,
    /// ICLab checker verdict for the claim.
    pub iclab: IclabVerdict,
    /// What the measurement cost: attempts, retries, timeouts, dead
    /// landmarks, quorum degradation.
    pub diagnostics: MeasurementDiagnostics,
    /// What the Byzantine-defense layer found, when the study ran with
    /// [`DefenseConfig::enabled`](geoloc::DefenseConfig). `None` when
    /// the defense is off (the default).
    pub defense: Option<DefenseReport>,
}

/// Why a proxy produced no [`ProxyRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureFailure {
    /// Nothing answered: no tunnel, or no landmark at all.
    Unmeasurable,
    /// Some landmarks answered, but fewer than the configured minimum —
    /// too thin to back a verdict.
    InsufficientData,
}

/// A proxy the audit could not credibly measure, with the evidence of
/// how hard it tried. The paper's pipeline must never *silently* shrink
/// its denominator: every input proxy ends up either in `records` or
/// here.
#[derive(Debug)]
pub struct UnmeasuredProxy {
    /// The proxy in question.
    pub proxy: DeployedProxy,
    /// Which way the measurement fell short.
    pub failure: MeasureFailure,
    /// What was attempted before giving up.
    pub diagnostics: MeasurementDiagnostics,
}

/// The built study, ready to run.
pub struct Study {
    /// Configuration it was built from.
    pub config: StudyConfig,
    /// The simulated world (network + atlas).
    pub world: WorldNet,
    /// The landmark constellation.
    pub constellation: Constellation,
    /// Anchor-mesh calibration.
    pub calibration: CalibrationDb,
    /// The provider fleet.
    pub providers: ProviderSet,
    /// Data-center registry for disambiguation.
    pub registry: DataCenterRegistry,
    /// The market survey (Fig. 14 context).
    pub survey: MarketSurvey,
    /// The measurement client (Frankfurt).
    pub client: NodeId,
    /// Plausibility mask for predictions.
    pub mask: Region,
    /// Progress sinks the audit master drives at snapshot intervals
    /// (registered via [`Study::add_progress_sink`], drained into the
    /// next run).
    progress_sinks: Vec<Box<dyn ProgressSink>>,
}

/// Results of a full audit run.
pub struct StudyResults {
    /// One record per successfully measured proxy.
    pub records: Vec<ProxyRecord>,
    /// The η estimate used for tunnel-leg correction.
    pub eta: Option<EtaEstimate>,
    /// Proxies that could not be measured, with explicit verdicts and
    /// diagnostics (`records.len() + failures.len()` equals the number
    /// of proxies deployed).
    pub failures: Vec<UnmeasuredProxy>,
    /// Count of unmeasured proxies (`failures.len()`, kept as a plain
    /// number for quick summaries).
    pub unmeasured: usize,
    /// The study's observability recorder: per-proxy event buffers
    /// merged in proxy order (deterministic for any thread count), plus
    /// the wall-clock compartment (timing spans and run-shape tallies
    /// like the thread count) that must never enter a determinism diff.
    /// The disk-cache hit/miss split also lives there for reporting, but
    /// since the fill-once cache it is exact and thread-invariant.
    pub obs: Recorder,
    /// Worker count the audit actually ran with.
    pub threads: usize,
    /// Shard count the audit master fanned out over (1 for the
    /// monolithic path). Wall-side bookkeeping only: the deterministic
    /// output is byte-identical for every value.
    pub shards: usize,
    /// Progress snapshots emitted during the run, one every
    /// [`StudyConfig::snapshot_every`] proxies plus a final one. The
    /// deterministic compartment of each snapshot is a pure function of
    /// the study seed ([`StudyResults::snapshots_jsonl`] is what the
    /// determinism gates diff); the wall compartment is back-filled at
    /// merge time and stays out of every diff.
    pub snapshots: Vec<ProgressSnapshot>,
    /// Per-shard final gauges (wall-side: the split itself is invisible
    /// to the deterministic output, so anything keyed by shard id is
    /// operational telemetry only).
    pub shard_progress: Vec<ShardProgress>,
}

/// Final per-shard progress gauges, captured at merge time. Everything
/// here is wall-compartment telemetry: shard boundaries are a run-shape
/// choice, so per-shard numbers must never enter a determinism diff.
#[derive(Debug, Clone, Copy)]
pub struct ShardProgress {
    /// The shard's index in the plan.
    pub shard_id: usize,
    /// Proxies the shard audited (records + failures).
    pub proxies_done: u64,
    /// Probes the shard's proxies sent.
    pub probes_sent: u64,
    /// Retries the shard's reliability layer scheduled.
    pub retries: u64,
    /// Hit ratio of the shard's private fill-once disk cache.
    pub cache_hit_ratio: f64,
    /// Fraction of the shard's range finished (1.0 after a completed
    /// run; the field exists so a live sink sees the same shape).
    pub progress_ratio: f64,
}

impl Study {
    /// Build the world, constellation, calibration, and provider fleet.
    pub fn build(config: StudyConfig) -> Study {
        let grid = GeoGrid::new(config.grid_resolution_deg);
        let atlas = Arc::new(WorldAtlas::new(grid));
        let registry = DataCenterRegistry::from_atlas(&atlas);
        let survey = MarketSurvey::generate(&atlas, config.seed ^ 0x5a1e5);
        let mut world = WorldNet::build(
            Arc::clone(&atlas),
            WorldNetConfig {
                seed: config.seed,
                ..WorldNetConfig::default()
            },
        );
        let constellation = Constellation::place(&mut world, &config.constellation);
        let calibration =
            CalibrationDb::collect(world.network_mut(), &constellation, config.calibration_pings);
        let providers = ProviderSet::deploy(&mut world, &survey, &config);
        let client = world.attach_host(config.client_location, FilterPolicy::default());
        let mask = atlas.plausibility_mask().clone();
        Study {
            config,
            world,
            constellation,
            calibration,
            providers,
            registry,
            survey,
            client,
            mask,
            progress_sinks: Vec::new(),
        }
    }

    /// Register a progress sink for the next run. Sinks receive every
    /// [`ProgressSnapshot`] in `seq` order (wall compartment filled) and
    /// are drained by the run that consumes them.
    pub fn add_progress_sink(&mut self, sink: Box<dyn ProgressSink>) {
        self.progress_sinks.push(sink);
    }

    /// Run the audit over every deployed proxy, on
    /// [`parallel::configured_shards`] shards ×
    /// [`parallel::configured_threads`] workers (`PV_SHARDS` and
    /// `PV_THREADS` pin the counts; results are byte-identical for any
    /// combination — see [`run_sharded`](Study::run_sharded)).
    pub fn run(&mut self) -> StudyResults {
        self.run_sharded(parallel::configured_shards(), parallel::configured_threads())
    }

    /// Run the audit with an explicit worker count on a single shard —
    /// the monolithic path, kept as the reference the sharded runs are
    /// byte-diffed against.
    pub fn run_with_threads(&mut self, threads: usize) -> StudyResults {
        self.run_sharded(1, threads)
    }

    /// Run the audit as `shard_count` independent shards on `threads`
    /// total workers, then merge.
    ///
    /// **The determinism contract, lifted one level:** any shard count ×
    /// any thread count is byte-identical to the monolithic
    /// (1-shard, 1-thread) run. The master shards the proxy universe by
    /// pure `(seed, shard_id, shard_count)` arithmetic
    /// ([`plan_shards`]); each shard worker gets its own
    /// [`Network::fork`] lineage, a [`Recorder`] forked from the
    /// master's, its own disk cache, and measures its contiguous slice
    /// of proxies; [`StudyResults::merge`] reassembles shard outputs in
    /// shard order. The per-proxy argument is unchanged from the thread
    /// pool's: every stochastic input derives from
    /// `(config.seed, proxy.node)` alone, a fork-of-a-fork that probes
    /// nothing in between is indistinguishable from a fork of the
    /// parent, and the fill-once cache's counters are reconstructed
    /// exactly from per-shard key sets (see
    /// [`merge`](StudyResults::merge)).
    pub fn run_sharded(&mut self, shard_count: usize, threads: usize) -> StudyResults {
        let (master, shards) = self.run_shards(shard_count, threads);
        StudyResults::merge(master, shards)
    }

    /// The master half of [`run_sharded`](Study::run_sharded): estimate
    /// η serially, then fan the shard plan out and return the per-shard
    /// results *unmerged*, along with the master state
    /// ([`StudyResults::merge`] consumes both). Exposed so tests can
    /// exercise merge semantics (ordering, neutrality of empty shards)
    /// directly.
    ///
    /// `threads` is the total worker budget: up to
    /// `min(shard_count, threads)` shards run concurrently, each fanning
    /// its proxies out over an equal share of the remaining budget. Any
    /// split produces the same bytes; the split only shapes wall-clock
    /// time.
    pub fn run_shards(
        &mut self,
        shard_count: usize,
        threads: usize,
    ) -> (ShardMaster, Vec<ShardResults>) {
        let shard_count = shard_count.max(1);
        let threads = threads.max(1);
        let atlas = Arc::clone(self.world.atlas());
        let recorder = Recorder::new(self.config.obs_level);
        let run_span = recorder.profile_span("audit.run");

        // η estimation over the pingable subset (§5.3, Fig. 13). Runs
        // serially on the master network before any shard forks, so its
        // events land at the head of the trace in a fixed order and
        // every shard lineage forks from the same post-η clock.
        self.world.network_mut().set_recorder(recorder.clone());
        let pingable: Vec<NodeId> = self
            .providers
            .proxies
            .iter()
            .filter(|p| p.pingable)
            .map(|p| p.node)
            .collect();
        let eta_span = recorder.profile_span("audit.eta_estimation");
        let eta_est = estimate_eta(
            self.world.network_mut(),
            self.client,
            &pingable,
            self.config.self_ping_attempts,
        );
        drop(eta_span);
        let eta = eta_est.map_or(DEFAULT_ETA, |e| e.eta());
        if recorder.events_enabled() {
            recorder.set_now_ns(self.world.network().now().as_nanos());
            recorder.event(
                "audit",
                "eta_estimated",
                vec![
                    ("eta", eta.into()),
                    ("pingable", pingable.len().into()),
                ],
            );
        }

        // One landmark server for the whole fleet: the phase-1 anchor
        // selection, per-landmark continent table, and calibration-anchor
        // mapping are pure functions of the constellation, so every
        // shard shares one read-only server instead of rebuilding it.
        let server = LandmarkServer::new(&self.constellation, &self.calibration, &atlas);
        let master = MasterCtx {
            network: self.world.network(),
            client: self.client,
            eta,
            config: &self.config,
            server: &server,
            atlas: &atlas,
            mask: &self.mask,
            registry: &self.registry,
            obs: &recorder,
        };

        let proxies = self.providers.proxies.clone();
        let plan = plan_shards(self.config.seed, proxies.len(), shard_count);
        let inputs: Vec<(ShardSpec, Vec<DeployedProxy>)> = plan
            .into_iter()
            .map(|spec| {
                let slice = proxies[spec.start..spec.end].to_vec();
                (spec, slice)
            })
            .collect();
        // Split the worker budget: outer workers run shards, each shard
        // fans its proxies out over an equal share of what remains. Any
        // split is byte-equivalent; this one keeps the budget busy.
        let outer = shard_count.min(threads);
        let inner = (threads / outer).max(1);
        let shards = parallel::map_indexed(outer, inputs, |_, (spec, slice)| {
            run_shard(spec, slice, inner, &master)
        });
        drop(run_span);

        // The recorder belongs to this run: detach it from the shared
        // network so later ad-hoc measurements (figure harnesses,
        // benches) don't keep appending to a finished run's trace.
        self.world.network_mut().set_recorder(Recorder::off());

        (
            ShardMaster {
                eta: eta_est,
                obs: recorder,
                threads,
                snapshot_every: self.config.snapshot_every.max(1) as u64,
                sinks: std::mem::take(&mut self.progress_sinks),
            },
            shards,
        )
    }
}

/// One shard's slice of the proxy universe, derived by pure
/// `(seed, shard_id, shard_count)` arithmetic — no RNG, no machine
/// state, so every master computes the identical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index in `0..shard_count`.
    pub shard_id: usize,
    /// Total shards in the plan.
    pub shard_count: usize,
    /// First proxy index (inclusive) of the shard's contiguous range.
    pub start: usize,
    /// One past the last proxy index of the range.
    pub end: usize,
    /// Seed for the shard's [`Network::fork`] lineage, pure in
    /// `(seed, shard_id)`. The shard fork itself never probes — per-proxy
    /// forks re-seed from `(seed, proxy.node)` — so this value shapes no
    /// output byte; it exists so the lineage is still fully specified.
    pub net_seed: u64,
}

/// Compute the shard plan: `shard_count` contiguous, balanced ranges
/// covering `0..total` (sizes differ by at most one; empty ranges are
/// legal when `shard_count > total`). Contiguity is what makes merging
/// trivial — concatenating shard outputs in `start` order *is* proxy
/// order, so the merged trace and record list match the monolithic run
/// byte for byte.
pub fn plan_shards(seed: u64, total: usize, shard_count: usize) -> Vec<ShardSpec> {
    let shard_count = shard_count.max(1);
    (0..shard_count)
        .map(|shard_id| ShardSpec {
            shard_id,
            shard_count,
            start: shard_id * total / shard_count,
            end: (shard_id + 1) * total / shard_count,
            net_seed: seed
                ^ 0x5aa2d
                ^ (shard_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        })
        .collect()
}

/// What the master keeps for itself while shards run: the η estimate,
/// the master recorder (η events + run-level spans), and the worker
/// budget. [`StudyResults::merge`] folds shard outputs into this.
pub struct ShardMaster {
    /// The η estimate every shard measured with.
    pub eta: Option<EtaEstimate>,
    /// The master recorder; shard traces are absorbed into it in shard
    /// order at merge time.
    pub obs: Recorder,
    /// Total worker budget the run was given.
    pub threads: usize,
    /// Snapshot interval (proxies per snapshot) from the study config.
    pub snapshot_every: u64,
    /// Progress sinks to drive while folding shard outputs.
    pub sinks: Vec<Box<dyn ProgressSink>>,
}

/// One shard's complete, mergeable output: its records and failures in
/// proxy order, its recorder (per-proxy traces already absorbed in
/// proxy order), and enough cache accounting to reconstruct the shared
/// cache's exact counters at merge time.
pub struct ShardResults {
    /// The plan entry this shard executed.
    pub spec: ShardSpec,
    /// Records for the shard's range, in proxy order.
    pub records: Vec<ProxyRecord>,
    /// Failures for the shard's range, in proxy order.
    pub failures: Vec<UnmeasuredProxy>,
    /// The shard recorder: deterministic events/counters for the range,
    /// plus the shard's wall-clock profile subtree.
    pub trace: Recorder,
    /// Per-proxy deterministic deltas in proxy order, captured before
    /// each proxy's trace folded into the shard recorder. Concatenated
    /// in range order at merge time, these drive the snapshot stream.
    pub proxy_stats: Vec<ProxyStat>,
    /// Total disk-cache lookups (hits + misses) this shard issued.
    pub cache_lookups: u64,
    /// Sorted distinct cache keys this shard rasterized
    /// ([`DiskCache::export_keys`]); the union across shards reconstructs
    /// the monolithic cache's entry count.
    pub cache_keys: Vec<(u64, u64, u32)>,
}

/// Read-only master state a shard worker measures against.
struct MasterCtx<'a> {
    network: &'a Network,
    client: NodeId,
    eta: f64,
    config: &'a StudyConfig,
    server: &'a LandmarkServer<'a>,
    atlas: &'a Arc<WorldAtlas>,
    mask: &'a Region,
    registry: &'a DataCenterRegistry,
    obs: &'a Recorder,
}

/// Execute one shard: fork the network lineage and recorder, measure the
/// shard's proxies on `inner_threads` workers, absorb their traces in
/// proxy order, and package the mergeable result.
///
/// The shard's [`Network::fork`] never probes, so per-proxy forks taken
/// from it are bit-identical to forks taken from the master network
/// (same clock, same shared topology, untouched fault state) — the heart
/// of the shard-count-invariance argument.
fn run_shard(
    spec: ShardSpec,
    proxies: Vec<DeployedProxy>,
    inner_threads: usize,
    master: &MasterCtx<'_>,
) -> ShardResults {
    let shard_rec = master.obs.fork();
    // Rooted so the shard subtree has the same profile shape whether the
    // shard ran inline on the coordinator or on an outer worker thread.
    let shard_span = shard_rec.profile_span_root("audit.shard");
    let shard_net = master.network.fork(spec.net_seed);
    // Each shard fills its own cache: lookups profile into the shard
    // recorder, and the exact counters a *shared* cache would have
    // reported are reconstructed at merge time from the per-shard key
    // sets (a cached region is bitwise the fresh rasterization, so the
    // per-proxy lookup sequence is cache-state-independent).
    let cache = {
        let mut cache = DiskCache::new(Arc::clone(master.mask.grid()));
        cache.set_recorder(shard_rec.clone());
        Arc::new(cache)
    };
    let ctx = AuditCtx {
        network: &shard_net,
        client: master.client,
        eta: master.eta,
        config: master.config,
        server: master.server,
        atlas: master.atlas,
        mask: master.mask,
        registry: master.registry,
        cache: &cache,
        obs: &shard_rec,
    };
    let outcomes = parallel::map_indexed(inner_threads, proxies, |_, proxy| {
        measure_one_proxy(proxy, &ctx)
    });

    // Merge the worker-local buffers back in proxy order: the shard
    // trace is byte-identical for any inner thread count.
    let absorb_span = shard_rec.profile_span("audit.absorb");
    let mut records: Vec<ProxyRecord> = Vec::with_capacity(outcomes.len());
    let mut failures: Vec<UnmeasuredProxy> = Vec::new();
    let mut proxy_stats: Vec<ProxyStat> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        // Capture the proxy's deterministic delta off its still-private
        // trace *before* it folds into the shard recorder: the loop is
        // single-threaded and proxy-ordered, so the stat stream is a
        // pure function of the shard's range regardless of how many
        // inner workers measured.
        proxy_stats.push(proxy_stat(&outcome));
        shard_rec.absorb(&outcome.trace);
        match outcome.result {
            ProxyResult::Record(r) => records.push(*r),
            ProxyResult::Failure(f) => failures.push(f),
        }
    }
    drop(absorb_span);
    let stats = cache.stats();
    drop(shard_span);
    ShardResults {
        spec,
        records,
        failures,
        trace: shard_rec,
        proxy_stats,
        cache_lookups: stats.hits + stats.misses,
        cache_keys: cache.export_keys(),
    }
}

/// Read one finished proxy's deterministic delta off its worker-local
/// trace: probe/retry counters, the final sim-clock stamp, and the
/// outcome classification the `audit.*` ledger counters use.
fn proxy_stat(outcome: &ProxyOutcome) -> ProxyStat {
    let (node, kind) = match &outcome.result {
        ProxyResult::Record(r) => (r.proxy.node, SnapshotOutcome::Measured),
        ProxyResult::Failure(f) => (
            f.proxy.node,
            match f.failure {
                MeasureFailure::InsufficientData => SnapshotOutcome::Insufficient,
                MeasureFailure::Unmeasurable => SnapshotOutcome::Unmeasurable,
            },
        ),
    };
    ProxyStat {
        node,
        sim_now_ns: outcome.trace.now_ns(),
        probes_sent: outcome.trace.counter("net.probe.sent"),
        probes_timeout: outcome.trace.counter("net.probe.timeout"),
        retries: outcome.trace.counter("rel.retry"),
        outcome: kind,
    }
}

impl StudyResults {
    /// Reassemble a full study from the master state and the per-shard
    /// outputs of [`Study::run_shards`].
    ///
    /// Merge semantics, and why the result is byte-identical to the
    /// monolithic run:
    ///
    /// * **Order-insensitive.** Shards are re-sorted by their plan range
    ///   before anything is concatenated, so shards handed back in any
    ///   order (a property the tests exercise directly) produce the same
    ///   bytes. Because [`plan_shards`] ranges are contiguous, sorted
    ///   concatenation *is* proxy order — the invariant every
    ///   deterministic output hangs off.
    /// * **Traces.** Each shard recorder already absorbed its per-proxy
    ///   buffers in proxy order; absorbing the shard recorders into the
    ///   master in range order concatenates events exactly as the
    ///   monolithic collector would have, and merges counters and
    ///   histograms additively (both are commutative over disjoint
    ///   proxy sets, but the event stream is not — hence the sort).
    /// * **Cache counters stay exact.** Each shard ran a private
    ///   fill-once cache, so a key rasterized by two shards was counted
    ///   as a miss twice — once per shard — where a shared cache would
    ///   have counted one miss and one hit. The reconstruction uses the
    ///   sorted per-shard key sets ([`DiskCache::export_keys`]): the
    ///   union's size is what a shared cache's `entries` (and, fill-once,
    ///   its `misses`) would have been, and every remaining lookup is a
    ///   hit. Lookup *sequences* are cache-state-independent (a cached
    ///   region is bitwise the fresh rasterization), so summed per-shard
    ///   lookups equal the monolithic lookup count.
    /// * **Empty shards are neutral.** An empty range contributes no
    ///   records, no failures, no events, no keys — merging it in is a
    ///   no-op, which is what makes `shard_count > proxies` legal.
    ///
    /// Co-location group disambiguation (Fig. 16) runs here, after the
    /// merge, because groups span shard boundaries: a shard alone cannot
    /// see a group's full membership.
    pub fn merge(mut master: ShardMaster, mut shards: Vec<ShardResults>) -> StudyResults {
        let recorder = master.obs;
        let merge_span = recorder.profile_span("audit.merge");
        shards.sort_by_key(|s| (s.spec.start, s.spec.shard_id));

        let shard_count = shards.len().max(1);
        let total: usize = shards.iter().map(|s| s.records.len() + s.failures.len()).sum();
        let mut records: Vec<ProxyRecord> = Vec::with_capacity(total);
        let mut failures: Vec<UnmeasuredProxy> = Vec::new();
        let mut proxy_stats: Vec<ProxyStat> = Vec::with_capacity(total);
        let mut shard_progress: Vec<ShardProgress> = Vec::with_capacity(shards.len());
        let mut lookups = 0u64;
        let mut keys: Vec<(u64, u64, u32)> = Vec::new();
        for shard in shards {
            recorder.absorb(&shard.trace);
            shard_progress.push(ShardProgress {
                shard_id: shard.spec.shard_id,
                proxies_done: shard.proxy_stats.len() as u64,
                probes_sent: shard.proxy_stats.iter().map(|s| s.probes_sent).sum(),
                retries: shard.proxy_stats.iter().map(|s| s.retries).sum(),
                cache_hit_ratio: if shard.cache_lookups == 0 {
                    0.0
                } else {
                    shard.cache_lookups.saturating_sub(shard.cache_keys.len() as u64) as f64
                        / shard.cache_lookups as f64
                },
                progress_ratio: 1.0,
            });
            records.extend(shard.records);
            failures.extend(shard.failures);
            proxy_stats.extend(shard.proxy_stats);
            lookups += shard.cache_lookups;
            keys.extend(shard.cache_keys);
        }
        keys.sort_unstable();
        keys.dedup();

        // Co-location group disambiguation (Fig. 16): within a group, the
        // true country must be common to every member's touched set.
        apply_group_disambiguation(&mut records);

        // Reconstructed shared-cache counters: exact for any shard and
        // thread count (misses == entries under fill-once). Wall-side,
        // like the monolithic path, but legitimate to diff.
        let entries = keys.len() as u64;
        recorder.wall_count("cache.disk.hits", lookups.saturating_sub(entries));
        recorder.wall_count("cache.disk.misses", entries);
        recorder.wall_count("cache.disk.entries", entries);
        recorder.wall_count("audit.threads", master.threads.max(1) as u64);
        recorder.wall_count("audit.shards", shard_count as u64);

        // Drive the snapshot stream: the concatenated per-proxy stats
        // are in global proxy order (contiguous ranges, sorted), so the
        // deterministic compartment of every snapshot is a pure function
        // of (seed, snapshot_every). Wall fields are back-filled from
        // the run's own telemetry — total elapsed pro-rated over the
        // stream, the reconstructed shared-cache hit ratio — and never
        // rendered into a determinism diff.
        let elapsed_ms = recorder
            .profile_stat("audit.run")
            .map_or(0, |s| (s.cum_ns / 1_000_000) as u64);
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            lookups.saturating_sub(entries) as f64 / lookups as f64
        };
        let mut builder = SnapshotBuilder::new(proxy_stats.len() as u64, master.snapshot_every);
        let mut snapshots: Vec<ProgressSnapshot> = Vec::new();
        for stat in &proxy_stats {
            if let Some(mut snap) = builder.push(stat) {
                let done_ms = (elapsed_ms as f64 * snap.ratio()) as u64;
                snap.wall = WallProgress {
                    elapsed_ms: done_ms,
                    eta_ms: elapsed_ms.saturating_sub(done_ms),
                    cache_hit_ratio: hit_ratio,
                };
                for sink in &mut master.sinks {
                    sink.emit(&snap);
                }
                snapshots.push(snap);
            }
        }
        drop(merge_span);

        let unmeasured = failures.len();
        StudyResults {
            records,
            eta: master.eta,
            failures,
            unmeasured,
            obs: recorder,
            threads: master.threads.max(1),
            shards: shard_count,
            snapshots,
            shard_progress,
        }
    }
}

/// Everything [`measure_one_proxy`] needs beyond the proxy itself:
/// the shared read-only world, the study knobs, and the observability
/// recorder workers fork their per-proxy buffers from.
struct AuditCtx<'a> {
    network: &'a Network,
    client: NodeId,
    eta: f64,
    config: &'a StudyConfig,
    /// The shared landmark server — stood up once per run, never per
    /// proxy (its tables are pure functions of the constellation).
    server: &'a LandmarkServer<'a>,
    atlas: &'a Arc<WorldAtlas>,
    mask: &'a Region,
    registry: &'a DataCenterRegistry,
    cache: &'a Arc<DiskCache>,
    obs: &'a Recorder,
}

/// What one proxy's measurement produced, plus the worker-local event
/// buffer it recorded along the way (absorbed by the collector in proxy
/// order, never in completion order).
struct ProxyOutcome {
    result: ProxyResult,
    trace: Recorder,
}

enum ProxyResult {
    Record(Box<ProxyRecord>),
    Failure(UnmeasuredProxy),
}

/// Measure, locate, and judge one proxy. Pure in the parallelism sense:
/// every stochastic input is derived from `(config.seed, proxy.node)`
/// and the shared read-only world, so the outcome is independent of
/// which worker runs it and in what order.
fn measure_one_proxy(proxy: DeployedProxy, ctx: &AuditCtx<'_>) -> ProxyOutcome {
    let AuditCtx {
        network,
        client,
        eta,
        config,
        server,
        atlas,
        mask,
        registry,
        cache,
        ..
    } = *ctx;
    let reliability = &config.reliability;
    // The per-proxy trace is detached from the study recorder (so
    // workers never interleave) and merged back in proxy order.
    let rec = ctx.obs.fork();
    // Rooted explicitly so the profile tree has the same shape whether
    // this ran inline on the coordinator (1 thread) or on a worker.
    let span = rec.profile_span_root("audit.proxy");
    if rec.events_enabled() {
        rec.event(
            "audit",
            "proxy_start",
            vec![
                ("node", proxy.node.into()),
                ("provider", proxy.provider.into()),
            ],
        );
    }
    let mix = u64::from(proxy.node).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut net = network.fork(config.seed ^ 0xf0bca ^ mix);
    net.set_recorder(rec.clone());
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xaad17 ^ mix);
    // Establish the tunnel context with the same retry budget as a
    // probe: a flap during session setup should not write the proxy
    // off. The backoff here is deterministic (no jitter) — it only
    // advances the sim clock.
    let establish_span = rec.profile_span("audit.establish");
    let mut establish_attempts = 0usize;
    let mut ctx_established = None;
    for attempt in 0..reliability.retry.max_attempts.max(1) {
        if attempt > 0 {
            let wait = (reliability.retry.base_backoff_ms
                * reliability.retry.backoff_factor.powi(attempt as i32 - 1))
            .min(reliability.retry.max_backoff_ms);
            net.advance(SimDuration::from_ms(wait));
        }
        establish_attempts += 1;
        ctx_established = ProxyContext::establish(
            &mut net,
            client,
            proxy.node,
            eta,
            config.self_ping_attempts,
        );
        if ctx_established.is_some() {
            break;
        }
    }
    drop(establish_span);
    let Some(tunnel) = ctx_established else {
        drop(span);
        return finish_proxy(
            rec,
            &net,
            "tunnel_failed",
            ProxyResult::Failure(UnmeasuredProxy {
                proxy,
                failure: MeasureFailure::Unmeasurable,
                diagnostics: MeasurementDiagnostics {
                    attempts: establish_attempts,
                    retries: establish_attempts - 1,
                    timeouts: establish_attempts,
                    ..Default::default()
                },
            }),
        );
    };
    let prober = ProxyProber::new(tunnel, config.attempts_per_landmark);
    let mut scheduler = ProbeScheduler::new(
        prober,
        reliability.retry,
        config.seed ^ 0xba0ff ^ u64::from(proxy.node),
    );
    let outcome = run_two_phase_reliable(&mut net, server, &mut scheduler, &mut rng, reliability);
    let mut diagnostics = outcome.diagnostics;
    diagnostics.attempts += establish_attempts;
    diagnostics.retries += establish_attempts - 1;
    // Physically impossible corrected readings (clamped negatives) are
    // tallied by the prober as it probes; fold them into the proxy's
    // diagnostics so the defense layer and the reliability report see
    // them.
    diagnostics.infeasible_readings += scheduler.inner.stats.infeasible_readings;
    let two_phase = match (outcome.status, outcome.result) {
        (MeasurementStatus::Ok, Some(r)) => r,
        (MeasurementStatus::InsufficientData, _) => {
            drop(span);
            return finish_proxy(
                rec,
                &net,
                "insufficient_data",
                ProxyResult::Failure(UnmeasuredProxy {
                    proxy,
                    failure: MeasureFailure::InsufficientData,
                    diagnostics,
                }),
            );
        }
        _ => {
            drop(span);
            return finish_proxy(
                rec,
                &net,
                "unmeasurable",
                ProxyResult::Failure(UnmeasuredProxy {
                    proxy,
                    failure: MeasureFailure::Unmeasurable,
                    diagnostics,
                }),
            );
        }
    };

    let locate_span = rec.profile_span("audit.locate");
    let prediction =
        CbgPlusPlus.locate_traced(&two_phase.observations, mask, Some(cache), &rec);
    drop(locate_span);
    let assess_span = rec.profile_span("audit.assess");
    let verdict = assess_claim(atlas, &prediction.region, proxy.claimed);

    // Data-center disambiguation (Fig. 15).
    let dc_country = match by_data_centers(registry, &prediction.region) {
        Disambiguation::Resolved(c) => Some(c),
        Disambiguation::Unresolved => None,
    };
    let mut refined = verdict.clone();
    if refined.assessment == Assessment::Uncertain {
        if let Some(c) = dc_country {
            refined.assessment = if c == proxy.claimed {
                Assessment::Credible
            } else {
                Assessment::False
            };
        }
    }

    // Byzantine defense (opt-in): look for evidence of actively shaped
    // measurements, re-locate on the trimmed observation set, and
    // withhold any non-False verdict when evidence is found.
    let mut defense = None;
    if config.defense.enabled {
        let defense_span = rec.profile_span("audit.defense");
        // Challenge sweep: re-probe a deterministic stride across the
        // *whole* constellation. The two-phase path only probes what
        // the (possibly shaped) phase-1 guess selects — the one set an
        // active adversary rehearses — so readings it never expected to
        // produce are the cheapest source of contradictions.
        let mut defense_obs = two_phase.observations.clone();
        if config.defense.challenge_fraction > 0.0 {
            let landmarks = server.constellation().landmarks();
            let total = landmarks.len();
            let want = ((total as f64) * config.defense.challenge_fraction).ceil() as usize;
            let stride = total.div_ceil(want.max(1)).max(1);
            let infeasible_before = scheduler.inner.stats.infeasible_readings;
            let mut swept_dead = 0usize;
            let mut swept_ok = 0usize;
            for id in (0..total).step_by(stride) {
                let lm = &landmarks[id];
                let seen = defense_obs.iter().any(|o| {
                    o.landmark.lat().to_bits() == lm.location.lat().to_bits()
                        && o.landmark.lon().to_bits() == lm.location.lon().to_bits()
                });
                if seen {
                    continue;
                }
                let reading = if lm.port_80_open {
                    scheduler.inner.probe(&mut net, lm.node)
                } else {
                    scheduler.inner.probe_fallback(&mut net, lm.node)
                };
                match reading {
                    Some(ms) => {
                        swept_ok += 1;
                        defense_obs.push(Observation::new(
                            lm.location,
                            ms / 2.0,
                            server.calibration_for(id).clone(),
                        ));
                    }
                    None => swept_dead += 1,
                }
            }
            diagnostics.infeasible_readings +=
                scheduler.inner.stats.infeasible_readings - infeasible_before;
            diagnostics.landmarks_measured += swept_ok;
            diagnostics.dead_landmarks += swept_dead;
        }
        // Pingable proxies also get the direct-ping cross-check: an
        // honest tunnel satisfies η·C ≈ D (Fig. 13), so a wildly larger
        // self-ping is evidence no amount of reply-shaping can hide.
        let direct_ping_ms = if proxy.pingable {
            let mut best: Option<f64> = None;
            for _ in 0..config.self_ping_attempts {
                if let Some(d) = net.ping(client, proxy.node) {
                    let ms = d.as_ms();
                    best = Some(best.map_or(ms, |b: f64| b.min(ms)));
                }
            }
            best
        } else {
            None
        };
        let report = run_defense(
            &defense_obs,
            &diagnostics,
            TunnelPings {
                self_ping_ms: scheduler.inner.ctx.self_ping_ms,
                direct_ping_ms,
                eta,
            },
            mask,
            Some(cache),
            &rec,
            &config.defense,
        );
        if !report.flagged.is_empty() {
            // Re-locate without the flagged observations: the robust
            // verdict stands on the readings no landmark pair disputes
            // (challenge-sweep readings included).
            let kept: Vec<_> = defense_obs
                .iter()
                .enumerate()
                .filter(|(i, _)| !report.flagged.contains(i))
                .map(|(_, o)| o.clone())
                .collect();
            let robust = CbgPlusPlus.locate_traced(&kept, mask, Some(cache), &rec);
            refined = assess_claim(atlas, &robust.region, proxy.claimed);
            if refined.assessment == Assessment::Uncertain {
                if let Disambiguation::Resolved(c) = by_data_centers(registry, &robust.region) {
                    refined.assessment = if c == proxy.claimed {
                        Assessment::Credible
                    } else {
                        Assessment::False
                    };
                }
            }
        }
        // Evidence of tampering withholds any verdict short of False:
        // a proven-false claim stays false (the lie is established), but
        // "credible" readings from a caught manipulator prove nothing.
        if report.suspicious() && refined.assessment != Assessment::False {
            refined.assessment = Assessment::Suspicious;
        }
        defense = Some(report);
        drop(defense_span);
    }

    let iclab = IclabChecker::default().check(atlas, proxy.claimed, &two_phase.observations);
    drop(assess_span);
    drop(span);
    finish_proxy(
        rec,
        &net,
        "measured",
        ProxyResult::Record(Box::new(ProxyRecord {
            continent_guess: two_phase.continent,
            region_area_km2: prediction.region.area_km2(),
            centroid: prediction.region.centroid(),
            observations: two_phase
                .observations
                .iter()
                .map(|o| (o.landmark, o.one_way_ms))
                .collect(),
            self_ping_ms: scheduler.inner.ctx.self_ping_ms,
            iclab,
            verdict,
            refined,
            dc_country,
            diagnostics,
            defense,
            proxy,
        })),
    )
}

/// Stamp the closing event on a proxy's trace and package the outcome.
/// Also folds the ledger outcome into the `audit.*` counters the
/// reliability report cross-checks against its recount.
fn finish_proxy(
    rec: Recorder,
    net: &Network,
    status: &'static str,
    result: ProxyResult,
) -> ProxyOutcome {
    rec.count(
        match status {
            "measured" => "audit.measured",
            "insufficient_data" => "audit.insufficient",
            _ => "audit.unmeasurable",
        },
        1,
    );
    // Stamp the final sim time unconditionally (a no-op at Level::Off):
    // the snapshot stream reads it even when the event trace is off.
    rec.set_now_ns(net.now().as_nanos());
    if rec.events_enabled() {
        rec.event("audit", "proxy_done", vec![("status", status.into())]);
    }
    ProxyOutcome { result, trace: rec }
}

/// One study's reliability ledger: how many proxies got a verdict, how
/// many were refused one (and why), and the summed measurement effort.
#[derive(Debug, Clone, Copy)]
pub struct ReliabilitySummary {
    /// Proxies with a full measurement and verdict.
    pub measured: usize,
    /// Proxies refused a verdict for thin data.
    pub insufficient: usize,
    /// Proxies that never answered anything.
    pub unmeasurable: usize,
    /// Runs that missed the phase-1 quorum and degraded to a sweep.
    pub quorum_degraded: usize,
    /// Summed diagnostics across every proxy (measured or not).
    pub totals: MeasurementDiagnostics,
}

impl ReliabilitySummary {
    /// The ledger partition `(measured, insufficient, unmeasurable)` —
    /// sums to the number of proxies deployed.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.measured, self.insufficient, self.unmeasurable)
    }
}

/// Resolve groups (same provider + AS + /24) whose members' regions share
/// exactly one country; upgrade members' uncertain verdicts accordingly.
fn apply_group_disambiguation(records: &mut [ProxyRecord]) {
    use std::collections::HashMap;
    let mut groups: HashMap<(usize, CountryId, usize), Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        groups.entry(r.proxy.group_key).or_default().push(i);
    }
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let touched_sets: Vec<Vec<CountryId>> = members
            .iter()
            .map(|&i| records[i].verdict.touched.iter().map(|&(c, _)| c).collect())
            .collect();
        let refs: Vec<&[CountryId]> = touched_sets.iter().map(Vec::as_slice).collect();
        if let Disambiguation::Resolved(country) = by_touched_sets(&refs) {
            for &i in members {
                if records[i].refined.assessment == Assessment::Uncertain {
                    records[i].refined.assessment = if country == records[i].proxy.claimed {
                        Assessment::Credible
                    } else {
                        Assessment::False
                    };
                }
            }
        }
    }
}

impl StudyResults {
    /// (credible, uncertain, false) counts under a verdict selector.
    /// Withheld verdicts live outside the 3-way split; see
    /// [`StudyResults::suspicious`].
    pub fn counts(&self, refined: bool) -> (usize, usize, usize) {
        crate::report::tally_records(self, refined).three_way()
    }

    /// Proxies whose verdict was *withheld* by the defense layer under a
    /// verdict selector (always 0 for the baseline selector — only the
    /// refined pipeline degrades to `Suspicious`).
    pub fn suspicious(&self, refined: bool) -> usize {
        crate::report::tally_records(self, refined).suspicious
    }

    /// Fig. 17 row categories: (credible, uncertain-country
    /// continent-credible, uncertain-both, false-country
    /// continent-credible, false-country continent-uncertain,
    /// continent-false), using refined verdicts.
    pub fn fig17_categories(&self) -> [usize; 6] {
        let mut out = [0usize; 6];
        for r in &self.records {
            let idx = match (r.refined.assessment, r.refined.continent) {
                (Assessment::Credible, _) => 0,
                (Assessment::Uncertain, ContinentVerdict::Credible) => 1,
                // A withheld (Suspicious) verdict is maximal uncertainty
                // at both levels.
                (Assessment::Uncertain | Assessment::Suspicious, _) => 2,
                (Assessment::False, ContinentVerdict::Credible) => 3,
                (Assessment::False, ContinentVerdict::Uncertain) => 4,
                (Assessment::False, ContinentVerdict::False) => 5,
            };
            out[idx] += 1;
        }
        out
    }

    /// Agreement rate with provider claims per provider, for a verdict
    /// mode: `generous` counts uncertain as agreement ("generous"), else
    /// only credible ("strict") — Fig. 21's two CBG++ rows.
    pub fn cbgpp_agreement(&self, provider: usize, generous: bool) -> f64 {
        let (mut agree, mut total) = (0usize, 0usize);
        for r in &self.records {
            if r.proxy.provider != provider {
                continue;
            }
            total += 1;
            match r.refined.assessment {
                Assessment::Credible => agree += 1,
                Assessment::Uncertain if generous => agree += 1,
                _ => {}
            }
        }
        if total == 0 {
            0.0
        } else {
            agree as f64 / total as f64
        }
    }

    /// ICLab agreement rate per provider (accepted / total).
    pub fn iclab_agreement(&self, provider: usize) -> f64 {
        let (mut agree, mut total) = (0usize, 0usize);
        for r in &self.records {
            if r.proxy.provider != provider {
                continue;
            }
            total += 1;
            if r.iclab == IclabVerdict::Accepted {
                agree += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            agree as f64 / total as f64
        }
    }

    /// Landmark disk-cache telemetry, read back from the recorder's
    /// wall-clock compartment. The fill-once cache makes the split
    /// exact: `misses == entries` and `hits + misses` equals the lookup
    /// count, for any worker count.
    pub fn cache_stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.obs.wall_counter("cache.disk.hits"),
            misses: self.obs.wall_counter("cache.disk.misses"),
            entries: self.obs.wall_counter("cache.disk.entries") as usize,
        }
    }

    /// The study's full event trace as JSON Lines, one event per line,
    /// merged in proxy order — byte-identical for any thread count.
    /// Empty unless the study ran at [`obs::Level::Events`].
    pub fn trace_jsonl(&self) -> String {
        self.obs.events_jsonl()
    }

    /// The deterministic compartment of every progress snapshot as
    /// JSONL — byte-identical for any `PV_SHARDS × PV_THREADS`, so the
    /// determinism gates diff it alongside the event trace.
    pub fn snapshots_jsonl(&self) -> String {
        self.snapshots
            .iter()
            .map(ProgressSnapshot::deterministic_jsonl)
            .collect()
    }

    /// Both compartments of every progress snapshot as JSONL (wall
    /// fields under a `"wall"` key) — the operator-facing rendering
    /// `figures ops` writes to disk. **Not** determinism-diff safe.
    pub fn snapshots_full_jsonl(&self) -> String {
        self.snapshots
            .iter()
            .map(ProgressSnapshot::full_jsonl)
            .collect()
    }

    /// Aggregate the per-proxy measurement diagnostics into one
    /// study-level reliability picture.
    pub fn reliability_summary(&self) -> ReliabilitySummary {
        let mut totals = MeasurementDiagnostics::default();
        let mut quorum_degraded = 0usize;
        for r in &self.records {
            totals.absorb(&r.diagnostics);
            if r.diagnostics.quorum_degraded {
                quorum_degraded += 1;
            }
        }
        let mut insufficient = 0usize;
        let mut unmeasurable = 0usize;
        for f in &self.failures {
            totals.absorb(&f.diagnostics);
            if f.diagnostics.quorum_degraded {
                quorum_degraded += 1;
            }
            match f.failure {
                MeasureFailure::InsufficientData => insufficient += 1,
                MeasureFailure::Unmeasurable => unmeasurable += 1,
            }
        }
        ReliabilitySummary {
            measured: self.records.len(),
            insufficient,
            unmeasurable,
            quorum_degraded,
            totals,
        }
    }

    /// Evaluation-only ground-truth check: fraction of records whose
    /// prediction covered the proxy's true country.
    pub fn coverage_of_truth(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let covered = self
            .records
            .iter()
            .filter(|r| {
                r.verdict
                    .touched
                    .iter()
                    .any(|&(c, _)| c == r.proxy.true_country)
            })
            .count();
        covered as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    fn results() -> &'static Mutex<(Study, StudyResults)> {
        static S: OnceLock<Mutex<(Study, StudyResults)>> = OnceLock::new();
        S.get_or_init(|| {
            let mut study = Study::build(StudyConfig::small(41));
            let results = study.run();
            Mutex::new((study, results))
        })
    }

    #[test]
    fn nearly_all_proxies_are_measured() {
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        assert!(
            res.records.len() + res.unmeasured == study.providers.proxies.len()
        );
        assert!(
            res.records.len() * 10 >= study.providers.proxies.len() * 9,
            "only {} of {} measured",
            res.records.len(),
            study.providers.proxies.len()
        );
    }

    #[test]
    fn reliability_summary_accounts_for_every_proxy() {
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        let s = res.reliability_summary();
        assert_eq!(
            s.measured + s.insufficient + s.unmeasurable,
            study.providers.proxies.len(),
            "a proxy fell out of the ledger"
        );
        assert_eq!(res.failures.len(), res.unmeasured);
        assert!(s.totals.attempts > 0);
        assert!(s.totals.landmarks_measured > 0);
        for r in &res.records {
            assert!(!r.diagnostics.is_empty(), "record without diagnostics");
        }
        for f in &res.failures {
            assert!(!f.diagnostics.is_empty(), "failure without diagnostics");
        }
        let rendered = crate::report::render_reliability(res);
        assert!(rendered.contains("measured"));
        assert!(rendered.contains("phase 1"));
    }

    #[test]
    fn disk_cache_is_actually_shared_across_proxies() {
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        assert!(res.threads >= 1);
        // Every measured proxy queries disks for the same constellation,
        // so once the fleet is larger than a handful the cache must be
        // doing real work.
        let cache = res.cache_stats();
        assert!(
            cache.hits > 0,
            "cache never reused an entry: {} hits / {} misses over {} proxies",
            cache.hits,
            cache.misses,
            study.providers.proxies.len()
        );
        // Fill-once: each distinct key is rasterized by exactly one
        // worker, so the miss count *is* the entry count.
        assert_eq!(cache.entries as u64, cache.misses);
        let rendered = crate::report::render_perf_telemetry(res);
        assert!(rendered.contains("disk cache"));
        assert!(rendered.contains("threads"));
    }

    #[test]
    fn recorder_ledger_agrees_with_reliability_recount() {
        // The audit.* counters are emitted at measurement time; the
        // summary is recounted from the records afterwards. They must
        // tell the same story or a layer is lying.
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        let s = res.reliability_summary();
        assert_eq!(res.obs.counter("audit.measured") as usize, s.measured);
        assert_eq!(
            res.obs.counter("audit.insufficient") as usize,
            s.insufficient
        );
        assert_eq!(
            res.obs.counter("audit.unmeasurable") as usize,
            s.unmeasurable
        );
        assert_eq!(
            res.obs.counter("tp.quorum_degraded") as usize,
            s.quorum_degraded
        );
        let (m, i, u) = s.counts();
        assert_eq!(m + i + u, study.providers.proxies.len());
        assert!(res.obs.counter("net.probe.sent") > 0);
        assert!(
            res.obs.counter("net.probe.sent")
                >= res.obs.counter("net.probe.completed")
                    + res.obs.counter("net.probe.timeout")
        );
    }

    #[test]
    fn trace_has_one_start_and_done_per_proxy_in_proxy_order() {
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        let n = study.providers.proxies.len();
        res.obs.with_events(|evs| {
            let starts: Vec<u64> = evs
                .iter()
                .filter(|e| e.name == "proxy_start")
                .map(|e| e.field_u64("node").unwrap())
                .collect();
            assert_eq!(starts.len(), n);
            let expected: Vec<u64> = study
                .providers
                .proxies
                .iter()
                .map(|p| u64::from(p.node))
                .collect();
            assert_eq!(starts, expected, "trace not merged in proxy order");
            assert_eq!(
                evs.iter().filter(|e| e.name == "proxy_done").count(),
                n
            );
        });
        assert_eq!(res.trace_jsonl().lines().count(), res.obs.events_len());
        // Wall compartment: one audit.proxy profile root per proxy,
        // with the measurement stages nested beneath it.
        let proxy_stat = res
            .obs
            .profile_stat("audit.proxy")
            .expect("per-proxy profile root");
        assert_eq!(proxy_stat.count as usize, n);
        assert!(proxy_stat.self_ns <= proxy_stat.cum_ns);
    }

    #[test]
    fn snapshot_stream_covers_every_proxy() {
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        let n = study.providers.proxies.len() as u64;
        let every = study.config.snapshot_every.max(1) as u64;
        let expected = (n / every) + u64::from(!n.is_multiple_of(every));
        assert_eq!(res.snapshots.len() as u64, expected);
        let last = res.snapshots.last().expect("snapshots emitted");
        assert_eq!(last.proxies_done, n);
        assert_eq!(last.proxies_total, n);
        assert_eq!(last.measured as usize, res.records.len());
        assert_eq!(
            last.measured + last.insufficient + last.unmeasurable,
            n,
            "snapshot outcome tallies must partition the fleet"
        );
        // Per-proxy probe counters sum to at most the study total (the
        // master's own η-estimation probes are outside any proxy).
        assert!(last.probes_sent > 0);
        assert!(last.probes_sent <= res.obs.counter("net.probe.sent"));
        assert!(last.sim_now_ns > 0, "sim clock never stamped");
        // Sequence numbers are dense and done counts are increasing.
        for (i, s) in res.snapshots.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
            if i > 0 {
                assert!(s.proxies_done > res.snapshots[i - 1].proxies_done);
            }
        }
        assert_eq!(
            res.snapshots_jsonl().lines().count(),
            res.snapshots.len()
        );
        // Wall split: the deterministic rendering never mentions wall
        // fields; the full rendering carries them on every line.
        assert!(!res.snapshots_jsonl().contains("wall"));
        assert_eq!(
            res.snapshots_full_jsonl().matches("\"wall\"").count(),
            res.snapshots.len()
        );
        // Per-shard gauges exist for every shard in the plan.
        assert_eq!(res.shard_progress.len(), res.shards);
        let done: u64 = res.shard_progress.iter().map(|s| s.proxies_done).sum();
        assert_eq!(done, n);
    }

    #[test]
    fn progress_sinks_see_the_same_snapshots() {
        use obs::snapshot::{JsonlSink, RingSink};
        use std::sync::{Arc, Mutex};
        let mut cfg = StudyConfig::small(41);
        cfg.total_proxies = 12;
        cfg.snapshot_every = 5;
        let mut study = Study::build(cfg);
        let jsonl = Arc::new(Mutex::new(JsonlSink::deterministic()));
        let ring = Arc::new(Mutex::new(RingSink::new(2)));
        study.add_progress_sink(Box::new(Arc::clone(&jsonl)));
        study.add_progress_sink(Box::new(Arc::clone(&ring)));
        let res = study.run_with_threads(2);
        // 12 proxies, k=5 → snapshots at 5, 10, 12.
        assert_eq!(res.snapshots.len(), 3);
        assert_eq!(
            jsonl.lock().unwrap().text(),
            res.snapshots_jsonl(),
            "sink saw different bytes than the stored stream"
        );
        let ring = ring.lock().unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.latest().unwrap().proxies_done, 12);
    }

    #[test]
    fn profile_tree_covers_the_audit_stages() {
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        let n = study.providers.proxies.len();
        // Coordinator roots.
        assert_eq!(res.obs.profile_stat("audit.run").unwrap().count, 1);
        assert_eq!(
            res.obs
                .profile_stat("audit.run/audit.eta_estimation")
                .unwrap()
                .count,
            1
        );
        // Worker stages nest under audit.proxy; every measured proxy
        // ran phase 1 and located, and each probe bottoms out in the
        // simulator's net.probe span.
        let measured = res.records.len() as u64;
        assert!(measured > 0);
        let phase1 = res
            .obs
            .profile_stat("audit.proxy/twophase.phase1")
            .expect("phase-1 span");
        assert!(phase1.count as usize <= n);
        let locate = res
            .obs
            .profile_stat("audit.proxy/audit.locate")
            .expect("locate span");
        assert_eq!(locate.count, measured);
        let rel_probe = res
            .obs
            .profile_stat("audit.proxy/twophase.phase1/rel.probe")
            .expect("scheduler probe span");
        let net_probe = res
            .obs
            .profile_stat("audit.proxy/twophase.phase1/rel.probe/net.probe")
            .expect("simulator probe span");
        assert!(net_probe.count >= rel_probe.count);
        // Disk intersections under the locate stage, reaching the cache.
        let intersect = res
            .obs
            .profile_stat("audit.proxy/audit.locate/cbgpp.baseline/subset.intersect")
            .expect("baseline intersection span");
        assert!(intersect.count >= measured);
        let lookup = res
            .obs
            .profile_stat(
                "audit.proxy/audit.locate/cbgpp.baseline/subset.intersect/cache.lookup",
            )
            .expect("disk cache lookup span");
        assert!(lookup.count > 0);
        // Self time never exceeds cumulative anywhere in the tree.
        for (path, stat) in res.obs.profile() {
            assert!(stat.self_ns <= stat.cum_ns, "self > cum at {path}");
        }
        // The rendered tree indents children under their parents.
        let tree = res.obs.render_profile();
        assert!(tree.contains("audit.proxy"));
        assert!(tree.contains("  audit.locate"), "no indented child:\n{tree}");
    }

    #[test]
    fn obs_level_off_records_nothing_but_results_match() {
        let mut cfg = StudyConfig::small(41);
        cfg.total_proxies = 8;
        cfg.obs_level = obs::Level::Off;
        let mut quiet = Study::build(cfg.clone());
        let quiet_res = quiet.run_with_threads(2);
        assert_eq!(quiet_res.obs.events_len(), 0);
        assert_eq!(quiet_res.obs.counter("net.probe.sent"), 0);
        cfg.obs_level = obs::Level::Events;
        let mut loud = Study::build(cfg);
        let loud_res = loud.run_with_threads(2);
        assert!(loud_res.obs.events_len() > 0);
        // Observability depth never changes the science.
        assert_eq!(quiet_res.records.len(), loud_res.records.len());
        for (a, b) in quiet_res.records.iter().zip(&loud_res.records) {
            assert_eq!(a.proxy.node, b.proxy.node);
            assert_eq!(a.region_area_km2.to_bits(), b.region_area_km2.to_bits());
            assert_eq!(a.verdict.assessment, b.verdict.assessment);
        }
    }

    #[test]
    fn eta_is_estimated_near_half() {
        let g = results().lock().unwrap();
        let (_, res) = &*g;
        if let Some(eta) = res.eta {
            assert!(
                (eta.eta() - 0.5).abs() < 0.1,
                "η = {} from {} samples",
                eta.eta(),
                eta.samples
            );
        }
    }

    #[test]
    fn predictions_cover_the_true_country_mostly() {
        // CBG++'s design goal: be certain the proxy is where we say it
        // is. At small scale a few borderline regions are tolerable.
        let g = results().lock().unwrap();
        let (_, res) = &*g;
        let cov = res.coverage_of_truth();
        assert!(cov >= 0.8, "true-country coverage {cov}");
    }

    #[test]
    fn verdict_mix_is_paper_shaped() {
        // The headline: a sizeable fraction of claims false, a sizeable
        // fraction credible/uncertain.
        let g = results().lock().unwrap();
        let (_, res) = &*g;
        let (credible, uncertain, false_) = res.counts(true);
        let total = credible + uncertain + false_;
        assert!(total > 0);
        assert!(
            false_ * 5 >= total,
            "too few false verdicts: {false_}/{total}"
        );
        assert!(
            credible + uncertain > 0,
            "no claim survived at all — miscalibrated pipeline"
        );
    }

    #[test]
    fn false_verdicts_are_usually_actually_false() {
        // Precision check against ground truth: when the pipeline says
        // "false", the provider claim should indeed be wrong nearly
        // always (the paper's priority: never wrongly accuse).
        let g = results().lock().unwrap();
        let (_, res) = &*g;
        let (mut right, mut total) = (0usize, 0usize);
        for r in &res.records {
            if r.refined.assessment == Assessment::False {
                total += 1;
                if r.proxy.claimed != r.proxy.true_country {
                    right += 1;
                }
            }
        }
        if total > 0 {
            let precision = right as f64 / total as f64;
            assert!(precision >= 0.9, "false-verdict precision {precision}");
        }
    }

    #[test]
    fn refinement_only_resolves_uncertainty() {
        let g = results().lock().unwrap();
        let (_, res) = &*g;
        for r in &res.records {
            if r.verdict.assessment != Assessment::Uncertain {
                assert_eq!(r.verdict.assessment, r.refined.assessment);
            }
        }
        let (_, u_raw, _) = res.counts(false);
        let (_, u_ref, _) = res.counts(true);
        assert!(u_ref <= u_raw, "refinement increased uncertainty");
    }

    #[test]
    fn fig17_categories_partition_records() {
        let g = results().lock().unwrap();
        let (_, res) = &*g;
        let cats = res.fig17_categories();
        assert_eq!(cats.iter().sum::<usize>(), res.records.len());
    }

    #[test]
    fn agreement_rates_are_probabilities() {
        let g = results().lock().unwrap();
        let (study, res) = &*g;
        for p in 0..study.providers.profiles.len() {
            let strict = res.cbgpp_agreement(p, false);
            let generous = res.cbgpp_agreement(p, true);
            assert!((0.0..=1.0).contains(&strict));
            assert!(generous >= strict);
            let iclab = res.iclab_agreement(p);
            assert!((0.0..=1.0).contains(&iclab));
        }
    }

    /// A results value with nothing in it — no study ran at all.
    fn empty_results() -> StudyResults {
        StudyResults {
            records: Vec::new(),
            eta: None,
            failures: Vec::new(),
            unmeasured: 0,
            obs: Recorder::off(),
            threads: 1,
            shards: 1,
            snapshots: Vec::new(),
            shard_progress: Vec::new(),
        }
    }

    fn dummy_proxy(node: NodeId) -> DeployedProxy {
        DeployedProxy {
            node,
            provider: 0,
            claimed: 0,
            true_country: 0,
            true_location: geokit::GeoPoint::new(0.0, 0.0),
            group_key: (0, 0, 0),
            pingable: false,
            gateway: node,
        }
    }

    #[test]
    fn empty_study_has_all_zero_ledgers() {
        let res = empty_results();
        let s = res.reliability_summary();
        assert_eq!(s.counts(), (0, 0, 0));
        assert_eq!(s.quorum_degraded, 0);
        assert_eq!(res.counts(false), (0, 0, 0));
        assert_eq!(res.counts(true), (0, 0, 0));
        assert_eq!(res.fig17_categories(), [0; 6]);
        assert_eq!(res.cache_stats(), geoloc::multilateration::DiskCacheStats::default());
        // Rendering must cope: no division by zero, no panic.
        let rendered = crate::report::render_reliability(&res);
        assert!(rendered.contains("0 total"));
        assert!(crate::report::render_observability(&res).contains("0 events"));
        assert!(res.trace_jsonl().is_empty());
    }

    #[test]
    fn all_unmeasured_study_partitions_into_failure_kinds() {
        let mut res = empty_results();
        res.failures = vec![
            UnmeasuredProxy {
                proxy: dummy_proxy(1),
                failure: MeasureFailure::Unmeasurable,
                diagnostics: MeasurementDiagnostics::default(),
            },
            UnmeasuredProxy {
                proxy: dummy_proxy(2),
                failure: MeasureFailure::InsufficientData,
                diagnostics: MeasurementDiagnostics::default(),
            },
            UnmeasuredProxy {
                proxy: dummy_proxy(3),
                failure: MeasureFailure::Unmeasurable,
                diagnostics: MeasurementDiagnostics::default(),
            },
        ];
        res.unmeasured = res.failures.len();
        let s = res.reliability_summary();
        assert_eq!(s.counts(), (0, 1, 2));
        // Nothing was measured, so every verdict table is empty …
        assert_eq!(res.counts(true), (0, 0, 0));
        assert_eq!(res.fig17_categories(), [0; 6]);
        // … but the reliability ledger still accounts for every proxy.
        let rendered = crate::report::render_reliability(&res);
        assert!(rendered.contains("3 total"));
        assert!(rendered.contains("2 unmeasurable"));
    }
}
